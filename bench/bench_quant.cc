// Quantized edge path end to end: the wire-v3 int8 bundle versus the fp32
// wire-v2 one, measured in the three dimensions the quantization work buys —
// classify latency (int8 QGemm kernel vs the serial dequant-reference mode vs
// the fp32 baseline), cloud->edge provisioning bytes (audited off the
// NetworkLink by PrivacyAuditor), and held-out accuracy delta vs fp32.
//
// The bench *enforces* the acceptance contract: int8 batch classification
// must beat the reference mode by >= 1.5x, the v3 bundle must cost <= 35% of
// the v2 wire bytes, and the accuracy delta must stay within tolerance.
//
// Emits BENCH_quant.json (+ metrics sidecar).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"

namespace magneto::bench {
namespace {

constexpr double kAccuracyTolerance = 0.03;
constexpr double kMinSpeedup = 1.5;
constexpr double kMaxBundleRatio = 0.35;

// Best-of-rounds: the minimum round mean is the usual noise-robust latency
// estimator — scheduler interference only ever inflates a round.
double MeanClassifyMicros(core::EdgeModel* model,
                          const std::vector<float>& features, int rounds = 9,
                          int reps = 50) {
  for (int i = 0; i < 20; ++i) (void)model->InferFeatures(features);
  double best_us = 0.0;
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
      CheckOk(model->InferFeatures(features).status(), "infer");
    }
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count() /
                      reps;
    if (r == 0 || us < best_us) best_us = us;
  }
  return best_us;
}

double BatchClassifyMillis(core::EdgeModel* model,
                           const sensors::FeatureDataset& data,
                           int rounds = 7) {
  for (int i = 0; i < 2; ++i) (void)model->Predict(data);
  double best_ms = 0.0;
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)Unwrap(model->Predict(data), "predict");
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (r == 0 || ms < best_ms) best_ms = ms;
  }
  return best_ms;
}

// Wire bytes one bundle costs over a clean link, through the same chunked
// transport a real provisioning uses, read back via the privacy auditor.
size_t AuditedBundleBytes(const std::string& payload) {
  platform::NetworkLink link(50.0, 10.0);
  platform::BundleTransport transport(&link, platform::TransportOptions{});
  auto delivered =
      transport.Deliver(platform::Direction::kDownlink,
                        platform::PayloadKind::kModelArtifact, payload);
  CheckOk(delivered.status(), "deliver");
  if (delivered.value() != payload) {
    std::fprintf(stderr, "delivered bundle not byte-identical\n");
    std::exit(1);
  }
  return platform::PrivacyAuditor(&link).BundleBytesDownlinked();
}

int Run() {
  // Paper-sized backbone so the latency and byte numbers are representative
  // of the real deployment artifact.
  core::CloudConfig config = PaperCloudConfig();
  config.train.epochs = 8;
  platform::CloudServer server(config);
  CheckOk(server.Pretrain(HeterogeneousCorpus(1, 4, 1, 8.0, 0.7),
                          sensors::ActivityRegistry::BaseActivities()),
          "pretrain");

  const std::string fp32_bytes = Unwrap(server.ServeBundleBytes(), "serve v2");
  const std::string quant_bytes =
      Unwrap(server.ServeQuantizedBundleBytes(), "serve v3");

  core::ModelBundle fp32_bundle =
      Unwrap(core::ModelBundle::FromString(fp32_bytes), "parse v2");
  core::ModelBundle quant_bundle =
      Unwrap(core::ModelBundle::FromString(quant_bytes), "parse v3");
  if (quant_bundle.wire_version != core::kBundleWireV3) {
    std::fprintf(stderr, "quantized bundle is not wire v3\n");
    return 1;
  }
  const preprocess::Pipeline pipeline = fp32_bundle.pipeline;
  core::EdgeModel fp32_model = std::move(fp32_bundle).ToEdgeModel();
  core::EdgeModel quant_model = std::move(quant_bundle).ToEdgeModel();

  const sensors::FeatureDataset eval = Unwrap(
      pipeline.ProcessLabeled(HeterogeneousCorpus(999, 4, 1, 8.0, 0.7)),
      "eval");
  if (eval.empty()) {
    std::fprintf(stderr, "empty eval set\n");
    return 1;
  }
  const std::vector<float> probe = eval.RowVector(0);

  // Latency: int8 kernel, serial dequant-reference mode, fp32 baseline.
  // The two quantized modes are measured interleaved, one short round each
  // per pass, so scheduler noise and frequency drift hit both alike and the
  // reported ratio reflects the kernels rather than the machine's mood.
  double int8_us = 0.0, reference_us = 0.0;
  double int8_batch_ms = 0.0, reference_batch_ms = 0.0;
  for (int round = 0; round < 7; ++round) {
    SetQGemmEnabled(true);
    const double a = MeanClassifyMicros(&quant_model, probe, 1);
    const double ab = BatchClassifyMillis(&quant_model, eval, 1);
    SetQGemmEnabled(false);
    const double b = MeanClassifyMicros(&quant_model, probe, 1);
    const double bb = BatchClassifyMillis(&quant_model, eval, 1);
    if (round == 0 || a < int8_us) int8_us = a;
    if (round == 0 || b < reference_us) reference_us = b;
    if (round == 0 || ab < int8_batch_ms) int8_batch_ms = ab;
    if (round == 0 || bb < reference_batch_ms) reference_batch_ms = bb;
  }
  SetQGemmEnabled(true);
  const double accuracy_int8 = Accuracy(&quant_model, eval);
  const double fp32_us = MeanClassifyMicros(&fp32_model, probe);
  const double fp32_batch_ms = BatchClassifyMillis(&fp32_model, eval);
  const double accuracy_fp32 = Accuracy(&fp32_model, eval);

  const double speedup = reference_us / int8_us;
  const double batch_speedup = reference_batch_ms / int8_batch_ms;
  const double accuracy_delta = accuracy_int8 - accuracy_fp32;

  // Provisioning cost over the link (includes chunk headers and framing).
  const size_t wire_fp32 = AuditedBundleBytes(fp32_bytes);
  const size_t wire_quant = AuditedBundleBytes(quant_bytes);
  const double ratio =
      static_cast<double>(wire_quant) / static_cast<double>(wire_fp32);

  std::printf("== quantized edge path ==\n");
  std::printf("classify/window:  fp32 %8.1f us   int8 %8.1f us   "
              "dequant-ref %8.1f us\n",
              fp32_us, int8_us, reference_us);
  std::printf("classify/batch:   fp32 %8.2f ms   int8 %8.2f ms   "
              "dequant-ref %8.2f ms\n",
              fp32_batch_ms, int8_batch_ms, reference_batch_ms);
  std::printf("speedup int8 vs dequant-ref: %.2fx per window, %.2fx batch\n",
              speedup, batch_speedup);
  std::printf("bundle wire:      v2 fp32 %zu B   v3 int8 %zu B   "
              "(%.1f%% of fp32)\n",
              wire_fp32, wire_quant, ratio * 100.0);
  std::printf("accuracy:         fp32 %.1f%%   int8 %.1f%%   "
              "(delta %+.3f, tolerance %.3f)\n",
              accuracy_fp32 * 100.0, accuracy_int8 * 100.0, accuracy_delta,
              kAccuracyTolerance);

  obs::JsonWriter json = BenchJson("quant");
  json.Field("fp32_classify_us", fp32_us)
      .Field("int8_classify_us", int8_us)
      .Field("reference_classify_us", reference_us)
      .Field("fp32_batch_ms", fp32_batch_ms)
      .Field("int8_batch_ms", int8_batch_ms)
      .Field("reference_batch_ms", reference_batch_ms)
      .Field("speedup_int8_vs_reference", speedup)
      .Field("batch_speedup_int8_vs_reference", batch_speedup)
      .Field("bundle_bytes_fp32", static_cast<uint64_t>(fp32_bytes.size()))
      .Field("bundle_bytes_quant", static_cast<uint64_t>(quant_bytes.size()))
      .Field("wire_bytes_fp32", static_cast<uint64_t>(wire_fp32))
      .Field("wire_bytes_quant", static_cast<uint64_t>(wire_quant))
      .Field("bundle_ratio", ratio)
      .Field("accuracy_fp32", accuracy_fp32)
      .Field("accuracy_int8", accuracy_int8)
      .Field("accuracy_delta", accuracy_delta)
      .Field("accuracy_tolerance", kAccuracyTolerance)
      .Field("eval_windows", static_cast<uint64_t>(eval.size()))
      .EndObject();
  if (!json.WriteToFile("BENCH_quant.json")) {
    std::fprintf(stderr, "cannot write BENCH_quant.json\n");
    return 1;
  }
  std::printf("wrote BENCH_quant.json\n");
  WriteMetricsSnapshot("BENCH_quant.metrics.json");

  int failures = 0;
  if (speedup < kMinSpeedup) {
    std::fprintf(stderr, "FAIL: int8 classify speedup %.2fx < %.1fx\n",
                 speedup, kMinSpeedup);
    ++failures;
  }
  if (ratio > kMaxBundleRatio) {
    std::fprintf(stderr, "FAIL: v3 bundle ratio %.2f > %.2f\n", ratio,
                 kMaxBundleRatio);
    ++failures;
  }
  if (accuracy_delta < -kAccuracyTolerance) {
    std::fprintf(stderr, "FAIL: int8 accuracy dropped %.3f > tolerance %.3f\n",
                 -accuracy_delta, kAccuracyTolerance);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace magneto::bench

int main() { return magneto::bench::Run(); }
