/// Experiment C1 (§4.2.1): "participants will gain a clear understanding of
/// the imperceptible prediction latency, which is only a few milliseconds."
///
/// Measures the end-to-end single-window inference path — denoise ->
/// featurise -> normalise -> embed -> NCM — plus each stage in isolation,
/// on both the paper's backbone [1024x512x128x64x128] and the demo-sized one.
/// Latency is architecture-bound, not training-bound, so the models are
/// provisioned with a one-epoch fit (identical compute cost).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace magneto::bench {
namespace {

struct LatencyFixture {
  explicit LatencyFixture(std::vector<size_t> dims) {
    core::CloudConfig config = BenchCloudConfig();
    config.backbone_dims = std::move(dims);
    config.train.epochs = 1;
    core::CloudInitializer cloud(config);
    auto bundle = Unwrap(
        cloud.Initialize(BenchCorpus(1, 2, 4.0),
                         sensors::ActivityRegistry::BaseActivities()),
        "cloud init");
    model = std::make_unique<core::EdgeModel>(
        std::move(bundle).ToEdgeModel());
    sensors::SyntheticGenerator gen(2);
    window = gen.Generate(sensors::DefaultActivityLibrary()[sensors::kWalk],
                          1.0)
                 .samples;
    features = Unwrap(model->pipeline().ProcessWindow(window), "preprocess");
  }

  std::unique_ptr<core::EdgeModel> model;
  Matrix window;
  std::vector<float> features;
};

LatencyFixture& Paper() {
  static auto* fixture =
      new LatencyFixture({1024, 512, 128, 64, 128});
  return *fixture;
}

LatencyFixture& Demo() {
  static auto* fixture = new LatencyFixture({128, 64, 32});
  return *fixture;
}

void BM_EndToEndWindow_PaperBackbone(benchmark::State& state) {
  LatencyFixture& f = Paper();
  for (auto _ : state) {
    auto pred = f.model->InferWindow(f.window);
    benchmark::DoNotOptimize(pred);
  }
}
BENCHMARK(BM_EndToEndWindow_PaperBackbone)->Unit(benchmark::kMillisecond);

void BM_EndToEndWindow_DemoBackbone(benchmark::State& state) {
  LatencyFixture& f = Demo();
  for (auto _ : state) {
    auto pred = f.model->InferWindow(f.window);
    benchmark::DoNotOptimize(pred);
  }
}
BENCHMARK(BM_EndToEndWindow_DemoBackbone)->Unit(benchmark::kMillisecond);

void BM_Stage_Preprocess(benchmark::State& state) {
  LatencyFixture& f = Paper();
  for (auto _ : state) {
    auto features = f.model->pipeline().ProcessWindow(f.window);
    benchmark::DoNotOptimize(features);
  }
}
BENCHMARK(BM_Stage_Preprocess)->Unit(benchmark::kMillisecond);

void BM_Stage_Embed_PaperBackbone(benchmark::State& state) {
  LatencyFixture& f = Paper();
  Matrix batch(1, f.features.size(), f.features);
  for (auto _ : state) {
    Matrix emb = f.model->Embed(batch);
    benchmark::DoNotOptimize(emb.data());
  }
}
BENCHMARK(BM_Stage_Embed_PaperBackbone)->Unit(benchmark::kMillisecond);

void BM_Stage_NcmClassify(benchmark::State& state) {
  LatencyFixture& f = Paper();
  Matrix batch(1, f.features.size(), f.features);
  Matrix emb = f.model->Embed(batch);
  for (auto _ : state) {
    auto pred = f.model->classifier().Classify(emb.RowPtr(0), emb.cols());
    benchmark::DoNotOptimize(pred);
  }
}
BENCHMARK(BM_Stage_NcmClassify)->Unit(benchmark::kMillisecond);

/// Batch-of-windows throughput (the real-time budget is 1 window/second).
void BM_EndToEndBatch(benchmark::State& state) {
  LatencyFixture& f = Paper();
  const size_t batch = state.range(0);
  sensors::SyntheticGenerator gen(3);
  sensors::Recording rec = gen.Generate(
      sensors::DefaultActivityLibrary()[sensors::kRun],
      static_cast<double>(batch));
  for (auto _ : state) {
    auto preds = f.model->InferRecording(rec);
    benchmark::DoNotOptimize(preds);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_EndToEndBatch)->Arg(10)->Arg(60)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace magneto::bench

BENCHMARK_MAIN();
