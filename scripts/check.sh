#!/usr/bin/env bash
# Full verification: configure, build, run all tests, all benchmarks, and
# all examples. This is what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build -j"$(nproc)" --output-on-failure

# TSan pass over the shared thread pool and the parallel kernels. Forces an
# oversubscribed pool so races surface even on small CI machines.
cmake -B build-tsan -G Ninja -DMAGNETO_SANITIZE=thread
cmake --build build-tsan --target common_test
MAGNETO_THREADS=8 ./build-tsan/tests/common_test \
  --gtest_filter='Parallel*:MatMul*:MatrixTest.*'

for b in build/bench/bench_*; do
  echo "== $b =="
  "$b"
done

for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  echo "== $e =="
  "$e"
done
