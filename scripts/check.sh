#!/usr/bin/env bash
# Full verification: configure, build, run all tests, all benchmarks, and
# all examples. This is what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build -j"$(nproc)" --output-on-failure

# TSan pass over the shared thread pool and the parallel kernels. Forces an
# oversubscribed pool so races surface even on small CI machines.
cmake -B build-tsan -G Ninja -DMAGNETO_SANITIZE=thread
cmake --build build-tsan --target common_test obs_test
MAGNETO_THREADS=8 ./build-tsan/tests/common_test \
  --gtest_filter='Parallel*:MatMul*:MatrixTest.*:Logging*'
# Telemetry under TSan with tracing forced on: the metrics registry and the
# per-thread trace rings must stay race-free while the pool hammers them.
MAGNETO_THREADS=8 MAGNETO_TRACE=1 ./build-tsan/tests/obs_test

# CLI telemetry smoke: every run must leave a parseable metrics snapshot and
# a trace with events.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./build/tools/magneto pretrain --out "$smoke_dir/m.magneto" \
  --users 3 --epochs 3 --metrics-out "$smoke_dir/pretrain_metrics.json"
./build/tools/magneto simulate --bundle "$smoke_dir/m.magneto" --seconds 3 \
  --metrics-out "$smoke_dir/metrics.json" --trace-out "$smoke_dir/trace.json"
for f in pretrain_metrics.json metrics.json trace.json; do
  [ -s "$smoke_dir/$f" ] || { echo "missing/empty $f" >&2; exit 1; }
done
grep -q '"schema_version"' "$smoke_dir/metrics.json"
grep -q '"traceEvents"' "$smoke_dir/trace.json"
grep -q '"ph":"B"' "$smoke_dir/trace.json"

for b in build/bench/bench_*; do
  echo "== $b =="
  "$b"
done

for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  echo "== $e =="
  "$e"
done
