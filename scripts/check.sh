#!/usr/bin/env bash
# Full verification: configure, build, run all tests, all benchmarks, and
# all examples. This is what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build -j"$(nproc)" --output-on-failure

# TSan pass over the shared thread pool and the parallel kernels. Forces an
# oversubscribed pool so races surface even on small CI machines.
cmake -B build-tsan -G Ninja -DMAGNETO_SANITIZE=thread
cmake --build build-tsan --target common_test obs_test nn_test core_test \
  platform_test
MAGNETO_THREADS=8 ./build-tsan/tests/common_test \
  --gtest_filter='Parallel*:MatMul*:MatrixTest.*:Logging*'
# Telemetry under TSan with tracing forced on: the metrics registry, the
# per-thread trace rings, the seqlock flight recorder, and the SLO monitor's
# epoch ring must stay race-free while 8 producer threads hammer them
# (FlightRecorderTest.ConcurrentProducers / SloMonitorTest.ConcurrentObservers
# run inside this binary).
MAGNETO_THREADS=8 MAGNETO_TRACE=1 ./build-tsan/tests/obs_test
# The lock-free embed contract: many threads forward through one shared
# const Sequential, each with its own workspace, no locks anywhere.
MAGNETO_THREADS=8 ./build-tsan/tests/nn_test \
  --gtest_filter='WorkspaceConcurrencyTest.*'
# The concurrent serving path: AsyncUpdater worker-handle lock order,
# scratch-free KNN classify, and the EdgeFleet stress tests (closed-loop
# sessions + open-loop SubmitWindow producers, both with a bundle promotion
# landing mid-run).
# The ANN legs: concurrent searches through one shared immutable index with
# per-thread scratch, concurrent ANN-routed NCM classify, and the
# thread-count determinism contract of the k-means build — plus (inside the
# platform_test EdgeFleet* filter) an ANN deployment serving concurrent
# sessions across a mid-run promotion swap.
MAGNETO_THREADS=8 ./build-tsan/tests/core_test \
  --gtest_filter='AsyncUpdaterStressTest.*:KnnClassifierTest.Concurrent*:AnnIndexTest.Concurrent*:AnnIndexTest.DeterministicAcrossThreadCounts:NcmClassifierTest.ConcurrentAnn*'
MAGNETO_THREADS=8 ./build-tsan/tests/platform_test \
  --gtest_filter='EdgeFleet*'
# The cloud control plane under TSan: the CloudServer once_flag quantize
# cache + thread-local RemoteInfer workspaces (both former data races), the
# sharded device tables with provisioning workers on independent links, and
# registry publishers racing artifact readers.
MAGNETO_THREADS=8 ./build-tsan/tests/platform_test \
  --gtest_filter='CloudServer*:CloudControlPlane*:ProtocolsTest.MultiDeviceConcurrentEdgeProtocolRuns'

# ASan pass over the untrusted-input surface: serializer corruption and
# overflow regressions, the atomic-write fault hook, and the lossy-transport
# state machine. A bounds slip anywhere here is a remote-input memory bug.
cmake -B build-asan -G Ninja -DMAGNETO_SANITIZE=address
cmake --build build-asan --target common_test core_test platform_test \
  nn_test integration_test
./build-asan/tests/common_test \
  --gtest_filter='Crc32*:BinarySerial*:*FileIo*:QGemm*'
# UpdateTransaction* stages/commits/rolls back full model snapshots — the
# exact place a dangling pointer into swapped-out state would hide.
# The quantized legs cover the int8 deserializers: the wire-v3 bundle
# truncation/bit-flip tests, the SupportSet int8 row reader, and the
# kQuantizedLinearTag payload fuzz — the validate-before-allocate fix in
# QuantizedLinear::Deserialize only proves itself under ASan.
./build-asan/tests/core_test --gtest_filter='ModelBundle*:UpdateTransaction*:SupportSetTest.*Quantized*'
./build-asan/tests/nn_test --gtest_filter='QuantizedLinear*:QuantizedMatrix*'
./build-asan/tests/integration_test \
  --gtest_filter='*QuantizedLinearPayloadFuzz*'
./build-asan/tests/platform_test \
  --gtest_filter='FaultInjector*:BundleTransport*:ChunkFrame*'

# CLI telemetry smoke: every run must leave a parseable metrics snapshot and
# a trace with events.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./build/tools/magneto pretrain --out "$smoke_dir/m.magneto" \
  --users 3 --epochs 3 --metrics-out "$smoke_dir/pretrain_metrics.json"
./build/tools/magneto simulate --bundle "$smoke_dir/m.magneto" --seconds 3 \
  --metrics-out "$smoke_dir/metrics.json" --trace-out "$smoke_dir/trace.json"
for f in pretrain_metrics.json metrics.json trace.json; do
  [ -s "$smoke_dir/$f" ] || { echo "missing/empty $f" >&2; exit 1; }
done
grep -q '"schema_version"' "$smoke_dir/metrics.json"
grep -q '"traceEvents"' "$smoke_dir/trace.json"
grep -q '"ph":"B"' "$smoke_dir/trace.json"

# Fault-injection smoke: a 20% drop + 5% corruption link must still deliver
# the bundle (seeded, so this never flakes), and the retry machinery must
# actually have fired — a zero retry count means the injector was bypassed.
./build/tools/magneto simulate --bundle "$smoke_dir/m.magneto" --seconds 3 \
  --fault-drop-rate 0.2 --fault-corrupt-rate 0.05 --net-seed 7 \
  --metrics-out "$smoke_dir/fault_metrics.json"
grep -Eq '"net\.retries": [1-9]' "$smoke_dir/fault_metrics.json" \
  || { echo "fault smoke: expected nonzero net.retries" >&2; exit 1; }
grep -Eq '"net\.transport\.deliveries": [1-9]' "$smoke_dir/fault_metrics.json" \
  || { echo "fault smoke: delivery did not complete" >&2; exit 1; }

# Quantized-bundle smoke: compress to the wire-v3 int8 bundle, provision it
# over the same faulty link, and prove the quantized payload arrives
# byte-identical (the transport retried, not silently passed corruption) and
# still classifies.
./build/tools/magneto compress --bundle "$smoke_dir/m.magneto" \
  --method int8 --out "$smoke_dir/q.magneto" | tee "$smoke_dir/compress.txt"
grep -q 'wire v3' "$smoke_dir/compress.txt" \
  || { echo "quant smoke: compress did not emit a wire-v3 bundle" >&2; exit 1; }
./build/tools/magneto inspect "$smoke_dir/q.magneto" | grep -q 'wire v3' \
  || { echo "quant smoke: inspect does not report wire v3" >&2; exit 1; }
./build/tools/magneto simulate --bundle "$smoke_dir/q.magneto" --seconds 3 \
  --fault-drop-rate 0.2 --fault-corrupt-rate 0.05 --net-seed 7 \
  --metrics-out "$smoke_dir/quant_metrics.json" | tee "$smoke_dir/quant_sim.txt"
grep -q 'delivery: wire v3, byte-identical: yes' "$smoke_dir/quant_sim.txt" \
  || { echo "quant smoke: v3 bundle not delivered byte-identical" >&2; exit 1; }
grep -Eq '"net\.retries": [1-9]' "$smoke_dir/quant_metrics.json" \
  || { echo "quant smoke: expected nonzero net.retries" >&2; exit 1; }

# Fleet smoke: concurrent sessions over one shared deployment with a mid-run
# promotion. The serving path must actually have been exercised — zero
# fleet.requests means the sessions never classified anything.
./build/tools/magneto fleet --bundle "$smoke_dir/m.magneto" --sessions 6 \
  --seconds 3 --metrics-out "$smoke_dir/fleet_metrics.json"
grep -Eq '"fleet\.requests": [1-9]' "$smoke_dir/fleet_metrics.json" \
  || { echo "fleet smoke: expected nonzero fleet.requests" >&2; exit 1; }
grep -Eq '"fleet\.promotions": [1-9]' "$smoke_dir/fleet_metrics.json" \
  || { echo "fleet smoke: mid-run promotion did not land" >&2; exit 1; }

# Open-loop fleet smoke: an unthrottled generator (--rate 0) must overdrive
# the serve workers so cross-session micro-batching actually engages — the
# run fails unless the mean embed batch exceeds one window.
./build/tools/magneto fleet --bundle "$smoke_dir/m.magneto" --sessions 6 \
  --seconds 4 --open-loop 1 --rate 0 --windows 600 --serve-threads 6 \
  --concurrent-batches 2 --threads 1 \
  --metrics-out "$smoke_dir/fleet_open_metrics.json" \
  --trace-out "$smoke_dir/fleet_open_trace.json" \
  --flight-record-out "$smoke_dir/fleet_open_flight.json" \
  | tee "$smoke_dir/fleet_open.txt"
mean_batch="$(grep -o 'mean batch [0-9.]*' "$smoke_dir/fleet_open.txt" \
  | awk '{print $3}')"
awk -v m="$mean_batch" 'BEGIN { exit (m > 1.0) ? 0 : 1 }' \
  || { echo "open-loop fleet smoke: mean batch $mean_batch is not > 1" >&2; exit 1; }
grep -Eq '"fleet\.requests": [1-9]' "$smoke_dir/fleet_open_metrics.json" \
  || { echo "open-loop fleet smoke: nothing was classified" >&2; exit 1; }
# Request-scoped observability smoke: the exported trace must hold the
# exporter's invariants (balanced B/E stacks, every flow begin finished,
# monotonic per-track timestamps), the flight recorder must have captured
# served requests with stage timings, and the per-stage histograms + SLO
# health gauge must be present in the snapshot.
python3 tools/validate_trace.py "$smoke_dir/fleet_open_trace.json"
grep -q '"ph":"s"' "$smoke_dir/fleet_open_trace.json" \
  || { echo "obs smoke: trace has no flow-begin events" >&2; exit 1; }
grep -q '"outcome": "ok"' "$smoke_dir/fleet_open_flight.json" \
  || { echo "obs smoke: flight record has no served requests" >&2; exit 1; }
grep -q '"fleet.stage.embed_us"' "$smoke_dir/fleet_open_metrics.json" \
  || { echo "obs smoke: missing per-stage histograms" >&2; exit 1; }
grep -q '"slo.health_state"' "$smoke_dir/fleet_open_metrics.json" \
  || { echo "obs smoke: missing SLO health gauge" >&2; exit 1; }
grep -q '^slo: ' "$smoke_dir/fleet_open.txt" \
  || { echo "obs smoke: missing SLO health summary line" >&2; exit 1; }

# Control-plane smoke: provision a simulated fleet with churn and walk a
# staged canary rollout. The rollout must complete, devices must actually
# have churned mid-transfer and resumed (cloud.resumed == 0 means the
# chunk-level resume path was bypassed), and the version histogram must land
# on v2.
./build/tools/magneto cloud --bundle "$smoke_dir/m.magneto" --devices 800 \
  --workers 8 --metrics-out "$smoke_dir/cloud_metrics.json" \
  | tee "$smoke_dir/cloud.txt"
grep -q '^rollout completed' "$smoke_dir/cloud.txt" \
  || { echo "cloud smoke: staged rollout did not complete" >&2; exit 1; }
grep -q 'version histogram:  v2=800' "$smoke_dir/cloud.txt" \
  || { echo "cloud smoke: fleet did not converge to v2" >&2; exit 1; }
grep -Eq '"cloud\.resumed": [1-9]' "$smoke_dir/cloud_metrics.json" \
  || { echo "cloud smoke: expected nonzero resumed transfers under churn" >&2; exit 1; }
grep -Eq '"cloud\.churn_disconnects": [1-9]' "$smoke_dir/cloud_metrics.json" \
  || { echo "cloud smoke: expected nonzero churn disconnects" >&2; exit 1; }
grep -Eq '"cloud\.rollouts": [1-9]' "$smoke_dir/cloud_metrics.json" \
  || { echo "cloud smoke: rollout counter missing" >&2; exit 1; }

# Transactional-update smoke: inject a failure mid-update and prove the
# all-or-nothing contract end to end. The checkpoint written before the
# failed update must be byte-identical to the input bundle (nothing staged
# leaked), still load, and classify exactly like the original. The rollback
# must be counted, and the recovery must NOT have needed the .lkg fallback.
./build/tools/magneto learn --bundle "$smoke_dir/m.magneto" \
  --out "$smoke_dir/rollback.magneto" --fail-step train \
  --metrics-out "$smoke_dir/learn_fail_metrics.json"
cmp "$smoke_dir/m.magneto" "$smoke_dir/rollback.magneto" \
  || { echo "learn smoke: rolled-back checkpoint differs from pre-update bundle" >&2; exit 1; }
./build/tools/magneto simulate --bundle "$smoke_dir/m.magneto" --seconds 2 \
  > "$smoke_dir/sim_before.txt"
./build/tools/magneto simulate --bundle "$smoke_dir/rollback.magneto" \
  --seconds 2 > "$smoke_dir/sim_after.txt"
diff "$smoke_dir/sim_before.txt" "$smoke_dir/sim_after.txt" \
  || { echo "learn smoke: rolled-back checkpoint classifies differently" >&2; exit 1; }
grep -Eq '"learner\.rollbacks": [1-9]' "$smoke_dir/learn_fail_metrics.json" \
  || { echo "learn smoke: expected nonzero learner.rollbacks" >&2; exit 1; }
grep -Eq '"learner\.commits": 0' "$smoke_dir/learn_fail_metrics.json" \
  || { echo "learn smoke: failed update must not count as a commit" >&2; exit 1; }
if grep -Eq '"edge\.checkpoint\.fallbacks": [1-9]' "$smoke_dir/learn_fail_metrics.json"; then
  echo "learn smoke: recovery should not have needed the .lkg fallback" >&2
  exit 1
fi
# The committed path: same capture without the fault lands, checkpoints the
# updated model to --out, and rotates the pre-update state to the .lkg slot.
./build/tools/magneto learn --bundle "$smoke_dir/m.magneto" \
  --out "$smoke_dir/updated.magneto" \
  --metrics-out "$smoke_dir/learn_ok_metrics.json"
grep -Eq '"learner\.commits": [1-9]' "$smoke_dir/learn_ok_metrics.json" \
  || { echo "learn smoke: expected nonzero learner.commits" >&2; exit 1; }
cmp "$smoke_dir/m.magneto" "$smoke_dir/updated.magneto.lkg" \
  || { echo "learn smoke: .lkg must hold the pre-update bundle" >&2; exit 1; }
./build/tools/magneto inspect "$smoke_dir/updated.magneto" | grep -q 'Gesture Hi' \
  || { echo "learn smoke: committed bundle lacks the new activity" >&2; exit 1; }

for b in build/bench/bench_*; do
  echo "== $b =="
  "$b"
done

# bench_quant enforces its own acceptance gates (int8 speedup vs the dequant
# reference, bundle ratio, accuracy delta); here just pin the artifact schema.
for key in '"schema_version"' '"speedup_int8_vs_reference"' \
    '"bundle_ratio"' '"accuracy_delta"'; do
  grep -q "$key" BENCH_quant.json \
    || { echo "bench_quant: BENCH_quant.json missing $key" >&2; exit 1; }
done

# bench_cloud_scale enforces its own gates (rollout completes, resumed
# transfers nonzero under churn); pin the artifact schema here.
for key in '"schema_version"' '"fleet_rows"' '"completion_curve_s"' \
    '"devices_per_second"' '"rollout"' '"resumed_sessions"' \
    '"skew_old_before"'; do
  grep -q "$key" BENCH_cloud_scale.json \
    || { echo "bench_cloud_scale: BENCH_cloud_scale.json missing $key" >&2; exit 1; }
done

# bench_ann enforces its own gates (recall@1 + speedup at 200 classes,
# byte-identical exact fallback, bit-identical predictions across thread
# counts); pin the artifact schema and the embedded check verdicts here.
for key in '"schema_version"' '"recall_at_1"' '"recall_at_5"' '"nprobe"' \
    '"speedup"' '"gate_recall_at_1"' '"gate_speedup"' \
    '"exact_fallback_byte_identical"' '"thread_count_bit_identical"'; do
  grep -q "$key" BENCH_ann.json \
    || { echo "bench_ann: BENCH_ann.json missing $key" >&2; exit 1; }
done

for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  echo "== $e =="
  "$e"
done
