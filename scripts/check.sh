#!/usr/bin/env bash
# Full verification: configure, build, run all tests, all benchmarks, and
# all examples. This is what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build -j"$(nproc)" --output-on-failure

for b in build/bench/bench_*; do
  echo "== $b =="
  "$b"
done

for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  echo "== $e =="
  "$e"
done
