#include "sensors/faults.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sensors/signal_model.h"
#include "sensors/synthetic_generator.h"

namespace magneto::sensors {
namespace {

Recording WalkRecording(double seconds = 4.0) {
  SyntheticGenerator gen(1);
  return gen.Generate(DefaultActivityLibrary()[kWalk], seconds);
}

TEST(FaultsTest, DropoutZeroesTheInterval) {
  Recording rec = WalkRecording();
  FaultSpec fault;
  fault.channel = Channel::kAccX;
  fault.kind = FaultKind::kDropout;
  fault.start_s = 1.0;
  fault.duration_s = 1.0;
  Rng rng(2);
  Recording out = InjectFaults(rec, {fault}, &rng);
  const size_t ch = static_cast<size_t>(Channel::kAccX);
  for (size_t i = 120; i < 240; ++i) {
    EXPECT_FLOAT_EQ(out.samples.At(i, ch), 0.0f) << "sample " << i;
  }
  // Outside the interval: untouched.
  EXPECT_FLOAT_EQ(out.samples.At(0, ch), rec.samples.At(0, ch));
  EXPECT_FLOAT_EQ(out.samples.At(300, ch), rec.samples.At(300, ch));
  // Other channels: untouched.
  EXPECT_FLOAT_EQ(out.samples.At(150, ch + 1), rec.samples.At(150, ch + 1));
}

TEST(FaultsTest, FreezeRepeatsLastGoodValue) {
  Recording rec = WalkRecording();
  FaultSpec fault;
  fault.channel = Channel::kGyroY;
  fault.kind = FaultKind::kFreeze;
  fault.start_s = 2.0;
  fault.duration_s = 1.0;
  Rng rng(3);
  Recording out = InjectFaults(rec, {fault}, &rng);
  const size_t ch = static_cast<size_t>(Channel::kGyroY);
  const float frozen = rec.samples.At(239, ch);
  for (size_t i = 240; i < 360; ++i) {
    EXPECT_FLOAT_EQ(out.samples.At(i, ch), frozen);
  }
}

TEST(FaultsTest, SaturateClipsWithSignPreserved) {
  Recording rec = WalkRecording();
  FaultSpec fault;
  fault.channel = Channel::kAccZ;
  fault.kind = FaultKind::kSaturate;
  fault.start_s = 0.0;
  fault.duration_s = 1.0;
  fault.magnitude = 40.0;
  Rng rng(4);
  Recording out = InjectFaults(rec, {fault}, &rng);
  const size_t ch = static_cast<size_t>(Channel::kAccZ);
  for (size_t i = 0; i < 120; ++i) {
    EXPECT_FLOAT_EQ(std::fabs(out.samples.At(i, ch)), 40.0f);
    EXPECT_EQ(out.samples.At(i, ch) >= 0, rec.samples.At(i, ch) >= 0);
  }
}

TEST(FaultsTest, SpikesInjectLargeImpulses) {
  Recording rec = WalkRecording();
  FaultSpec fault;
  fault.channel = Channel::kMagX;
  fault.kind = FaultKind::kSpikes;
  fault.start_s = 0.0;
  fault.duration_s = 4.0;
  fault.magnitude = 500.0;
  Rng rng(5);
  Recording out = InjectFaults(rec, {fault}, &rng);
  const size_t ch = static_cast<size_t>(Channel::kMagX);
  size_t spikes = 0;
  for (size_t i = 0; i < out.num_samples(); ++i) {
    if (std::fabs(out.samples.At(i, ch)) == 500.0f) ++spikes;
  }
  // ~10% spike rate over 480 samples.
  EXPECT_GT(spikes, 20u);
  EXPECT_LT(spikes, 120u);
}

TEST(FaultsTest, OutOfRangeIntervalsAreClamped) {
  Recording rec = WalkRecording(1.0);
  FaultSpec fault;
  fault.channel = Channel::kAccX;
  fault.kind = FaultKind::kDropout;
  fault.start_s = 0.5;
  fault.duration_s = 100.0;  // beyond the recording
  Rng rng(6);
  Recording out = InjectFaults(rec, {fault}, &rng);
  EXPECT_EQ(out.num_samples(), rec.num_samples());
  EXPECT_FLOAT_EQ(out.samples.At(119, 0), 0.0f);
}

TEST(FaultsTest, RandomFaultsAreWithinBounds) {
  Rng rng(7);
  auto faults = RandomFaults(20, 10.0, &rng);
  EXPECT_EQ(faults.size(), 20u);
  for (const FaultSpec& f : faults) {
    EXPECT_GE(f.start_s, 0.0);
    EXPECT_LE(f.start_s + f.duration_s, 10.0 + 1e-9);
    EXPECT_LT(static_cast<size_t>(f.channel), kNumChannels);
  }
}

TEST(FaultsTest, OriginalRecordingUntouched) {
  Recording rec = WalkRecording(1.0);
  const float before = rec.samples.At(60, 0);
  FaultSpec fault;
  fault.kind = FaultKind::kDropout;
  fault.start_s = 0.0;
  fault.duration_s = 1.0;
  Rng rng(8);
  (void)InjectFaults(rec, {fault}, &rng);
  EXPECT_FLOAT_EQ(rec.samples.At(60, 0), before);
}

}  // namespace
}  // namespace magneto::sensors
