#include "sensors/dataset.h"

#include <gtest/gtest.h>

namespace magneto::sensors {
namespace {

FeatureDataset MakeDataset() {
  FeatureDataset ds;
  ds.Append({1, 2}, 0);
  ds.Append({3, 4}, 1);
  ds.Append({5, 6}, 0);
  ds.Append({7, 8}, 1);
  ds.Append({9, 10}, 2);
  return ds;
}

TEST(FeatureDatasetTest, AppendAndAccess) {
  FeatureDataset ds = MakeDataset();
  EXPECT_EQ(ds.size(), 5u);
  EXPECT_EQ(ds.dim(), 2u);
  EXPECT_FLOAT_EQ(ds.Row(2)[0], 5.0f);
  EXPECT_EQ(ds.Label(2), 0);
  EXPECT_EQ(ds.RowVector(4), (std::vector<float>{9, 10}));
}

TEST(FeatureDatasetTest, ToMatrix) {
  FeatureDataset ds = MakeDataset();
  Matrix m = ds.ToMatrix();
  EXPECT_EQ(m.rows(), 5u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_FLOAT_EQ(m.At(3, 1), 8.0f);
}

TEST(FeatureDatasetTest, FirstAppendFixesDim) {
  FeatureDataset ds;
  ds.Append({1, 2, 3}, 0);
  EXPECT_EQ(ds.dim(), 3u);
}

TEST(FeatureDatasetDeathTest, DimMismatchAborts) {
  FeatureDataset ds;
  ds.Append({1, 2}, 0);
  EXPECT_DEATH(ds.Append({1, 2, 3}, 0), "Check failed");
}

TEST(FeatureDatasetTest, MergePreservesExamples) {
  FeatureDataset a = MakeDataset();
  FeatureDataset b;
  b.Append({11, 12}, 3);
  a.Merge(b);
  EXPECT_EQ(a.size(), 6u);
  EXPECT_EQ(a.Label(5), 3);
  // Merging into empty adopts the other.
  FeatureDataset c;
  c.Merge(a);
  EXPECT_EQ(c.size(), 6u);
  // Merging empty is a no-op.
  a.Merge(FeatureDataset{});
  EXPECT_EQ(a.size(), 6u);
}

TEST(FeatureDatasetTest, ClassCountsAndClasses) {
  FeatureDataset ds = MakeDataset();
  auto counts = ds.ClassCounts();
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(ds.Classes(), (std::vector<ActivityId>{0, 1, 2}));
}

TEST(FeatureDatasetTest, FilterByClass) {
  FeatureDataset ds = MakeDataset();
  FeatureDataset zeros = ds.FilterByClass(0);
  EXPECT_EQ(zeros.size(), 2u);
  for (ActivityId label : zeros.labels()) EXPECT_EQ(label, 0);
  FeatureDataset none = ds.FilterByClass(99);
  EXPECT_TRUE(none.empty());
}

TEST(FeatureDatasetTest, FilterByClasses) {
  FeatureDataset ds = MakeDataset();
  FeatureDataset sub = ds.FilterByClasses({0, 2});
  EXPECT_EQ(sub.size(), 3u);
}

TEST(FeatureDatasetTest, ShufflePreservesPairing) {
  FeatureDataset ds = MakeDataset();
  Rng rng(5);
  ds.Shuffle(&rng);
  EXPECT_EQ(ds.size(), 5u);
  // Feature/label association must survive: each row uniquely identifies its
  // original label in MakeDataset.
  for (size_t i = 0; i < ds.size(); ++i) {
    const float first = ds.Row(i)[0];
    if (first == 1.0f || first == 5.0f) EXPECT_EQ(ds.Label(i), 0);
    if (first == 3.0f || first == 7.0f) EXPECT_EQ(ds.Label(i), 1);
    if (first == 9.0f) EXPECT_EQ(ds.Label(i), 2);
  }
}

TEST(FeatureDatasetTest, StratifiedSplitBalancesClasses) {
  FeatureDataset ds;
  for (int i = 0; i < 40; ++i) ds.Append({static_cast<float>(i)}, i % 2);
  Rng rng(9);
  auto [train, test] = ds.StratifiedSplit(0.75, &rng);
  EXPECT_EQ(train.size(), 30u);
  EXPECT_EQ(test.size(), 10u);
  auto train_counts = train.ClassCounts();
  EXPECT_EQ(train_counts[0], 15u);
  EXPECT_EQ(train_counts[1], 15u);
  auto test_counts = test.ClassCounts();
  EXPECT_EQ(test_counts[0], 5u);
  EXPECT_EQ(test_counts[1], 5u);
}

TEST(FeatureDatasetTest, StratifiedSplitDisjoint) {
  FeatureDataset ds;
  for (int i = 0; i < 20; ++i) ds.Append({static_cast<float>(i)}, 0);
  Rng rng(11);
  auto [train, test] = ds.StratifiedSplit(0.5, &rng);
  // Every original row appears exactly once across the halves.
  std::vector<int> seen(20, 0);
  for (size_t i = 0; i < train.size(); ++i) {
    ++seen[static_cast<int>(train.Row(i)[0])];
  }
  for (size_t i = 0; i < test.size(); ++i) {
    ++seen[static_cast<int>(test.Row(i)[0])];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(FeatureDatasetTest, SubsamplePerClassCaps) {
  FeatureDataset ds;
  for (int i = 0; i < 30; ++i) ds.Append({static_cast<float>(i)}, i % 3);
  Rng rng(13);
  FeatureDataset sub = ds.SubsamplePerClass(4, &rng);
  auto counts = sub.ClassCounts();
  EXPECT_EQ(counts[0], 4u);
  EXPECT_EQ(counts[1], 4u);
  EXPECT_EQ(counts[2], 4u);
  // Classes smaller than the cap keep everything.
  FeatureDataset small;
  small.Append({1}, 0);
  FeatureDataset kept = small.SubsamplePerClass(10, &rng);
  EXPECT_EQ(kept.size(), 1u);
}

}  // namespace
}  // namespace magneto::sensors
