#include "sensors/activity.h"

#include <gtest/gtest.h>

namespace magneto::sensors {
namespace {

TEST(ActivityRegistryTest, BaseActivitiesArePresent) {
  ActivityRegistry reg = ActivityRegistry::BaseActivities();
  EXPECT_EQ(reg.size(), 5u);
  EXPECT_EQ(reg.IdOf("Drive").value(), kDrive);
  EXPECT_EQ(reg.IdOf("E-scooter").value(), kEScooter);
  EXPECT_EQ(reg.IdOf("Run").value(), kRun);
  EXPECT_EQ(reg.IdOf("Still").value(), kStill);
  EXPECT_EQ(reg.IdOf("Walk").value(), kWalk);
  EXPECT_EQ(reg.NameOf(kWalk).value(), "Walk");
}

TEST(ActivityRegistryTest, ExtendedActivitiesPresent) {
  ActivityRegistry reg = ActivityRegistry::ExtendedActivities();
  EXPECT_EQ(reg.size(), 8u);
  EXPECT_EQ(reg.IdOf("Cycle").value(), kCycle);
  EXPECT_EQ(reg.IdOf("Stairs Up").value(), kStairsUp);
  EXPECT_EQ(reg.IdOf("Sit").value(), kSit);
  // User-added classes continue after the extended block.
  EXPECT_EQ(reg.Register("Custom").value(), 8);
}

TEST(ActivityRegistryTest, RegisterAssignsFreshIds) {
  ActivityRegistry reg = ActivityRegistry::BaseActivities();
  auto id = reg.Register("Gesture Hi");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 5);  // first id after the 5 base classes
  EXPECT_EQ(reg.NameOf(5).value(), "Gesture Hi");
  auto id2 = reg.Register("Jumping Jacks");
  EXPECT_EQ(id2.value(), 6);
}

TEST(ActivityRegistryTest, DuplicateNameRejected) {
  ActivityRegistry reg = ActivityRegistry::BaseActivities();
  auto res = reg.Register("Walk");
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kAlreadyExists);
}

TEST(ActivityRegistryTest, DuplicateIdRejected) {
  ActivityRegistry reg;
  ASSERT_TRUE(reg.RegisterWithId(3, "A").ok());
  EXPECT_EQ(reg.RegisterWithId(3, "B").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(reg.RegisterWithId(4, "A").code(), StatusCode::kAlreadyExists);
}

TEST(ActivityRegistryTest, UnknownLookupsFail) {
  ActivityRegistry reg = ActivityRegistry::BaseActivities();
  EXPECT_EQ(reg.IdOf("Fly").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(reg.NameOf(999).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(reg.Contains(999));
  EXPECT_TRUE(reg.Contains(kStill));
}

TEST(ActivityRegistryTest, IdsSortedAscending) {
  ActivityRegistry reg;
  ASSERT_TRUE(reg.RegisterWithId(7, "c").ok());
  ASSERT_TRUE(reg.RegisterWithId(2, "a").ok());
  ASSERT_TRUE(reg.RegisterWithId(5, "b").ok());
  EXPECT_EQ(reg.Ids(), (std::vector<ActivityId>{2, 5, 7}));
}

TEST(ActivityRegistryTest, NextIdSkipsManualIds) {
  ActivityRegistry reg;
  ASSERT_TRUE(reg.RegisterWithId(10, "manual").ok());
  auto id = reg.Register("auto");
  EXPECT_EQ(id.value(), 11);
}

TEST(ActivityRegistryTest, SerializationRoundTrip) {
  ActivityRegistry reg = ActivityRegistry::BaseActivities();
  ASSERT_TRUE(reg.Register("Gesture Hi").ok());

  BinaryWriter w;
  reg.Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = ActivityRegistry::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().size(), 6u);
  EXPECT_EQ(back.value().IdOf("Gesture Hi").value(), 5);
  // New registrations after deserialisation continue from the right id.
  EXPECT_EQ(back.value().Register("Next").value(), 6);
}

TEST(ActivityRegistryTest, DeserializeCorruptFails) {
  BinaryWriter w;
  w.WriteU64(3);  // claims 3 entries, provides none
  BinaryReader r(w.buffer());
  EXPECT_FALSE(ActivityRegistry::Deserialize(&r).ok());
}

}  // namespace
}  // namespace magneto::sensors
