#include "sensors/signal_model.h"

#include <vector>

#include <gtest/gtest.h>

#include "sensors/sensor_types.h"

namespace magneto::sensors {
namespace {

TEST(SignalModelTest, DefaultLibraryCoversBaseActivities) {
  ActivityLibrary lib = DefaultActivityLibrary();
  EXPECT_EQ(lib.size(), 5u);
  EXPECT_TRUE(lib.count(kDrive));
  EXPECT_TRUE(lib.count(kEScooter));
  EXPECT_TRUE(lib.count(kRun));
  EXPECT_TRUE(lib.count(kStill));
  EXPECT_TRUE(lib.count(kWalk));
}

TEST(SignalModelTest, StillIsQuieterThanRun) {
  ActivityLibrary lib = DefaultActivityLibrary();
  const ChannelModel& still_acc = lib[kStill].channel(Channel::kAccX);
  const ChannelModel& run_acc = lib[kRun].channel(Channel::kAccX);
  double still_amp = still_acc.noise_sigma;
  for (const Harmonic& h : still_acc.harmonics) still_amp += h.amplitude;
  double run_amp = run_acc.noise_sigma;
  for (const Harmonic& h : run_acc.harmonics) run_amp += h.amplitude;
  EXPECT_LT(still_amp, run_amp);
}

TEST(SignalModelTest, WalkAndRunHaveDistinctCadence) {
  ActivityLibrary lib = DefaultActivityLibrary();
  const auto& walk = lib[kWalk].channel(Channel::kAccX).harmonics;
  const auto& run = lib[kRun].channel(Channel::kAccX).harmonics;
  ASSERT_FALSE(walk.empty());
  ASSERT_FALSE(run.empty());
  EXPECT_LT(walk[0].frequency_hz, run[0].frequency_hz);
}

TEST(SignalModelTest, DriveHasSpeedBaseline) {
  ActivityLibrary lib = DefaultActivityLibrary();
  EXPECT_GT(lib[kDrive].channel(Channel::kSpeed).baseline, 5.0);
  EXPECT_LT(lib[kStill].channel(Channel::kSpeed).baseline, 0.5);
}

TEST(SignalModelTest, GravityZNearG) {
  ActivityLibrary lib = DefaultActivityLibrary();
  for (const auto& [id, model] : lib) {
    EXPECT_NEAR(model.channel(Channel::kGravityZ).baseline, 9.5, 0.5)
        << "activity " << id;
  }
}

TEST(SignalModelTest, GestureModelsDifferBySeed) {
  SignalModel g1 = MakeGestureModel(1);
  SignalModel g2 = MakeGestureModel(2);
  const auto& h1 = g1.channel(Channel::kAccX).harmonics;
  const auto& h2 = g2.channel(Channel::kAccX).harmonics;
  ASSERT_FALSE(h1.empty());
  ASSERT_FALSE(h2.empty());
  // Gesture frequency is seed-dependent.
  EXPECT_NE(h1.back().frequency_hz, h2.back().frequency_hz);
}

TEST(SignalModelTest, GestureModelIsDeterministicInSeed) {
  SignalModel a = MakeGestureModel(42);
  SignalModel b = MakeGestureModel(42);
  const auto& ha = a.channel(Channel::kGyroY).harmonics;
  const auto& hb = b.channel(Channel::kGyroY).harmonics;
  ASSERT_EQ(ha.size(), hb.size());
  for (size_t i = 0; i < ha.size(); ++i) {
    EXPECT_DOUBLE_EQ(ha[i].amplitude, hb[i].amplitude);
    EXPECT_DOUBLE_EQ(ha[i].frequency_hz, hb[i].frequency_hz);
  }
}

TEST(SignalModelTest, GestureAddsEnergyOverStill) {
  // A gesture is "Still plus an arm oscillation": its motion channels must
  // carry more harmonic energy than plain Still.
  ActivityLibrary lib = DefaultActivityLibrary();
  SignalModel gesture = MakeGestureModel(7);
  const auto& still_h = lib[kStill].channel(Channel::kLinAccX).harmonics;
  const auto& gesture_h = gesture.channel(Channel::kLinAccX).harmonics;
  EXPECT_GT(gesture_h.size(), still_h.size());
}

TEST(SignalModelTest, ExtendedLibraryAddsThreeClasses) {
  ActivityLibrary lib = ExtendedActivityLibrary();
  EXPECT_EQ(lib.size(), 8u);
  EXPECT_TRUE(lib.count(kCycle));
  EXPECT_TRUE(lib.count(kStairsUp));
  EXPECT_TRUE(lib.count(kSit));
  // The base five are identical to the default library.
  ActivityLibrary base = DefaultActivityLibrary();
  EXPECT_DOUBLE_EQ(lib[kWalk].channel(Channel::kAccX).harmonics[0].amplitude,
                   base[kWalk].channel(Channel::kAccX).harmonics[0].amplitude);
}

TEST(SignalModelTest, StairsUpSlowerThanWalkWithFallingPressure) {
  ActivityLibrary lib = ExtendedActivityLibrary();
  const auto& walk = lib[kWalk].channel(Channel::kAccX).harmonics;
  const auto& stairs = lib[kStairsUp].channel(Channel::kAccX).harmonics;
  ASSERT_FALSE(walk.empty());
  ASSERT_FALSE(stairs.empty());
  EXPECT_LT(stairs[0].frequency_hz, walk[0].frequency_hz);
  EXPECT_GT(lib[kStairsUp].channel(Channel::kPressure).drift_sigma,
            lib[kWalk].channel(Channel::kPressure).drift_sigma);
}

TEST(SignalModelTest, SitHasTiltedGravity) {
  ActivityLibrary lib = ExtendedActivityLibrary();
  // Sitting (thigh pocket): gravity projects mostly onto X, not Z.
  EXPECT_GT(lib[kSit].channel(Channel::kGravityX).baseline,
            lib[kSit].channel(Channel::kGravityZ).baseline);
  EXPECT_GT(lib[kStill].channel(Channel::kGravityZ).baseline,
            lib[kStill].channel(Channel::kGravityX).baseline);
}

TEST(SignalModelTest, CycleHasIntermediateSpeed) {
  ActivityLibrary lib = ExtendedActivityLibrary();
  const double cycle = lib[kCycle].channel(Channel::kSpeed).baseline;
  EXPECT_GT(cycle, lib[kWalk].channel(Channel::kSpeed).baseline);
  EXPECT_LT(cycle, lib[kDrive].channel(Channel::kSpeed).baseline);
}

TEST(SignalModelTest, LargeVocabularyIsDeterministic) {
  LargeVocabularyOptions options;
  options.num_classes = 12;
  ActivityLibrary a = LargeVocabularyLibrary(options);
  ActivityLibrary b = LargeVocabularyLibrary(options);
  ASSERT_EQ(a.size(), 12u);
  ASSERT_EQ(a.begin()->first, options.first_id);
  for (const auto& [id, model] : a) {
    const SignalModel& other = b.at(id);
    for (size_t ch = 0; ch < kNumChannels; ++ch) {
      ASSERT_EQ(model.channels[ch].harmonics.size(),
                other.channels[ch].harmonics.size());
      EXPECT_EQ(model.channels[ch].baseline, other.channels[ch].baseline);
      for (size_t h = 0; h < model.channels[ch].harmonics.size(); ++h) {
        EXPECT_EQ(model.channels[ch].harmonics[h].frequency_hz,
                  other.channels[ch].harmonics[h].frequency_hz);
        EXPECT_EQ(model.channels[ch].harmonics[h].amplitude,
                  other.channels[ch].harmonics[h].amplitude);
      }
    }
  }
}

TEST(SignalModelTest, LargeVocabularyClassesStableUnderGrowth) {
  // Class i depends only on (seed, overlap, first_id + i): growing the
  // vocabulary must leave existing classes bit-identical, or every index
  // rebuild at a new scale would silently shift the data distribution.
  LargeVocabularyOptions small;
  small.num_classes = 5;
  LargeVocabularyOptions big = small;
  big.num_classes = 50;
  ActivityLibrary lib_small = LargeVocabularyLibrary(small);
  ActivityLibrary lib_big = LargeVocabularyLibrary(big);
  for (const auto& [id, model] : lib_small) {
    const SignalModel& grown = lib_big.at(id);
    for (size_t ch = 0; ch < kNumChannels; ++ch) {
      EXPECT_EQ(model.channels[ch].baseline, grown.channels[ch].baseline);
      ASSERT_EQ(model.channels[ch].harmonics.size(),
                grown.channels[ch].harmonics.size());
      for (size_t h = 0; h < model.channels[ch].harmonics.size(); ++h) {
        EXPECT_EQ(model.channels[ch].harmonics[h].phase,
                  grown.channels[ch].harmonics[h].phase);
      }
    }
  }
}

TEST(SignalModelTest, OverlapOneCollapsesAllClasses) {
  LargeVocabularyOptions options;
  options.num_classes = 4;
  options.overlap = 1.0;
  ActivityLibrary lib = LargeVocabularyLibrary(options);
  const SignalModel& first = lib.begin()->second;
  for (const auto& [id, model] : lib) {
    for (size_t ch = 0; ch < kNumChannels; ++ch) {
      EXPECT_EQ(model.channels[ch].baseline, first.channels[ch].baseline);
      for (size_t h = 0; h < model.channels[ch].harmonics.size(); ++h) {
        EXPECT_EQ(model.channels[ch].harmonics[h].frequency_hz,
                  first.channels[ch].harmonics[h].frequency_hz);
      }
    }
  }
}

TEST(SignalModelTest, ZeroOverlapKeepsClassesDistinct) {
  LargeVocabularyOptions options;
  options.num_classes = 8;
  options.overlap = 0.0;
  ActivityLibrary lib = LargeVocabularyLibrary(options);
  // The primary gait frequency separates any two classes.
  std::vector<double> freqs;
  for (const auto& [id, model] : lib) {
    const auto& harmonics = model.channel(Channel::kAccX).harmonics;
    ASSERT_FALSE(harmonics.empty());
    freqs.push_back(harmonics[0].frequency_hz);
  }
  for (size_t i = 0; i < freqs.size(); ++i) {
    for (size_t j = i + 1; j < freqs.size(); ++j) {
      EXPECT_NE(freqs[i], freqs[j]) << "classes " << i << " and " << j;
    }
  }
}

TEST(SensorTypesTest, ChannelNamesAreStable) {
  EXPECT_EQ(ChannelName(Channel::kAccX), "acc_x");
  EXPECT_EQ(ChannelName(Channel::kSpeed), "speed");
  EXPECT_EQ(ChannelName(Channel::kPressure), "pressure");
}

}  // namespace
}  // namespace magneto::sensors
