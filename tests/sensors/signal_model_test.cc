#include "sensors/signal_model.h"

#include <gtest/gtest.h>

#include "sensors/sensor_types.h"

namespace magneto::sensors {
namespace {

TEST(SignalModelTest, DefaultLibraryCoversBaseActivities) {
  ActivityLibrary lib = DefaultActivityLibrary();
  EXPECT_EQ(lib.size(), 5u);
  EXPECT_TRUE(lib.count(kDrive));
  EXPECT_TRUE(lib.count(kEScooter));
  EXPECT_TRUE(lib.count(kRun));
  EXPECT_TRUE(lib.count(kStill));
  EXPECT_TRUE(lib.count(kWalk));
}

TEST(SignalModelTest, StillIsQuieterThanRun) {
  ActivityLibrary lib = DefaultActivityLibrary();
  const ChannelModel& still_acc = lib[kStill].channel(Channel::kAccX);
  const ChannelModel& run_acc = lib[kRun].channel(Channel::kAccX);
  double still_amp = still_acc.noise_sigma;
  for (const Harmonic& h : still_acc.harmonics) still_amp += h.amplitude;
  double run_amp = run_acc.noise_sigma;
  for (const Harmonic& h : run_acc.harmonics) run_amp += h.amplitude;
  EXPECT_LT(still_amp, run_amp);
}

TEST(SignalModelTest, WalkAndRunHaveDistinctCadence) {
  ActivityLibrary lib = DefaultActivityLibrary();
  const auto& walk = lib[kWalk].channel(Channel::kAccX).harmonics;
  const auto& run = lib[kRun].channel(Channel::kAccX).harmonics;
  ASSERT_FALSE(walk.empty());
  ASSERT_FALSE(run.empty());
  EXPECT_LT(walk[0].frequency_hz, run[0].frequency_hz);
}

TEST(SignalModelTest, DriveHasSpeedBaseline) {
  ActivityLibrary lib = DefaultActivityLibrary();
  EXPECT_GT(lib[kDrive].channel(Channel::kSpeed).baseline, 5.0);
  EXPECT_LT(lib[kStill].channel(Channel::kSpeed).baseline, 0.5);
}

TEST(SignalModelTest, GravityZNearG) {
  ActivityLibrary lib = DefaultActivityLibrary();
  for (const auto& [id, model] : lib) {
    EXPECT_NEAR(model.channel(Channel::kGravityZ).baseline, 9.5, 0.5)
        << "activity " << id;
  }
}

TEST(SignalModelTest, GestureModelsDifferBySeed) {
  SignalModel g1 = MakeGestureModel(1);
  SignalModel g2 = MakeGestureModel(2);
  const auto& h1 = g1.channel(Channel::kAccX).harmonics;
  const auto& h2 = g2.channel(Channel::kAccX).harmonics;
  ASSERT_FALSE(h1.empty());
  ASSERT_FALSE(h2.empty());
  // Gesture frequency is seed-dependent.
  EXPECT_NE(h1.back().frequency_hz, h2.back().frequency_hz);
}

TEST(SignalModelTest, GestureModelIsDeterministicInSeed) {
  SignalModel a = MakeGestureModel(42);
  SignalModel b = MakeGestureModel(42);
  const auto& ha = a.channel(Channel::kGyroY).harmonics;
  const auto& hb = b.channel(Channel::kGyroY).harmonics;
  ASSERT_EQ(ha.size(), hb.size());
  for (size_t i = 0; i < ha.size(); ++i) {
    EXPECT_DOUBLE_EQ(ha[i].amplitude, hb[i].amplitude);
    EXPECT_DOUBLE_EQ(ha[i].frequency_hz, hb[i].frequency_hz);
  }
}

TEST(SignalModelTest, GestureAddsEnergyOverStill) {
  // A gesture is "Still plus an arm oscillation": its motion channels must
  // carry more harmonic energy than plain Still.
  ActivityLibrary lib = DefaultActivityLibrary();
  SignalModel gesture = MakeGestureModel(7);
  const auto& still_h = lib[kStill].channel(Channel::kLinAccX).harmonics;
  const auto& gesture_h = gesture.channel(Channel::kLinAccX).harmonics;
  EXPECT_GT(gesture_h.size(), still_h.size());
}

TEST(SignalModelTest, ExtendedLibraryAddsThreeClasses) {
  ActivityLibrary lib = ExtendedActivityLibrary();
  EXPECT_EQ(lib.size(), 8u);
  EXPECT_TRUE(lib.count(kCycle));
  EXPECT_TRUE(lib.count(kStairsUp));
  EXPECT_TRUE(lib.count(kSit));
  // The base five are identical to the default library.
  ActivityLibrary base = DefaultActivityLibrary();
  EXPECT_DOUBLE_EQ(lib[kWalk].channel(Channel::kAccX).harmonics[0].amplitude,
                   base[kWalk].channel(Channel::kAccX).harmonics[0].amplitude);
}

TEST(SignalModelTest, StairsUpSlowerThanWalkWithFallingPressure) {
  ActivityLibrary lib = ExtendedActivityLibrary();
  const auto& walk = lib[kWalk].channel(Channel::kAccX).harmonics;
  const auto& stairs = lib[kStairsUp].channel(Channel::kAccX).harmonics;
  ASSERT_FALSE(walk.empty());
  ASSERT_FALSE(stairs.empty());
  EXPECT_LT(stairs[0].frequency_hz, walk[0].frequency_hz);
  EXPECT_GT(lib[kStairsUp].channel(Channel::kPressure).drift_sigma,
            lib[kWalk].channel(Channel::kPressure).drift_sigma);
}

TEST(SignalModelTest, SitHasTiltedGravity) {
  ActivityLibrary lib = ExtendedActivityLibrary();
  // Sitting (thigh pocket): gravity projects mostly onto X, not Z.
  EXPECT_GT(lib[kSit].channel(Channel::kGravityX).baseline,
            lib[kSit].channel(Channel::kGravityZ).baseline);
  EXPECT_GT(lib[kStill].channel(Channel::kGravityZ).baseline,
            lib[kStill].channel(Channel::kGravityX).baseline);
}

TEST(SignalModelTest, CycleHasIntermediateSpeed) {
  ActivityLibrary lib = ExtendedActivityLibrary();
  const double cycle = lib[kCycle].channel(Channel::kSpeed).baseline;
  EXPECT_GT(cycle, lib[kWalk].channel(Channel::kSpeed).baseline);
  EXPECT_LT(cycle, lib[kDrive].channel(Channel::kSpeed).baseline);
}

TEST(SensorTypesTest, ChannelNamesAreStable) {
  EXPECT_EQ(ChannelName(Channel::kAccX), "acc_x");
  EXPECT_EQ(ChannelName(Channel::kSpeed), "speed");
  EXPECT_EQ(ChannelName(Channel::kPressure), "pressure");
}

}  // namespace
}  // namespace magneto::sensors
