#include "sensors/context.h"

#include <cmath>

#include <gtest/gtest.h>

namespace magneto::sensors {
namespace {

TEST(RecordingContextTest, SampleIsDeterministicInRng) {
  Rng a(42), b(42);
  RecordingContext c1 = RecordingContext::Sample(&a);
  RecordingContext c2 = RecordingContext::Sample(&b);
  EXPECT_DOUBLE_EQ(c1.light_scale, c2.light_scale);
  EXPECT_DOUBLE_EQ(c1.pressure_shift, c2.pressure_shift);
  EXPECT_DOUBLE_EQ(c1.proximity, c2.proximity);
}

TEST(RecordingContextTest, SamplesStayInPhysicalRanges) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    RecordingContext ctx = RecordingContext::Sample(&rng);
    EXPECT_GT(ctx.light_scale, 0.01);
    EXPECT_LT(ctx.light_scale, 10.0);
    EXPECT_GE(ctx.pressure_shift, -40.0);
    EXPECT_LE(ctx.pressure_shift, 15.0);
    EXPECT_GE(ctx.proximity, 0.0);
    EXPECT_LE(ctx.proximity, 6.0);
    EXPECT_GT(ctx.speed_noise_scale, 0.0);
  }
}

TEST(RecordingContextTest, ApplyShiftsEnvironmentChannels) {
  ActivityLibrary lib = DefaultActivityLibrary();
  RecordingContext ctx;
  ctx.light_scale = 3.0;
  ctx.pressure_shift = -25.0;
  ctx.proximity = 0.5;
  SignalModel out = ctx.Apply(lib[kWalk]);
  EXPECT_NEAR(out.channel(Channel::kLight).baseline,
              lib[kWalk].channel(Channel::kLight).baseline * 3.0, 1e-9);
  EXPECT_NEAR(out.channel(Channel::kPressure).baseline,
              lib[kWalk].channel(Channel::kPressure).baseline - 25.0, 1e-9);
  EXPECT_DOUBLE_EQ(out.channel(Channel::kProximity).baseline, 0.5);
}

TEST(RecordingContextTest, ApplyLeavesMotionHarmonicsAlone) {
  // The activity's gait signature must survive the context: contexts are
  // nuisance, not class information.
  ActivityLibrary lib = DefaultActivityLibrary();
  Rng rng(9);
  RecordingContext ctx = RecordingContext::Sample(&rng);
  SignalModel out = ctx.Apply(lib[kRun]);
  const auto& orig = lib[kRun].channel(Channel::kAccX).harmonics;
  const auto& after = out.channel(Channel::kAccX).harmonics;
  ASSERT_EQ(orig.size(), after.size());
  for (size_t i = 0; i < orig.size(); ++i) {
    EXPECT_DOUBLE_EQ(orig[i].amplitude, after[i].amplitude);
    EXPECT_DOUBLE_EQ(orig[i].frequency_hz, after[i].frequency_hz);
  }
}

TEST(RecordingContextTest, MagnetometerShifted) {
  ActivityLibrary lib = DefaultActivityLibrary();
  RecordingContext ctx;
  ctx.mag_shift[0] = 10.0;
  ctx.mag_shift[1] = -5.0;
  ctx.mag_shift[2] = 0.0;
  SignalModel out = ctx.Apply(lib[kStill]);
  EXPECT_NEAR(out.channel(Channel::kMagX).baseline,
              lib[kStill].channel(Channel::kMagX).baseline + 10.0, 1e-9);
  EXPECT_NEAR(out.channel(Channel::kMagY).baseline,
              lib[kStill].channel(Channel::kMagY).baseline - 5.0, 1e-9);
}

}  // namespace
}  // namespace magneto::sensors
