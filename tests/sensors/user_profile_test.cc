#include "sensors/user_profile.h"

#include <cmath>

#include <gtest/gtest.h>

namespace magneto::sensors {
namespace {

TEST(UserProfileTest, CanonicalIsIdentity) {
  UserProfile canonical = UserProfile::Canonical();
  ActivityLibrary lib = DefaultActivityLibrary();
  SignalModel walk = lib[kWalk];
  SignalModel same = canonical.Personalize(walk);
  for (size_t c = 0; c < kNumChannels; ++c) {
    EXPECT_DOUBLE_EQ(same.channels[c].baseline, walk.channels[c].baseline);
    EXPECT_DOUBLE_EQ(same.channels[c].noise_sigma,
                     walk.channels[c].noise_sigma);
    ASSERT_EQ(same.channels[c].harmonics.size(),
              walk.channels[c].harmonics.size());
    for (size_t h = 0; h < walk.channels[c].harmonics.size(); ++h) {
      EXPECT_DOUBLE_EQ(same.channels[c].harmonics[h].amplitude,
                       walk.channels[c].harmonics[h].amplitude);
      EXPECT_DOUBLE_EQ(same.channels[c].harmonics[h].frequency_hz,
                       walk.channels[c].harmonics[h].frequency_hz);
    }
  }
}

TEST(UserProfileTest, ZeroIntensityIsNearCanonical) {
  UserProfile p(123, 0.0);
  ActivityLibrary lib = DefaultActivityLibrary();
  SignalModel walk = lib[kWalk];
  SignalModel out = p.Personalize(walk);
  // exp(N(0, 0)) == 1, N(0, 0) == 0: everything must be untouched.
  for (size_t c = 0; c < kNumChannels; ++c) {
    for (size_t h = 0; h < walk.channels[c].harmonics.size(); ++h) {
      EXPECT_NEAR(out.channels[c].harmonics[h].amplitude,
                  walk.channels[c].harmonics[h].amplitude, 1e-12);
    }
  }
}

TEST(UserProfileTest, PerturbationsScaleWithIntensity) {
  ActivityLibrary lib = DefaultActivityLibrary();
  const SignalModel& walk = lib[kWalk];
  const double base_amp = walk.channel(Channel::kAccX).harmonics[0].amplitude;

  double mild_dev = 0.0, strong_dev = 0.0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    UserProfile mild(1000 + i, 0.1);
    UserProfile strong(1000 + i, 1.0);
    mild_dev += std::fabs(
        mild.Personalize(walk).channel(Channel::kAccX).harmonics[0].amplitude -
        base_amp);
    strong_dev += std::fabs(
        strong.Personalize(walk).channel(Channel::kAccX).harmonics[0].amplitude -
        base_amp);
  }
  EXPECT_LT(mild_dev, strong_dev);
}

TEST(UserProfileTest, DeterministicInSeed) {
  ActivityLibrary lib = DefaultActivityLibrary();
  UserProfile a(55, 0.3), b(55, 0.3);
  SignalModel ma = a.Personalize(lib[kRun]);
  SignalModel mb = b.Personalize(lib[kRun]);
  EXPECT_DOUBLE_EQ(ma.channel(Channel::kGyroX).noise_sigma,
                   mb.channel(Channel::kGyroX).noise_sigma);
}

TEST(UserProfileTest, TempoShiftAppliesToAllHarmonicsEqually) {
  ActivityLibrary lib = DefaultActivityLibrary();
  UserProfile p(7, 0.5);
  SignalModel out = p.Personalize(lib[kWalk]);
  const auto& orig = lib[kWalk].channel(Channel::kAccX).harmonics;
  const auto& pers = out.channel(Channel::kAccX).harmonics;
  ASSERT_GE(orig.size(), 2u);
  const double ratio0 = pers[0].frequency_hz / orig[0].frequency_hz;
  const double ratio1 = pers[1].frequency_hz / orig[1].frequency_hz;
  EXPECT_NEAR(ratio0, ratio1, 1e-12);  // one cadence for the whole body
  EXPECT_NE(ratio0, 1.0);
}

TEST(UserProfileTest, PersonalizeLibraryCoversAllActivities) {
  ActivityLibrary lib = DefaultActivityLibrary();
  UserProfile p(9, 0.3);
  ActivityLibrary personal = p.Personalize(lib);
  EXPECT_EQ(personal.size(), lib.size());
  for (const auto& [id, model] : lib) EXPECT_TRUE(personal.count(id));
}

TEST(UserProfileTest, EnvironmentBaselinesStaySane) {
  // Pressure (~1013 hPa) must not be shifted by a unit-scale offset.
  ActivityLibrary lib = DefaultActivityLibrary();
  UserProfile p(13, 1.0);
  SignalModel out = p.Personalize(lib[kStill]);
  EXPECT_NEAR(out.channel(Channel::kPressure).baseline, 1013.0, 30.0);
}

}  // namespace
}  // namespace magneto::sensors
