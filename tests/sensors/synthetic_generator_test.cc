#include "sensors/synthetic_generator.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "common/math_utils.h"

namespace magneto::sensors {
namespace {

TEST(SyntheticGeneratorTest, ShapeMatchesDurationAndRate) {
  SyntheticGenerator gen(1);
  ActivityLibrary lib = DefaultActivityLibrary();
  Recording rec = gen.Generate(lib[kWalk], 2.0);
  EXPECT_EQ(rec.num_samples(), 240u);  // 2 s @ 120 Hz
  EXPECT_EQ(rec.num_channels(), kNumChannels);
  EXPECT_NEAR(rec.duration_seconds(), 2.0, 1e-9);
}

TEST(SyntheticGeneratorTest, CustomSampleRate) {
  GeneratorOptions options;
  options.sample_rate_hz = 50.0;
  SyntheticGenerator gen(options, 1);
  Recording rec = gen.Generate(DefaultActivityLibrary()[kStill], 1.0);
  EXPECT_EQ(rec.num_samples(), 50u);
  EXPECT_DOUBLE_EQ(rec.sample_rate_hz, 50.0);
}

TEST(SyntheticGeneratorTest, DeterministicForSeed) {
  ActivityLibrary lib = DefaultActivityLibrary();
  SyntheticGenerator g1(77), g2(77);
  Recording a = g1.Generate(lib[kRun], 1.0);
  Recording b = g2.Generate(lib[kRun], 1.0);
  ASSERT_EQ(a.num_samples(), b.num_samples());
  for (size_t i = 0; i < a.num_samples(); ++i) {
    for (size_t c = 0; c < kNumChannels; ++c) {
      ASSERT_FLOAT_EQ(a.samples.At(i, c), b.samples.At(i, c));
    }
  }
}

TEST(SyntheticGeneratorTest, DifferentSeedsProduceDifferentSignals) {
  ActivityLibrary lib = DefaultActivityLibrary();
  SyntheticGenerator g1(1), g2(2);
  Recording a = g1.Generate(lib[kRun], 1.0);
  Recording b = g2.Generate(lib[kRun], 1.0);
  bool differs = false;
  for (size_t i = 0; i < a.num_samples() && !differs; ++i) {
    differs = a.samples.At(i, 0) != b.samples.At(i, 0);
  }
  EXPECT_TRUE(differs);
}

TEST(SyntheticGeneratorTest, StillHasLowMotionEnergy) {
  ActivityLibrary lib = DefaultActivityLibrary();
  SyntheticGenerator gen(3);
  Recording still = gen.Generate(lib[kStill], 4.0);
  Recording run = gen.Generate(lib[kRun], 4.0);
  auto channel_std = [](const Recording& r, Channel c) {
    std::vector<float> col(r.num_samples());
    for (size_t i = 0; i < col.size(); ++i) {
      col[i] = r.samples.At(i, static_cast<size_t>(c));
    }
    return stats::StdDev(col.data(), col.size());
  };
  EXPECT_LT(channel_std(still, Channel::kAccX),
            channel_std(run, Channel::kAccX) / 3.0);
}

TEST(SyntheticGeneratorTest, WalkEnergyConcentratesNearCadence) {
  // Goertzel-style check: the walk acc signal should carry more power at the
  // ~1.9 Hz cadence than at an off-frequency like 10 Hz.
  ActivityLibrary lib = DefaultActivityLibrary();
  SyntheticGenerator gen(5);
  Recording walk = gen.Generate(lib[kWalk], 8.0);
  auto power_at = [&](double freq) {
    double re = 0.0, im = 0.0;
    const size_t n = walk.num_samples();
    for (size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) / walk.sample_rate_hz;
      const double v = walk.samples.At(i, 0);  // acc_x
      re += v * std::cos(2.0 * M_PI * freq * t);
      im += v * std::sin(2.0 * M_PI * freq * t);
    }
    return (re * re + im * im) / static_cast<double>(n);
  };
  EXPECT_GT(power_at(1.9), 5.0 * power_at(10.0));
}

TEST(SyntheticGeneratorTest, GenerateManyProducesIndependentRecordings) {
  ActivityLibrary lib = DefaultActivityLibrary();
  SyntheticGenerator gen(9);
  auto recs = gen.GenerateMany(lib[kWalk], 3, 1.0);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_NE(recs[0].samples.At(0, 0), recs[1].samples.At(0, 0));
}

TEST(SyntheticGeneratorTest, GenerateDatasetLabelsEveryClass) {
  ActivityLibrary lib = DefaultActivityLibrary();
  SyntheticGenerator gen(11);
  auto dataset = gen.GenerateDataset(lib, 2, 1.0);
  EXPECT_EQ(dataset.size(), 10u);
  std::map<ActivityId, int> counts;
  for (const auto& rec : dataset) ++counts[rec.label];
  for (const auto& [id, model] : lib) EXPECT_EQ(counts[id], 2);
}

TEST(SyntheticGeneratorTest, PhaseRandomizationCanBeDisabled) {
  GeneratorOptions options;
  options.randomize_phase = false;
  ActivityLibrary lib = DefaultActivityLibrary();
  // With fixed phase and no noise, two generators with different seeds agree.
  SignalModel clean = lib[kWalk];
  for (auto& ch : clean.channels) {
    ch.noise_sigma = 0.0;
    ch.drift_sigma = 0.0;
    ch.burst_rate_hz = 0.0;
  }
  SyntheticGenerator g1(options, 1), g2(options, 999);
  Recording a = g1.Generate(clean, 1.0);
  Recording b = g2.Generate(clean, 1.0);
  for (size_t i = 0; i < a.num_samples(); ++i) {
    ASSERT_FLOAT_EQ(a.samples.At(i, 0), b.samples.At(i, 0));
  }
}

TEST(SyntheticGeneratorTest, VocabularyDatasetCoversEveryClass) {
  LargeVocabularyOptions vocab;
  vocab.num_classes = 30;
  SyntheticGenerator gen(3);
  auto dataset = gen.GenerateVocabularyDataset(vocab, /*per_class=*/2,
                                               /*duration_s=*/0.5);
  ASSERT_EQ(dataset.size(), 60u);
  std::map<ActivityId, size_t> counts;
  for (const auto& rec : dataset) {
    ++counts[rec.label];
    EXPECT_GT(rec.recording.num_samples(), 0u);
  }
  ASSERT_EQ(counts.size(), 30u);
  for (const auto& [id, n] : counts) {
    EXPECT_GE(id, vocab.first_id);
    EXPECT_LT(id, vocab.first_id + static_cast<ActivityId>(vocab.num_classes));
    EXPECT_EQ(n, 2u);
  }
}

TEST(SyntheticGeneratorTest, ZeroDurationYieldsEmptyRecording) {
  SyntheticGenerator gen(1);
  Recording rec = gen.Generate(DefaultActivityLibrary()[kStill], 0.0);
  EXPECT_EQ(rec.num_samples(), 0u);
}

}  // namespace
}  // namespace magneto::sensors
