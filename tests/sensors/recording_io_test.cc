#include "sensors/recording_io.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "sensors/signal_model.h"

namespace magneto::sensors {
namespace {

std::string TempPath(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

std::vector<LabeledRecording> Campaign(uint64_t seed) {
  SyntheticGenerator gen(seed);
  return gen.GenerateDataset(DefaultActivityLibrary(), 1, 2.0);
}

TEST(RecordingIoTest, SingleRecordingRoundTrip) {
  SyntheticGenerator gen(1);
  Recording rec = gen.Generate(DefaultActivityLibrary()[kWalk], 1.5);
  BinaryWriter w;
  SerializeRecording(rec, &w);
  BinaryReader r(w.buffer());
  auto back = DeserializeRecording(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back.value().sample_rate_hz, rec.sample_rate_hz);
  ASSERT_TRUE(back.value().samples.SameShape(rec.samples));
  for (size_t i = 0; i < rec.samples.size(); ++i) {
    EXPECT_FLOAT_EQ(back.value().samples.data()[i], rec.samples.data()[i]);
  }
}

TEST(RecordingIoTest, CampaignFileRoundTrip) {
  const std::string path = TempPath("magneto_campaign_test.msns");
  auto campaign = Campaign(2);
  ASSERT_TRUE(SaveRecordings(campaign, path).ok());
  auto back = LoadRecordings(path);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back.value().size(), campaign.size());
  for (size_t i = 0; i < campaign.size(); ++i) {
    EXPECT_EQ(back.value()[i].label, campaign[i].label);
    EXPECT_EQ(back.value()[i].recording.num_samples(),
              campaign[i].recording.num_samples());
    EXPECT_FLOAT_EQ(back.value()[i].recording.samples.At(10, 3),
                    campaign[i].recording.samples.At(10, 3));
  }
  std::remove(path.c_str());
}

TEST(RecordingIoTest, EmptyCampaignRoundTrips) {
  const std::string path = TempPath("magneto_empty_campaign.msns");
  ASSERT_TRUE(SaveRecordings({}, path).ok());
  auto back = LoadRecordings(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
  std::remove(path.c_str());
}

TEST(RecordingIoTest, CorruptionDetected) {
  const std::string path = TempPath("magneto_corrupt_campaign.msns");
  ASSERT_TRUE(SaveRecordings(Campaign(3), path).ok());
  auto bytes = ReadFile(path).ValueOrDie();
  bytes[bytes.size() / 2] ^= 0x10;
  ASSERT_TRUE(WriteFile(path, bytes).ok());
  auto back = LoadRecordings(path);
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(RecordingIoTest, WrongMagicRejected) {
  const std::string path = TempPath("magneto_not_a_campaign.bin");
  ASSERT_TRUE(WriteFile(path, "definitely not sensor data").ok());
  EXPECT_FALSE(LoadRecordings(path).ok());
  std::remove(path.c_str());
}

TEST(RecordingIoTest, TruncationRejected) {
  const std::string path = TempPath("magneto_truncated_campaign.msns");
  ASSERT_TRUE(SaveRecordings(Campaign(4), path).ok());
  auto bytes = ReadFile(path).ValueOrDie();
  ASSERT_TRUE(WriteFile(path, bytes.substr(0, bytes.size() / 3)).ok());
  EXPECT_FALSE(LoadRecordings(path).ok());
  std::remove(path.c_str());
}

TEST(FeatureCsvTest, WritesHeaderAndRows) {
  const std::string path = TempPath("magneto_features.csv");
  FeatureDataset ds;
  ds.Append({1.5f, -2.0f}, 0);
  ds.Append({0.25f, 3.0f}, 4);
  ASSERT_TRUE(WriteFeatureCsv(ds, {"alpha", "beta"}, path).ok());
  const std::string csv = ReadFile(path).ValueOrDie();
  EXPECT_EQ(csv,
            "label,alpha,beta\n"
            "0,1.5,-2\n"
            "4,0.25,3\n");
  std::remove(path.c_str());
}

TEST(FeatureCsvTest, DefaultColumnNames) {
  const std::string path = TempPath("magneto_features_default.csv");
  FeatureDataset ds;
  ds.Append({1.0f}, 2);
  ASSERT_TRUE(WriteFeatureCsv(ds, {}, path).ok());
  const std::string csv = ReadFile(path).ValueOrDie();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "label,f0");
  std::remove(path.c_str());
}

TEST(FeatureCsvTest, NameCountMismatchRejected) {
  FeatureDataset ds;
  ds.Append({1.0f, 2.0f}, 0);
  EXPECT_FALSE(WriteFeatureCsv(ds, {"only_one"}, "/tmp/x.csv").ok());
}

TEST(RecordingIoTest, MissingFileIsIoError) {
  auto back = LoadRecordings("/no/such/campaign.msns");
  EXPECT_EQ(back.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace magneto::sensors
