#include "compress/compress.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "nn/loss.h"

namespace magneto::compress {
namespace {

nn::Sequential SmallNet(uint64_t seed) {
  Rng rng(seed);
  return nn::BuildMlp(12, {24, 16, 8}, &rng);
}

Matrix RandomBatch(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  return m;
}

double MaxOutputDiff(nn::Sequential* a, nn::Sequential* b, const Matrix& x) {
  nn::ForwardWorkspace ws;
  Matrix ya = a->Forward(x, &ws);
  Matrix yb = b->Forward(x, &ws);
  ya.SubInPlace(yb);
  return ya.AbsMax();
}

TEST(QuantizeBackboneTest, PreservesOutputsApproximately) {
  nn::Sequential net = SmallNet(1);
  auto quantized = QuantizeBackbone(net);
  ASSERT_TRUE(quantized.ok());
  Matrix x = RandomBatch(5, 12, 2);
  nn::ForwardWorkspace ws;
  Matrix y = net.Forward(x, &ws);
  EXPECT_LT(MaxOutputDiff(&net, &quantized.value(), x),
            0.05f * (y.AbsMax() + 1.0f));
}

TEST(QuantizeBackboneTest, ShrinksSerializedSize) {
  nn::Sequential net = SmallNet(3);
  auto quantized = QuantizeBackbone(net);
  ASSERT_TRUE(quantized.ok());
  const size_t fp32 = SerializedBytes(net);
  const size_t int8 = SerializedBytes(quantized.value());
  EXPECT_LT(int8, fp32 / 2);  // ~4x on weights, biases/headers dilute
}

TEST(QuantizeBackboneTest, RoundTripsThroughSequentialSerialization) {
  nn::Sequential net = SmallNet(5);
  auto quantized = QuantizeBackbone(net);
  ASSERT_TRUE(quantized.ok());
  BinaryWriter w;
  quantized.value().Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = nn::Sequential::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  Matrix x = RandomBatch(3, 12, 6);
  EXPECT_FLOAT_EQ(MaxOutputDiff(&quantized.value(), &back.value(), x), 0.0f);
}

TEST(PruneTest, AchievesRequestedSparsity) {
  nn::Sequential net = SmallNet(7);
  EXPECT_DOUBLE_EQ(Sparsity(net), 0.0);
  auto sparsity = PruneByMagnitude(&net, 0.5);
  ASSERT_TRUE(sparsity.ok());
  EXPECT_NEAR(sparsity.value(), 0.5, 0.02);
  EXPECT_NEAR(Sparsity(net), sparsity.value(), 1e-12);
}

TEST(PruneTest, ZeroFractionIsNoOp) {
  nn::Sequential net = SmallNet(8);
  Matrix x = RandomBatch(2, 12, 9);
  nn::ForwardWorkspace ws;
  Matrix before = net.Forward(x, &ws);
  auto sparsity = PruneByMagnitude(&net, 0.0);
  ASSERT_TRUE(sparsity.ok());
  EXPECT_DOUBLE_EQ(sparsity.value(), 0.0);
  Matrix after = net.Forward(x, &ws);
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(before.data()[i], after.data()[i]);
  }
}

TEST(PruneTest, MildPruningBarelyMovesOutputs) {
  nn::Sequential net = SmallNet(10);
  nn::Sequential original = net.Clone();
  ASSERT_TRUE(PruneByMagnitude(&net, 0.2).ok());
  Matrix x = RandomBatch(4, 12, 11);
  nn::ForwardWorkspace ws;
  Matrix y = original.Forward(x, &ws);
  // Removing the smallest 20% of weights changes outputs far less than the
  // output scale.
  EXPECT_LT(MaxOutputDiff(&original, &net, x), 0.35f * (y.AbsMax() + 1.0f));
}

TEST(PruneTest, InvalidFractionRejected) {
  nn::Sequential net = SmallNet(12);
  EXPECT_FALSE(PruneByMagnitude(&net, -0.1).ok());
  EXPECT_FALSE(PruneByMagnitude(&net, 1.0).ok());
  EXPECT_FALSE(PruneByMagnitude(nullptr, 0.5).ok());
}

TEST(PruneTest, SparseEncodingShrinksWithSparsity) {
  nn::Sequential dense = SmallNet(13);
  nn::Sequential sparse = dense.Clone();
  ASSERT_TRUE(PruneByMagnitude(&sparse, 0.8).ok());
  EXPECT_LT(SparseEncodedBytes(sparse), SparseEncodedBytes(dense) / 2);
}

TEST(FactorizeTest, FullEnergyKeepsLayersWhenNotSmaller) {
  // A square-ish small layer cannot be compressed at full energy: the net
  // must come back structurally unchanged.
  Rng rng(14);
  nn::Sequential net;
  net.Add(std::make_unique<nn::Linear>(8, 8, &rng));
  auto factored = FactorizeBackbone(net, 1.0);
  ASSERT_TRUE(factored.ok());
  EXPECT_EQ(factored.value().num_layers(), 1u);
}

TEST(FactorizeTest, LowRankLayerIsCompressedLosslessly) {
  // Construct a Linear whose weight is exactly rank 2.
  Rng rng(15);
  Matrix u = RandomBatch(40, 2, 16);
  Matrix v = RandomBatch(2, 30, 17);
  auto layer = std::make_unique<nn::Linear>(40, 30);
  layer->weight() = MatMul(u, v);
  layer->bias().Fill(0.25f);
  nn::Sequential net;
  net.Add(std::move(layer));

  auto factored = FactorizeBackbone(net, 0.999);
  ASSERT_TRUE(factored.ok());
  ASSERT_EQ(factored.value().num_layers(), 2u);  // two thin layers
  EXPECT_LT(SerializedBytes(factored.value()), SerializedBytes(net) / 2);

  Matrix x = RandomBatch(5, 40, 18);
  EXPECT_LT(MaxOutputDiff(&net, &factored.value(), x), 1e-2f);
}

TEST(FactorizeTest, EnergyFractionControlsAccuracySizeTradeoff) {
  nn::Sequential net = SmallNet(19);
  auto lossy = FactorizeBackbone(net, 0.7);
  auto faithful = FactorizeBackbone(net, 0.99);
  ASSERT_TRUE(lossy.ok());
  ASSERT_TRUE(faithful.ok());
  Matrix x = RandomBatch(6, 12, 20);
  EXPECT_LE(MaxOutputDiff(&net, &faithful.value(), x),
            MaxOutputDiff(&net, &lossy.value(), x) + 1e-4);
}

TEST(FactorizeTest, InvalidEnergyRejected) {
  nn::Sequential net = SmallNet(21);
  EXPECT_FALSE(FactorizeBackbone(net, 0.0).ok());
  EXPECT_FALSE(FactorizeBackbone(net, 1.5).ok());
}

TEST(DistillStudentTest, StudentApproximatesTeacher) {
  nn::Sequential teacher = SmallNet(22);
  sensors::FeatureDataset transfer;
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    std::vector<float> x(12);
    for (float& v : x) v = static_cast<float>(rng.Normal(0.0, 1.0));
    transfer.Append(x, 0);
  }
  StudentOptions options;
  options.dims = {16};
  options.epochs = 150;
  options.learning_rate = 3e-3;
  double final_loss = 1e9;
  auto student = DistillStudent(teacher, transfer, options, &final_loss);
  ASSERT_TRUE(student.ok());
  EXPECT_LT(student.value().NumParameters(), teacher.NumParameters());

  // Success criterion relative to the teacher's own output energy: the
  // student must explain most of the teacher's variance, not hit an
  // arbitrary absolute number.
  nn::ForwardWorkspace ws;
  Matrix targets = teacher.Forward(transfer.ToMatrix(), &ws);
  const double energy = static_cast<double>(targets.SumOfSquares()) /
                        static_cast<double>(targets.rows());
  EXPECT_LT(final_loss, 0.25 * energy)
      << "final " << final_loss << " vs energy " << energy;

  // On fresh inputs the student stays near the teacher.
  Matrix x = RandomBatch(8, 12, 24);
  Matrix t = teacher.Forward(x, &ws);
  Matrix s = student.value().Forward(x, &ws);
  auto mse = nn::DistillationMse(s, t);
  EXPECT_LT(mse.loss, 0.6 * energy);
}

TEST(DistillStudentTest, InputValidation) {
  nn::Sequential teacher = SmallNet(25);
  sensors::FeatureDataset empty;
  EXPECT_FALSE(DistillStudent(teacher, empty, StudentOptions{}).ok());
  sensors::FeatureDataset one;
  one.Append(std::vector<float>(12, 0.0f), 0);
  StudentOptions zero_epochs;
  zero_epochs.epochs = 0;
  EXPECT_FALSE(DistillStudent(teacher, one, zero_epochs).ok());
}

}  // namespace
}  // namespace magneto::compress
