#include "common/parallel.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace magneto {
namespace {

/// Restores the pool size after each test so thread-count experiments don't
/// leak into the rest of the suite.
class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = ParallelThreads(); }
  void TearDown() override { SetParallelThreads(saved_threads_); }
  size_t saved_threads_ = 1;
};

TEST_F(ParallelTest, ZeroSizeRangeNeverInvokesBody) {
  std::atomic<int> calls{0};
  ParallelFor(0, 0, 1, [&](size_t, size_t) { ++calls; });
  ParallelFor(5, 5, 4, [&](size_t, size_t) { ++calls; });
  ParallelFor(7, 3, 2, [&](size_t, size_t) { ++calls; });  // inverted range
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    SetParallelThreads(threads);
    constexpr size_t kN = 10'000;
    std::vector<std::atomic<int>> hits(kN);
    ParallelFor(0, kN, 37, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST_F(ParallelTest, ChunkBoundariesDependOnlyOnRangeAndGrain) {
  auto boundaries = [](size_t threads) {
    SetParallelThreads(threads);
    std::vector<std::pair<size_t, size_t>> chunks(100);
    std::atomic<size_t> count{0};
    ParallelFor(3, 250, 17, [&](size_t lo, size_t hi) {
      chunks[count.fetch_add(1)] = {lo, hi};
    });
    chunks.resize(count.load());
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto serial = boundaries(1);
  const auto threaded = boundaries(8);
  EXPECT_EQ(serial, threaded);
  // ceil((250 - 3) / 17) chunks, first starting at 3, last ending at 250.
  ASSERT_EQ(serial.size(), (250u - 3u + 16u) / 17u);
  EXPECT_EQ(serial.front().first, 3u);
  EXPECT_EQ(serial.back().second, 250u);
}

TEST_F(ParallelTest, NestedParallelForRunsInlineAndCorrectly) {
  SetParallelThreads(4);
  constexpr size_t kOuter = 16, kInner = 64;
  std::vector<int> data(kOuter * kInner, 0);
  ParallelFor(0, kOuter, 1, [&](size_t lo, size_t hi) {
    for (size_t o = lo; o < hi; ++o) {
      // Nested call: must not deadlock, must still cover its range.
      ParallelFor(0, kInner, 8, [&](size_t ilo, size_t ihi) {
        for (size_t i = ilo; i < ihi; ++i) data[o * kInner + i] += 1;
      });
    }
  });
  EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0),
            static_cast<int>(kOuter * kInner));
}

TEST_F(ParallelTest, ExceptionPropagatesToCaller) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    SetParallelThreads(threads);
    EXPECT_THROW(
        ParallelFor(0, 100, 10,
                    [&](size_t lo, size_t) {
                      if (lo >= 50) throw std::runtime_error("boom");
                    }),
        std::runtime_error);
    // Pool must still be usable after an exception.
    std::atomic<int> ok{0};
    ParallelFor(0, 10, 1, [&](size_t, size_t) { ++ok; });
    EXPECT_EQ(ok.load(), 10);
  }
}

TEST_F(ParallelTest, SetThreadCountRoundTrips) {
  SetParallelThreads(3);
  EXPECT_EQ(ParallelThreads(), 3u);
  SetParallelThreads(1);
  EXPECT_EQ(ParallelThreads(), 1u);
  // Clamped to at least one lane (the caller).
  SetParallelThreads(0);
  EXPECT_EQ(ParallelThreads(), 1u);
}

TEST_F(ParallelTest, GrainZeroIsTreatedAsOne) {
  SetParallelThreads(2);
  std::vector<std::atomic<int>> hits(9);
  ParallelFor(0, 9, 0, [&](size_t lo, size_t hi) {
    EXPECT_EQ(hi, lo + 1);
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, ManyConcurrentRegionsStayCoherent) {
  SetParallelThreads(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<size_t> sum{0};
    ParallelFor(0, 64, 4, [&](size_t lo, size_t hi) {
      size_t local = 0;
      for (size_t i = lo; i < hi; ++i) local += i;
      sum.fetch_add(local);
    });
    ASSERT_EQ(sum.load(), 64u * 63u / 2u);
  }
}

}  // namespace
}  // namespace magneto
