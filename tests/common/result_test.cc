#include "common/result.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace magneto {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusIsRejected) {
  // Constructing a Result from an OK status is a programming error that is
  // converted to an internal error rather than UB.
  Result<int> r(Status::Ok());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, CopySemantics) {
  Result<std::string> a(std::string("hello"));
  Result<std::string> b = a;
  EXPECT_EQ(a.value(), "hello");
  EXPECT_EQ(b.value(), "hello");
  Result<std::string> c(Status::IoError("x"));
  c = b;
  EXPECT_TRUE(c.ok());
  EXPECT_EQ(c.value(), "hello");
}

TEST(ResultTest, CopyErrorOverValue) {
  Result<std::string> a(std::string("hello"));
  Result<std::string> err(Status::IoError("x"));
  a = err;
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kIoError);
}

TEST(ResultTest, MoveSemantics) {
  Result<std::vector<int>> a(std::vector<int>{1, 2, 3});
  Result<std::vector<int>> b = std::move(a);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().size(), 3u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, MutableValue) {
  Result<std::vector<int>> r(std::vector<int>{1});
  r.value().push_back(2);
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto producer = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("bad");
    return 5;
  };
  auto consumer = [&](bool fail) -> Result<int> {
    MAGNETO_ASSIGN_OR_RETURN(int v, producer(fail));
    return v * 2;
  };
  EXPECT_EQ(consumer(false).value(), 10);
  EXPECT_EQ(consumer(true).status().code(), StatusCode::kOutOfRange);
}

TEST(ResultDeathTest, AccessingErrorValueAborts) {
  Result<int> r(Status::NotFound("x"));
  EXPECT_DEATH({ (void)r.value(); }, "");
}

}  // namespace
}  // namespace magneto
