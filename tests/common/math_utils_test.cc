#include "common/math_utils.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace magneto {
namespace {

TEST(StatsTest, MeanVarianceStd) {
  const std::vector<float> x{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(stats::Mean(x.data(), x.size()), 5.0);
  EXPECT_DOUBLE_EQ(stats::Variance(x.data(), x.size()), 4.0);
  EXPECT_DOUBLE_EQ(stats::StdDev(x.data(), x.size()), 2.0);
}

TEST(StatsTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(stats::Mean(nullptr, 0), 0.0);
  EXPECT_DOUBLE_EQ(stats::Variance(nullptr, 0), 0.0);
  const float one = 5.0f;
  EXPECT_DOUBLE_EQ(stats::Mean(&one, 1), 5.0);
  EXPECT_DOUBLE_EQ(stats::Variance(&one, 1), 0.0);
  EXPECT_DOUBLE_EQ(stats::Skewness(&one, 1), 0.0);
  EXPECT_DOUBLE_EQ(stats::Kurtosis(&one, 1), 0.0);
}

TEST(StatsTest, MinMax) {
  const std::vector<float> x{3, -1, 4, 1, 5};
  EXPECT_DOUBLE_EQ(stats::Min(x.data(), x.size()), -1.0);
  EXPECT_DOUBLE_EQ(stats::Max(x.data(), x.size()), 5.0);
}

TEST(StatsTest, QuantileAndMedian) {
  const std::vector<float> x{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(stats::Quantile(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::Quantile(x, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(stats::Median(x), 2.5);
  EXPECT_DOUBLE_EQ(stats::Quantile(x, 0.25), 1.75);
  // Out-of-range p is clamped.
  EXPECT_DOUBLE_EQ(stats::Quantile(x, 2.0), 4.0);
}

TEST(StatsTest, IqrOfUniformGrid) {
  const std::vector<float> x{0, 1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_DOUBLE_EQ(stats::Iqr(x), 4.0);
}

TEST(StatsTest, SkewnessSignReflectsAsymmetry) {
  const std::vector<float> right{1, 1, 1, 1, 10};
  const std::vector<float> left{-10, 1, 1, 1, 1};
  EXPECT_GT(stats::Skewness(right.data(), right.size()), 0.5);
  EXPECT_LT(stats::Skewness(left.data(), left.size()), -0.5);
  const std::vector<float> sym{-2, -1, 0, 1, 2};
  EXPECT_NEAR(stats::Skewness(sym.data(), sym.size()), 0.0, 1e-9);
}

TEST(StatsTest, KurtosisOfConstantIsZero) {
  const std::vector<float> c{3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(stats::Kurtosis(c.data(), c.size()), 0.0);
}

TEST(StatsTest, KurtosisHeavyTails) {
  // A spike among constants has positive excess kurtosis.
  std::vector<float> x(100, 0.0f);
  x[0] = 10.0f;
  EXPECT_GT(stats::Kurtosis(x.data(), x.size()), 3.0);
}

TEST(StatsTest, EnergyAndRms) {
  const std::vector<float> x{3, 4};
  EXPECT_DOUBLE_EQ(stats::Energy(x.data(), x.size()), 12.5);
  EXPECT_DOUBLE_EQ(stats::RootMeanSquare(x.data(), x.size()),
                   std::sqrt(12.5));
}

TEST(StatsTest, MeanAbsDeviation) {
  const std::vector<float> x{1, 3};  // mean 2, deviations 1,1
  EXPECT_DOUBLE_EQ(stats::MeanAbsDeviation(x.data(), x.size()), 1.0);
}

TEST(StatsTest, ZeroCrossingRateOfAlternatingSignal) {
  const std::vector<float> x{1, -1, 1, -1, 1};
  EXPECT_DOUBLE_EQ(stats::ZeroCrossingRate(x.data(), x.size()), 1.0);
  const std::vector<float> flat{1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(stats::ZeroCrossingRate(flat.data(), flat.size()), 0.0);
}

TEST(StatsTest, AutocorrelationOfPeriodicSignal) {
  // Period-4 square-ish wave: lag-4 autocorr near 1, lag-2 near -1.
  std::vector<float> x;
  for (int i = 0; i < 100; ++i) {
    x.push_back((i % 4 < 2) ? 1.0f : -1.0f);
  }
  EXPECT_NEAR(stats::Autocorrelation(x.data(), x.size(), 4), 1.0, 0.1);
  EXPECT_LT(stats::Autocorrelation(x.data(), x.size(), 2), -0.8);
}

TEST(StatsTest, AutocorrelationDegenerateCases) {
  const std::vector<float> x{1, 2, 3};
  EXPECT_DOUBLE_EQ(stats::Autocorrelation(x.data(), x.size(), 5), 0.0);
  const std::vector<float> c{2, 2, 2, 2};
  EXPECT_DOUBLE_EQ(stats::Autocorrelation(c.data(), c.size(), 1), 0.0);
}

TEST(StatsTest, PearsonCorrelation) {
  const std::vector<float> x{1, 2, 3, 4};
  const std::vector<float> y{2, 4, 6, 8};
  EXPECT_NEAR(stats::PearsonCorrelation(x.data(), y.data(), 4), 1.0, 1e-9);
  const std::vector<float> z{8, 6, 4, 2};
  EXPECT_NEAR(stats::PearsonCorrelation(x.data(), z.data(), 4), -1.0, 1e-9);
  const std::vector<float> c{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(stats::PearsonCorrelation(x.data(), c.data(), 4), 0.0);
}

TEST(StatsTest, MeanAbsDiff) {
  const std::vector<float> x{0, 2, 1, 4};
  EXPECT_DOUBLE_EQ(stats::MeanAbsDiff(x.data(), x.size()), 2.0);
  const float one = 1.0f;
  EXPECT_DOUBLE_EQ(stats::MeanAbsDiff(&one, 1), 0.0);
}

TEST(MathTest, LogSumExpStable) {
  const std::vector<double> big{1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(big.data(), big.size()), 1000.0 + std::log(2.0),
              1e-9);
  const std::vector<double> mixed{0.0, std::log(3.0)};
  EXPECT_NEAR(LogSumExp(mixed.data(), mixed.size()), std::log(4.0), 1e-12);
}

TEST(MathTest, SoftmaxSumsToOne) {
  std::vector<float> x{1.0f, 2.0f, 3.0f};
  SoftmaxInPlace(x.data(), x.size());
  EXPECT_NEAR(x[0] + x[1] + x[2], 1.0, 1e-6);
  EXPECT_GT(x[2], x[1]);
  EXPECT_GT(x[1], x[0]);
}

TEST(MathTest, SoftmaxHandlesLargeLogits) {
  std::vector<float> x{1000.0f, 1000.0f};
  SoftmaxInPlace(x.data(), x.size());
  EXPECT_NEAR(x[0], 0.5, 1e-6);
}

TEST(MathTest, Clamp) {
  EXPECT_FLOAT_EQ(Clamp(5.0f, 0.0f, 1.0f), 1.0f);
  EXPECT_FLOAT_EQ(Clamp(-5.0f, 0.0f, 1.0f), 0.0f);
  EXPECT_FLOAT_EQ(Clamp(0.5f, 0.0f, 1.0f), 0.5f);
}

}  // namespace
}  // namespace magneto
