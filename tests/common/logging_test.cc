// LogConfig contract: level filtering, MAGNETO_LOG_LEVEL parsing, and the
// pluggable sink that lets tests capture log output instead of stderr.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"

namespace magneto {
namespace {

struct CapturedLine {
  LogLevel level;
  std::string file;
  int line;
  std::string message;
};

/// Installs a capturing sink for the test's duration and restores the
/// stderr default (and kInfo level) afterwards.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LogConfig::SetMinLevel(LogLevel::kInfo);
    LogConfig::SetSink([this](LogLevel level, const char* file, int line,
                              const std::string& message) {
      lines_.push_back({level, file, line, message});
    });
  }
  void TearDown() override {
    LogConfig::SetSink(nullptr);
    LogConfig::SetMinLevel(LogLevel::kInfo);
  }

  std::vector<CapturedLine> lines_;
};

TEST_F(LoggingTest, SinkReceivesFormattedMessages) {
  MAGNETO_LOG(Info) << "hello " << 42;
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].level, LogLevel::kInfo);
  EXPECT_NE(lines_[0].message.find("hello 42"), std::string::npos);
  EXPECT_NE(lines_[0].message.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(lines_[0].file.find("logging_test.cc"), std::string::npos);
  EXPECT_GT(lines_[0].line, 0);
}

TEST_F(LoggingTest, MessagesBelowMinLevelAreDropped) {
  MAGNETO_LOG(Debug) << "too quiet";
  EXPECT_TRUE(lines_.empty());

  LogConfig::SetMinLevel(LogLevel::kError);
  MAGNETO_LOG(Info) << "still too quiet";
  MAGNETO_LOG(Warning) << "and this";
  EXPECT_TRUE(lines_.empty());
  MAGNETO_LOG(Error) << "loud enough";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].level, LogLevel::kError);
}

TEST_F(LoggingTest, LoweringTheLevelEnablesDebug) {
  LogConfig::SetMinLevel(LogLevel::kDebug);
  MAGNETO_LOG(Debug) << "now visible";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].level, LogLevel::kDebug);
}

TEST(ParseLevelTest, AcceptsNamesAnyCaseAndDigits) {
  EXPECT_EQ(LogConfig::ParseLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(LogConfig::ParseLevel("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(LogConfig::ParseLevel("Info"), LogLevel::kInfo);
  EXPECT_EQ(LogConfig::ParseLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(LogConfig::ParseLevel("WARNING"), LogLevel::kWarning);
  EXPECT_EQ(LogConfig::ParseLevel("error"), LogLevel::kError);
  EXPECT_EQ(LogConfig::ParseLevel("fatal"), LogLevel::kFatal);
  EXPECT_EQ(LogConfig::ParseLevel("0"), LogLevel::kDebug);
  EXPECT_EQ(LogConfig::ParseLevel("4"), LogLevel::kFatal);
  EXPECT_EQ(LogConfig::ParseLevel(""), std::nullopt);
  EXPECT_EQ(LogConfig::ParseLevel("verbose"), std::nullopt);
  EXPECT_EQ(LogConfig::ParseLevel("7"), std::nullopt);
}

}  // namespace
}  // namespace magneto
