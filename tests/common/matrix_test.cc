#include "common/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace magneto {
namespace {

TEST(MatrixTest, ConstructionAndShape) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_FLOAT_EQ(m.At(2, 3), 0.0f);
  EXPECT_EQ(m.ShapeString(), "[3 x 4]");
}

TEST(MatrixTest, ConstructionFromData) {
  Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(m.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.At(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m.At(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(m.At(1, 1), 4.0f);
}

TEST(MatrixTest, RowAccess) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.Row(1), (std::vector<float>{4, 5, 6}));
  m.SetRow(0, {9, 8, 7});
  EXPECT_FLOAT_EQ(m.At(0, 2), 7.0f);
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {10, 20, 30, 40});
  a.AddInPlace(b);
  EXPECT_FLOAT_EQ(a.At(1, 1), 44.0f);
  a.SubInPlace(b);
  EXPECT_FLOAT_EQ(a.At(1, 1), 4.0f);
  a.MulInPlace(b);
  EXPECT_FLOAT_EQ(a.At(0, 1), 40.0f);
  a.Scale(0.5f);
  EXPECT_FLOAT_EQ(a.At(0, 0), 5.0f);
}

TEST(MatrixTest, Axpy) {
  Matrix a(1, 3, {1, 1, 1});
  Matrix b(1, 3, {2, 4, 6});
  a.Axpy(0.5f, b);
  EXPECT_FLOAT_EQ(a.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(a.At(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(a.At(0, 2), 4.0f);
}

TEST(MatrixTest, Transposed) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_FLOAT_EQ(t.At(2, 1), 6.0f);
  EXPECT_FLOAT_EQ(t.At(0, 1), 4.0f);
}

TEST(MatrixTest, RowSlice) {
  Matrix m(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix s = m.RowSlice(1, 3);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_FLOAT_EQ(s.At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(s.At(1, 1), 6.0f);
}

TEST(MatrixTest, VStack) {
  Matrix a(1, 2, {1, 2});
  Matrix b(2, 2, {3, 4, 5, 6});
  Matrix s = VStack(a, b);
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_FLOAT_EQ(s.At(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(s.At(2, 0), 5.0f);
  // Empty operands pass through.
  Matrix empty;
  EXPECT_EQ(VStack(empty, b).rows(), 2u);
  EXPECT_EQ(VStack(a, Matrix()).rows(), 1u);
}

TEST(MatrixTest, Reductions) {
  Matrix m(2, 2, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(m.SumOfSquares(), 30.0f);
  EXPECT_FLOAT_EQ(m.AbsMax(), 4.0f);
  Matrix mean = m.ColMean();
  EXPECT_EQ(mean.rows(), 1u);
  EXPECT_FLOAT_EQ(mean.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(mean.At(0, 1), -3.0f);
  Matrix sum = m.ColSum();
  EXPECT_FLOAT_EQ(sum.At(0, 0), 4.0f);
}

TEST(MatMulTest, SmallKnownProduct) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = MatMul(a, b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
}

TEST(MatMulTest, IdentityIsNeutral) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix id(2, 2, {1, 0, 0, 1});
  Matrix c = MatMul(a, id);
  EXPECT_FLOAT_EQ(c.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 4.0f);
}

TEST(MatMulTest, TransAVariantMatchesExplicitTranspose) {
  Matrix a(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 4, {1, 0, 2, 1, 0, 1, 1, 2, 3, 1, 0, 1});
  Matrix expected = MatMul(a.Transposed(), b);
  Matrix got = MatMulTransA(a, b);
  ASSERT_TRUE(got.SameShape(expected));
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_FLOAT_EQ(got.data()[i], expected.data()[i]) << "index " << i;
  }
}

TEST(MatMulTest, TransBVariantMatchesExplicitTranspose) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(4, 3, {1, 0, 2, 1, 0, 1, 1, 2, 3, 1, 0, 1});
  Matrix expected = MatMul(a, b.Transposed());
  Matrix got = MatMulTransB(a, b);
  ASSERT_TRUE(got.SameShape(expected));
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_FLOAT_EQ(got.data()[i], expected.data()[i]) << "index " << i;
  }
}

TEST(MatMulTest, LargeSizesCrossTileBoundaries) {
  // Exercise the tiled kernel across tile edges (tile = 64).
  const size_t m = 70, k = 130, n = 65;
  Matrix a(m, k), b(k, n);
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>((i % 7)) - 3.0f;
  }
  for (size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<float>((i % 5)) - 2.0f;
  }
  Matrix c = MatMul(a, b);
  // Spot-check a few entries against a reference dot product.
  for (size_t probe : {size_t{0}, size_t{m * n / 2}, size_t{m * n - 1}}) {
    const size_t r = probe / n, col = probe % n;
    double expect = 0.0;
    for (size_t kk = 0; kk < k; ++kk) {
      expect += static_cast<double>(a.At(r, kk)) * b.At(kk, col);
    }
    EXPECT_NEAR(c.At(r, col), expect, 1e-3) << "at " << r << "," << col;
  }
}

TEST(MatMulTest, ParallelPathMatchesSerialSemantics) {
  // Large enough to cross the threading threshold; results must equal a
  // row-by-row reference since row partitioning never splits accumulation.
  const size_t m = 256, k = 256, n = 256;  // 16.7M MACs > threshold
  Matrix a(m, k), b(k, n);
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>((i * 2654435761u) % 17) - 8.0f;
  }
  for (size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<float>((i * 40503u) % 13) - 6.0f;
  }
  Matrix c = MatMul(a, b);
  // Spot-check 16 scattered entries against direct dot products.
  for (size_t probe = 0; probe < 16; ++probe) {
    const size_t r = (probe * 911) % m;
    const size_t col = (probe * 577) % n;
    double expect = 0.0;
    for (size_t kk = 0; kk < k; ++kk) {
      expect += static_cast<double>(a.At(r, kk)) * b.At(kk, col);
    }
    EXPECT_NEAR(c.At(r, col), expect, std::fabs(expect) * 1e-5 + 1e-2);
  }
  // Determinism across calls (no cross-thread accumulation races).
  Matrix c2 = MatMul(a, b);
  for (size_t i = 0; i < c.size(); ++i) {
    ASSERT_FLOAT_EQ(c.data()[i], c2.data()[i]);
  }
}

TEST(SpanMathTest, SquaredL2AndDot) {
  const float a[] = {1, 2, 3};
  const float b[] = {4, 6, 8};
  EXPECT_FLOAT_EQ(SquaredL2(a, b, 3), 9.0f + 16.0f + 25.0f);
  EXPECT_FLOAT_EQ(Dot(a, b, 3), 4.0f + 12.0f + 24.0f);
}

TEST(MatrixDeathTest, ShapeMismatchAborts) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_DEATH(a.AddInPlace(b), "Check failed");
  EXPECT_DEATH(MatMul(a, Matrix(3, 2)), "Check failed");
}

}  // namespace
}  // namespace magneto
