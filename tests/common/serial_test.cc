#include "common/serial.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

namespace magneto {
namespace {

TEST(Crc32Test, KnownVectors) {
  // "123456789" -> 0xCBF43926 is the canonical CRC-32 check value.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(s, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, SensitiveToSingleBit) {
  std::string a = "hello world";
  std::string b = a;
  b[3] ^= 1;
  EXPECT_NE(Crc32(a.data(), a.size()), Crc32(b.data(), b.size()));
}

TEST(BinarySerialTest, PrimitiveRoundTrip) {
  BinaryWriter w;
  w.WriteU8(200);
  w.WriteU32(0xDEADBEEFu);
  w.WriteU64(1234567890123456789ull);
  w.WriteI64(-42);
  w.WriteF32(3.25f);
  w.WriteF64(-2.5);
  w.WriteBool(true);
  w.WriteBool(false);

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadU8().value(), 200);
  EXPECT_EQ(r.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64().value(), 1234567890123456789ull);
  EXPECT_EQ(r.ReadI64().value(), -42);
  EXPECT_FLOAT_EQ(r.ReadF32().value(), 3.25f);
  EXPECT_DOUBLE_EQ(r.ReadF64().value(), -2.5);
  EXPECT_TRUE(r.ReadBool().value());
  EXPECT_FALSE(r.ReadBool().value());
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinarySerialTest, StringRoundTrip) {
  BinaryWriter w;
  w.WriteString("hello");
  w.WriteString("");
  w.WriteString(std::string("\x00\x01\x02", 3));  // embedded NULs
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadString().value(), "hello");
  EXPECT_EQ(r.ReadString().value(), "");
  EXPECT_EQ(r.ReadString().value().size(), 3u);
}

TEST(BinarySerialTest, VectorRoundTrip) {
  BinaryWriter w;
  w.WriteF32Vector({1.5f, -2.5f, 0.0f});
  w.WriteF32Vector({});
  w.WriteI64Vector({-1, 0, 99});
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadF32Vector().value(), (std::vector<float>{1.5f, -2.5f, 0.0f}));
  EXPECT_TRUE(r.ReadF32Vector().value().empty());
  EXPECT_EQ(r.ReadI64Vector().value(), (std::vector<int64_t>{-1, 0, 99}));
}

TEST(BinarySerialTest, TruncatedPrimitiveFails) {
  BinaryWriter w;
  w.WriteU32(7);
  BinaryReader r(w.buffer().data(), 2);  // cut in half
  auto res = r.ReadU32();
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCorruption);
}

TEST(BinarySerialTest, TruncatedStringFails) {
  BinaryWriter w;
  w.WriteString("abcdef");
  BinaryReader r(w.buffer().data(), w.buffer().size() - 3);
  auto res = r.ReadString();
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCorruption);
}

TEST(BinarySerialTest, TruncatedVectorFails) {
  BinaryWriter w;
  w.WriteF32Vector({1, 2, 3, 4});
  BinaryReader r(w.buffer().data(), w.buffer().size() - 1);
  EXPECT_FALSE(r.ReadF32Vector().ok());
}

TEST(BinarySerialTest, LyingLengthPrefixFails) {
  // A length prefix larger than the remaining buffer must not read OOB.
  BinaryWriter w;
  w.WriteU64(1ull << 40);  // claims a petabyte of payload
  BinaryReader r(w.buffer());
  EXPECT_FALSE(r.ReadString().ok());
}

TEST(FileIoTest, WriteReadRoundTrip) {
  const std::string path =
      std::filesystem::temp_directory_path() / "magneto_serial_test.bin";
  const std::string payload("binary\x00payload", 14);
  ASSERT_TRUE(WriteFile(path, payload).ok());
  auto back = ReadFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), payload);
  std::remove(path.c_str());
}

TEST(FileIoTest, MissingFileIsIoError) {
  auto res = ReadFile("/nonexistent/definitely/missing.bin");
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kIoError);
}

TEST(AtomicFileIoTest, RoundTripAndOverwrite) {
  const std::string path =
      std::filesystem::temp_directory_path() / "magneto_atomic_test.bin";
  const std::string first("first\x00payload", 13);
  ASSERT_TRUE(WriteFileAtomic(path, first).ok());
  EXPECT_EQ(ReadFile(path).value(), first);
  // No staging residue after a successful write.
  EXPECT_FALSE(std::filesystem::exists(AtomicTempPath(path)));

  const std::string second(100000, 'z');
  ASSERT_TRUE(WriteFileAtomic(path, second).ok());
  EXPECT_EQ(ReadFile(path).value(), second);
  std::remove(path.c_str());
}

TEST(AtomicFileIoTest, PartialWriteLeavesOriginalIntact) {
  // Simulated power loss mid-write: the original file must survive, fully
  // readable — the property that makes `ModelBundle::SaveToFile` safe.
  const std::string path =
      std::filesystem::temp_directory_path() / "magneto_atomic_partial.bin";
  const std::string original = "the deployed bundle we cannot afford to lose";
  ASSERT_TRUE(WriteFileAtomic(path, original).ok());

  testing_internal::SetMaxWriteBytesForTest(7);
  const std::string replacement(4096, 'R');
  Status failed = WriteFileAtomic(path, replacement);
  testing_internal::SetMaxWriteBytesForTest(SIZE_MAX);

  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  // The victim of the "crash" is only the staging file...
  EXPECT_TRUE(std::filesystem::exists(AtomicTempPath(path)));
  EXPECT_LT(std::filesystem::file_size(AtomicTempPath(path)),
            replacement.size());
  // ...while the original contents are untouched.
  EXPECT_EQ(ReadFile(path).value(), original);

  // The stale temp does not poison the next write.
  ASSERT_TRUE(WriteFileAtomic(path, replacement).ok());
  EXPECT_EQ(ReadFile(path).value(), replacement);
  EXPECT_FALSE(std::filesystem::exists(AtomicTempPath(path)));
  std::remove(path.c_str());
}

TEST(AtomicFileIoTest, FailureToUnwritableDirectoryIsIoError) {
  Status s = WriteFileAtomic("/nonexistent/dir/file.bin", "x");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace magneto
