#include "common/random.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace magneto {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool differs = false;
  for (int i = 0; i < 10 && !differs; ++i) {
    differs = a.Uniform() != b.Uniform();
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values reachable
}

TEST(RngTest, NormalHasApproximateMoments) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(19);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementIsUnbiased) {
  // Every index should be picked with probability ~k/n.
  Rng rng(23);
  std::vector<int> counts(10, 0);
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    for (size_t idx : rng.SampleWithoutReplacement(10, 3)) ++counts[idx];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.05);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  // The child must not replay the parent's sequence.
  Rng fresh(31);
  (void)fresh.Uniform();  // consume the draw Fork() used
  bool differs = false;
  for (int i = 0; i < 10 && !differs; ++i) {
    differs = child.Uniform() != a.Uniform();
  }
  EXPECT_TRUE(differs);
}

TEST(RngDeathTest, IndexOnEmptyRangeAborts) {
  Rng rng(1);
  EXPECT_DEATH((void)rng.Index(0), "Check failed");
}

}  // namespace
}  // namespace magneto
