#include "common/fft.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace magneto {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(FftTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(120), 128u);
  EXPECT_EQ(NextPowerOfTwo(128), 128u);
  EXPECT_EQ(NextPowerOfTwo(129), 256u);
}

TEST(FftTest, DcSignal) {
  std::vector<std::complex<double>> data(8, {1.0, 0.0});
  Fft(&data);
  EXPECT_NEAR(data[0].real(), 8.0, 1e-12);
  for (size_t k = 1; k < 8; ++k) {
    EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-12) << "bin " << k;
  }
}

TEST(FftTest, SingleToneLandsInOneBin) {
  const size_t n = 64;
  std::vector<std::complex<double>> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = std::cos(2.0 * kPi * 5.0 * static_cast<double>(i) /
                       static_cast<double>(n));
  }
  Fft(&data);
  // A unit cosine at bin 5 -> |X_5| = |X_59| = n/2.
  EXPECT_NEAR(std::abs(data[5]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[n - 5]), n / 2.0, 1e-9);
  for (size_t k = 0; k < n; ++k) {
    if (k != 5 && k != n - 5) {
      EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-9) << "bin " << k;
    }
  }
}

TEST(FftTest, InverseRecoversSignal) {
  Rng rng(1);
  std::vector<std::complex<double>> data(128);
  std::vector<std::complex<double>> original(128);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = {rng.Normal(0, 1), rng.Normal(0, 1)};
    original[i] = data[i];
  }
  Fft(&data);
  Fft(&data, /*inverse=*/true);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-9);
  }
}

TEST(FftTest, ParsevalHolds) {
  Rng rng(2);
  const size_t n = 256;
  std::vector<std::complex<double>> data(n);
  double time_energy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    data[i] = rng.Normal(0, 1);
    time_energy += std::norm(data[i]);
  }
  Fft(&data);
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-6);
}

TEST(FftTest, MatchesNaiveDft) {
  Rng rng(3);
  const size_t n = 16;
  std::vector<std::complex<double>> data(n);
  for (auto& x : data) x = {rng.Normal(0, 1), 0.0};
  std::vector<std::complex<double>> naive(n);
  for (size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0, 0);
    for (size_t i = 0; i < n; ++i) {
      const double angle = -2.0 * kPi * static_cast<double>(k * i) /
                           static_cast<double>(n);
      acc += data[i] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    naive[k] = acc;
  }
  Fft(&data);
  for (size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(data[k].real(), naive[k].real(), 1e-9) << "bin " << k;
    EXPECT_NEAR(data[k].imag(), naive[k].imag(), 1e-9) << "bin " << k;
  }
}

TEST(FftDeathTest, NonPowerOfTwoAborts) {
  std::vector<std::complex<double>> data(12);
  EXPECT_DEATH(Fft(&data), "Check failed");
}

TEST(SpectrumTest, PowerSpectrumOfTone) {
  // 6 Hz cosine sampled at 128 Hz for 1 s: 128 samples, bin 6.
  const size_t n = 128;
  std::vector<float> x(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(
        std::cos(2.0 * kPi * 6.0 * static_cast<double>(i) / 128.0));
  }
  const auto power = PowerSpectrum(x.data(), n);
  ASSERT_EQ(power.size(), n / 2 + 1);
  size_t best = 0;
  for (size_t k = 1; k < power.size(); ++k) {
    if (power[k] > power[best]) best = k;
  }
  EXPECT_EQ(best, 6u);
}

TEST(SpectrumTest, ZeroPaddingKeepsFrequencyMapping) {
  // 120 samples @ 120 Hz padded to 128: a 4 Hz tone maps near bin
  // 4 * 128 / 120 ~ 4.27 -> dominant frequency estimate within one bin width.
  const size_t n = 120;
  std::vector<float> x(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(
        std::sin(2.0 * kPi * 4.0 * static_cast<double>(i) / 120.0));
  }
  const auto power = PowerSpectrum(x.data(), n);
  const double freq =
      spectral::DominantFrequency(power, 120.0, NextPowerOfTwo(n));
  EXPECT_NEAR(freq, 4.0, 120.0 / 128.0);
}

TEST(SpectralStatsTest, BandPowerPartitionsEnergy) {
  Rng rng(4);
  std::vector<float> x(128);
  for (float& v : x) v = static_cast<float>(rng.Normal(0, 1));
  const auto power = PowerSpectrum(x.data(), x.size());
  const double total = spectral::BandPower(power, 128.0, 128, 0.0, 65.0);
  const double lo = spectral::BandPower(power, 128.0, 128, 0.0, 20.0);
  const double hi = spectral::BandPower(power, 128.0, 128, 20.0, 65.0);
  EXPECT_NEAR(lo + hi, total, 1e-9);
  EXPECT_GT(lo, 0.0);
  EXPECT_GT(hi, 0.0);
}

TEST(SpectralStatsTest, EntropyOrdersToneBelowNoise) {
  std::vector<float> tone(128), noise(128);
  Rng rng(5);
  for (size_t i = 0; i < 128; ++i) {
    tone[i] = static_cast<float>(
        std::sin(2.0 * kPi * 10.0 * static_cast<double>(i) / 128.0));
    noise[i] = static_cast<float>(rng.Normal(0, 1));
  }
  const double tone_entropy =
      spectral::SpectralEntropy(PowerSpectrum(tone.data(), 128));
  const double noise_entropy =
      spectral::SpectralEntropy(PowerSpectrum(noise.data(), 128));
  EXPECT_LT(tone_entropy, 1.0);
  EXPECT_GT(noise_entropy, 4.0);
}

TEST(SpectralStatsTest, CentroidTracksToneFrequency) {
  std::vector<float> x(128);
  for (size_t i = 0; i < 128; ++i) {
    x[i] = static_cast<float>(
        std::sin(2.0 * kPi * 20.0 * static_cast<double>(i) / 128.0));
  }
  const double centroid =
      spectral::SpectralCentroid(PowerSpectrum(x.data(), 128), 128.0, 128);
  EXPECT_NEAR(centroid, 20.0, 1.0);
}

TEST(SpectralStatsTest, DegenerateInputs) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(spectral::DominantFrequency(empty, 100.0, 4), 0.0);
  const std::vector<double> zeros(10, 0.0);
  EXPECT_DOUBLE_EQ(spectral::SpectralEntropy(zeros), 0.0);
  EXPECT_DOUBLE_EQ(spectral::SpectralCentroid(zeros, 100.0, 16), 0.0);
}

}  // namespace
}  // namespace magneto
