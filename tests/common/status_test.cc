#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace magneto {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::PermissionDenied("x").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(Status::InvalidArgument("why").message(), "why");
  EXPECT_FALSE(Status::InvalidArgument("why").ok());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::Corruption("bad bytes");
  EXPECT_EQ(os.str(), "Corruption: bad bytes");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = [] { return Status::IoError("disk"); };
  auto wrapper = [&]() -> Status {
    MAGNETO_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIoError);
}

TEST(StatusTest, ReturnIfErrorMacroPassesOk) {
  auto ok = [] { return Status::Ok(); };
  auto wrapper = [&]() -> Status {
    MAGNETO_RETURN_IF_ERROR(ok());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kPermissionDenied),
            "PermissionDenied");
}

}  // namespace
}  // namespace magneto
