#include "common/qgemm.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"

namespace magneto {
namespace {

class QGemmTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = ParallelThreads(); }
  void TearDown() override { SetParallelThreads(saved_threads_); }
  size_t saved_threads_ = 1;
};

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed,
                    double stddev = 1.0) {
  Rng rng(seed);
  Matrix x(rows, cols);
  for (size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return x;
}

std::vector<int8_t> RandomInt8(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int8_t> v(n);
  for (auto& e : v) {
    e = static_cast<int8_t>(
        static_cast<int>(rng.Uniform() * 255.0) - 127);
  }
  return v;
}

TEST_F(QGemmTest, QuantizeRowsRoundTripErrorBounded) {
  Matrix x = RandomMatrix(5, 40, 1);
  QuantizedRows q;
  QuantizeRowsInt8(x, &q);
  ASSERT_EQ(q.rows, 5u);
  ASSERT_EQ(q.cols, 40u);
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t i = 0; i < x.cols(); ++i) {
      const float back =
          static_cast<float>(q.data[r * 40 + i]) * q.scales[r];
      EXPECT_LE(std::fabs(back - x.At(r, i)), q.scales[r] / 2.0f + 1e-6f);
    }
  }
}

TEST_F(QGemmTest, QuantizeRowsZeroRowUsesUnitScale) {
  Matrix x(2, 4);
  x.At(1, 2) = 3.0f;
  QuantizedRows q;
  QuantizeRowsInt8(x, &q);
  EXPECT_FLOAT_EQ(q.scales[0], 1.0f);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(q.data[i], 0);
  EXPECT_EQ(q.data[4 + 2], 127);
}

TEST_F(QGemmTest, QuantizeRowsNonFiniteDeterministic) {
  Matrix x(1, 4);
  x.At(0, 0) = std::numeric_limits<float>::quiet_NaN();
  x.At(0, 1) = std::numeric_limits<float>::infinity();
  x.At(0, 2) = -std::numeric_limits<float>::infinity();
  x.At(0, 3) = 2.0f;
  QuantizedRows q;
  QuantizeRowsInt8(x, &q);
  // Scale comes from the finite elements only; non-finite values saturate
  // (inf) or vanish (NaN) instead of invoking UB or poisoning the row.
  EXPECT_FLOAT_EQ(q.scales[0], 2.0f / 127.0f);
  EXPECT_EQ(q.data[0], 0);
  EXPECT_EQ(q.data[1], 127);
  EXPECT_EQ(q.data[2], -127);
  EXPECT_EQ(q.data[3], 127);
}

TEST_F(QGemmTest, MatchesNaiveIntegerGemm) {
  const size_t m = 7, k = 33, n = 12;
  Matrix x = RandomMatrix(m, k, 2);
  QuantizedRows qx;
  QuantizeRowsInt8(x, &qx);
  std::vector<int8_t> w = RandomInt8(k * n, 3);
  std::vector<float> w_scales(n);
  for (size_t j = 0; j < n; ++j) w_scales[j] = 0.01f + 0.001f * j;
  std::vector<float> bias(n);
  for (size_t j = 0; j < n; ++j) bias[j] = 0.1f * j;

  Matrix out;
  QGemmInt8(qx, w.data(), k, n, w_scales.data(), bias.data(), &out);
  for (size_t r = 0; r < m; ++r) {
    for (size_t j = 0; j < n; ++j) {
      int64_t acc = 0;
      for (size_t i = 0; i < k; ++i) {
        acc += int64_t{qx.data[r * k + i]} * w[i * n + j];
      }
      const float want = static_cast<float>(acc) *
                             (qx.scales[r] * w_scales[j]) +
                         bias[j];
      EXPECT_FLOAT_EQ(out.At(r, j), want);
    }
  }
}

TEST_F(QGemmTest, KernelAndReferenceBitIdenticalAcrossThreads) {
  // Shapes straddle the 4-way unroll (k % 4 != 0) and the row grain.
  const size_t m = 23, k = 130, n = 37;
  Matrix x = RandomMatrix(m, k, 4, 3.0);
  QuantizedRows qx;
  QuantizeRowsInt8(x, &qx);
  std::vector<int8_t> w = RandomInt8(k * n, 5);
  std::vector<float> w_scales(n, 0.02f);
  std::vector<float> bias(n, -0.5f);

  Matrix ref;
  QGemmInt8Reference(qx, w.data(), k, n, w_scales.data(), bias.data(), &ref);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{3}, size_t{8}}) {
    SetParallelThreads(threads);
    Matrix out;
    QGemmInt8(qx, w.data(), k, n, w_scales.data(), bias.data(), &out);
    ASSERT_TRUE(out.SameShape(ref));
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out.data()[i], ref.data()[i]) << "index " << i << " with "
                                              << threads << " threads";
    }
  }
}

TEST_F(QGemmTest, NullBiasMeansZero) {
  Matrix x = RandomMatrix(2, 8, 6);
  QuantizedRows qx;
  QuantizeRowsInt8(x, &qx);
  std::vector<int8_t> w = RandomInt8(8 * 3, 7);
  std::vector<float> w_scales(3, 0.1f);
  std::vector<float> zero_bias(3, 0.0f);
  Matrix with_zero, with_null;
  QGemmInt8(qx, w.data(), 8, 3, w_scales.data(), zero_bias.data(),
            &with_zero);
  QGemmInt8(qx, w.data(), 8, 3, w_scales.data(), nullptr, &with_null);
  for (size_t i = 0; i < with_zero.size(); ++i) {
    EXPECT_EQ(with_zero.data()[i], with_null.data()[i]);
  }
}

TEST_F(QGemmTest, DotInt8MatchesNaive) {
  for (size_t n : {size_t{1}, size_t{3}, size_t{4}, size_t{129}}) {
    std::vector<int8_t> a = RandomInt8(n, 10 + n);
    std::vector<int8_t> b = RandomInt8(n, 20 + n);
    int64_t want = 0;
    for (size_t i = 0; i < n; ++i) want += int64_t{a[i]} * b[i];
    EXPECT_EQ(DotInt8(a.data(), b.data(), n), want);
    int64_t norm = 0;
    for (size_t i = 0; i < n; ++i) norm += int64_t{a[i]} * a[i];
    EXPECT_EQ(SquaredNormInt8(a.data(), n), norm);
  }
}

TEST_F(QGemmTest, EnableToggle) {
  SetQGemmEnabled(false);
  EXPECT_FALSE(QGemmEnabled());
  SetQGemmEnabled(true);
  EXPECT_TRUE(QGemmEnabled());
}

}  // namespace
}  // namespace magneto
