#include "common/svd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace magneto {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  return m;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  Matrix d = a;
  d.SubInPlace(b);
  return d.AbsMax();
}

TEST(SvdTest, DiagonalMatrix) {
  Matrix a(3, 3, {3, 0, 0, 0, 5, 0, 0, 0, 1});
  auto svd = Svd(a);
  ASSERT_TRUE(svd.ok());
  ASSERT_EQ(svd.value().rank(), 3u);
  EXPECT_NEAR(svd.value().s[0], 5.0f, 1e-5);
  EXPECT_NEAR(svd.value().s[1], 3.0f, 1e-5);
  EXPECT_NEAR(svd.value().s[2], 1.0f, 1e-5);
}

TEST(SvdTest, ReconstructionIsExactAtFullRank) {
  Matrix a = RandomMatrix(10, 6, 1);
  auto svd = Svd(a);
  ASSERT_TRUE(svd.ok());
  Matrix back = LowRankReconstruct(svd.value(), svd.value().rank());
  EXPECT_LT(MaxAbsDiff(a, back), 1e-4);
}

TEST(SvdTest, WideMatrixHandledViaTranspose) {
  Matrix a = RandomMatrix(4, 12, 2);
  auto svd = Svd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_EQ(svd.value().u.rows(), 4u);
  EXPECT_EQ(svd.value().vt.cols(), 12u);
  Matrix back = LowRankReconstruct(svd.value(), svd.value().rank());
  EXPECT_LT(MaxAbsDiff(a, back), 1e-4);
}

TEST(SvdTest, SingularValuesDescendAndNonNegative) {
  Matrix a = RandomMatrix(20, 15, 3);
  auto svd = Svd(a);
  ASSERT_TRUE(svd.ok());
  for (size_t i = 0; i + 1 < svd.value().s.size(); ++i) {
    EXPECT_GE(svd.value().s[i], svd.value().s[i + 1]);
  }
  EXPECT_GE(svd.value().s.back(), 0.0f);
}

TEST(SvdTest, ColumnsOfUAreOrthonormal) {
  Matrix a = RandomMatrix(12, 5, 4);
  auto svd = Svd(a);
  ASSERT_TRUE(svd.ok());
  const Matrix& u = svd.value().u;
  Matrix gram = MatMulTransA(u, u);
  for (size_t i = 0; i < gram.rows(); ++i) {
    for (size_t j = 0; j < gram.cols(); ++j) {
      EXPECT_NEAR(gram.At(i, j), i == j ? 1.0f : 0.0f, 1e-4)
          << "gram(" << i << "," << j << ")";
    }
  }
}

TEST(SvdTest, RowsOfVtAreOrthonormal) {
  Matrix a = RandomMatrix(12, 5, 5);
  auto svd = Svd(a);
  ASSERT_TRUE(svd.ok());
  Matrix gram = MatMulTransB(svd.value().vt, svd.value().vt);
  for (size_t i = 0; i < gram.rows(); ++i) {
    for (size_t j = 0; j < gram.cols(); ++j) {
      EXPECT_NEAR(gram.At(i, j), i == j ? 1.0f : 0.0f, 1e-4);
    }
  }
}

TEST(SvdTest, LowRankMatrixRecoveredWithFewComponents) {
  // Build an exactly rank-2 matrix.
  Matrix u = RandomMatrix(8, 2, 6);
  Matrix v = RandomMatrix(2, 10, 7);
  Matrix a = MatMul(u, v);
  auto svd = Svd(a);
  ASSERT_TRUE(svd.ok());
  // Only two meaningful singular values.
  EXPECT_GT(svd.value().s[1], 1e-3);
  EXPECT_LT(svd.value().s[2], 1e-3);
  Matrix back = LowRankReconstruct(svd.value(), 2);
  EXPECT_LT(MaxAbsDiff(a, back), 1e-3);
  EXPECT_EQ(RankForEnergy(svd.value(), 0.999), 2u);
}

TEST(SvdTest, RankForEnergyBounds) {
  Matrix a = RandomMatrix(6, 6, 8);
  auto svd = Svd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_GE(RankForEnergy(svd.value(), 0.01), 1u);
  EXPECT_EQ(RankForEnergy(svd.value(), 1.0), svd.value().rank());
  EXPECT_LE(RankForEnergy(svd.value(), 0.5),
            RankForEnergy(svd.value(), 0.99));
}

TEST(SvdTest, EmptyMatrixRejected) {
  EXPECT_FALSE(Svd(Matrix()).ok());
}

TEST(SvdTest, FrobeniusErrorShrinksWithRank) {
  Matrix a = RandomMatrix(16, 12, 9);
  auto svd = Svd(a);
  ASSERT_TRUE(svd.ok());
  double prev = 1e300;
  for (size_t k : {2u, 4u, 8u, 12u}) {
    Matrix back = LowRankReconstruct(svd.value(), k);
    back.SubInPlace(a);
    const double err = std::sqrt(back.SumOfSquares());
    EXPECT_LE(err, prev + 1e-6);
    prev = err;
  }
  EXPECT_LT(prev, 1e-3);  // full rank = exact
}

}  // namespace
}  // namespace magneto
