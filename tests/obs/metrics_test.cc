// Correctness and concurrency contract of the metrics registry: exact totals
// under N-thread hammering, deterministic snapshots, and well-formed exports.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace magneto::obs {
namespace {

/// Unique-per-test metric names keep tests independent of registration order
/// (the registry is process-global and never unregisters).
std::string Name(const char* base) {
  return std::string("test.") +
         ::testing::UnitTest::GetInstance()->current_test_info()->name() +
         "." + base;
}

TEST(CounterTest, ExactTotalsFromConcurrentIncrements) {
  Counter* counter = Registry::Global().GetCounter(Name("hits"));
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
}

TEST(CounterTest, BulkIncrementAndReset) {
  Counter* counter = Registry::Global().GetCounter(Name("bulk"));
  counter->Increment(41);
  counter->Increment();
  EXPECT_EQ(counter->value(), 42u);
  counter->Reset();
  EXPECT_EQ(counter->value(), 0u);
}

TEST(RegistryTest, SameNameReturnsSameHandle) {
  const std::string name = Name("shared");
  Counter* a = Registry::Global().GetCounter(name);
  Counter* b = Registry::Global().GetCounter(name);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->name(), name);
}

TEST(GaugeTest, SetAndConcurrentAdd) {
  Gauge* gauge = Registry::Global().GetGauge(Name("level"));
  gauge->Set(7.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 7.5);

  gauge->Reset();
  constexpr size_t kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge->Add(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  // Each CAS-add of exactly 1.0 is exact in double arithmetic.
  EXPECT_DOUBLE_EQ(gauge->value(), kThreads * kPerThread);
}

TEST(HistogramTest, BucketsCountSumMinMax) {
  Histogram* h =
      Registry::Global().GetHistogram(Name("lat"), {1.0, 10.0, 100.0});
  h->Record(0.5);    // bucket 0 (<= 1)
  h->Record(1.0);    // bucket 0 (boundary is inclusive)
  h->Record(7.0);    // bucket 1
  h->Record(100.0);  // bucket 2
  h->Record(999.0);  // overflow bucket
  EXPECT_EQ(h->count(), 5u);
  EXPECT_EQ(h->num_buckets(), 4u);
  EXPECT_EQ(h->bucket(0), 2u);
  EXPECT_EQ(h->bucket(1), 1u);
  EXPECT_EQ(h->bucket(2), 1u);
  EXPECT_EQ(h->bucket(3), 1u);
  EXPECT_DOUBLE_EQ(h->sum(), 1107.5);
  EXPECT_DOUBLE_EQ(h->min(), 0.5);
  EXPECT_DOUBLE_EQ(h->max(), 999.0);
}

TEST(HistogramTest, ExactAggregatesUnderConcurrentRecords) {
  Histogram* h =
      Registry::Global().GetHistogram(Name("conc"), {10.0, 100.0, 1000.0});
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        // Deterministic value set, identical for every thread.
        h->Record(static_cast<double>((t * kPerThread + i) % 2000));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h->count(), kThreads * kPerThread);
  // Every value in [0, 2000) appears exactly kThreads*kPerThread/2000 times.
  const double per_value = kThreads * kPerThread / 2000.0;
  EXPECT_DOUBLE_EQ(h->sum(), per_value * (1999.0 * 2000.0 / 2.0));
  EXPECT_DOUBLE_EQ(h->min(), 0.0);
  EXPECT_DOUBLE_EQ(h->max(), 1999.0);
  uint64_t total = 0;
  for (size_t b = 0; b < h->num_buckets(); ++b) total += h->bucket(b);
  EXPECT_EQ(total, h->count());
}

TEST(HistogramTest, DefaultBoundsAreTheSharedLatencyBuckets) {
  Histogram* h = Registry::Global().GetHistogram(Name("default_bounds"));
  EXPECT_EQ(h->bounds(), LatencyBucketsUs());
  for (size_t i = 1; i < h->bounds().size(); ++i) {
    EXPECT_LT(h->bounds()[i - 1], h->bounds()[i]) << "bounds must increase";
  }
}

TEST(SnapshotTest, FindAndQuantile) {
  const std::string cname = Name("snap_counter");
  const std::string hname = Name("snap_hist");
  Registry::Global().GetCounter(cname)->Increment(3);
  Histogram* h = Registry::Global().GetHistogram(hname, {1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) h->Record(i < 90 ? 1.0 : 3.0);

  Snapshot snap = Registry::Global().TakeSnapshot();
  const auto* counter = snap.FindCounter(cname);
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 3u);
  EXPECT_EQ(snap.FindCounter("test.does.not.exist"), nullptr);

  const auto* hist = snap.FindHistogram(hname);
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 100u);
  EXPECT_DOUBLE_EQ(hist->Quantile(0.5), 1.0);   // 90% of mass at <= 1
  EXPECT_DOUBLE_EQ(hist->Quantile(0.95), 4.0);  // tail lands in (2, 4]
}

TEST(SnapshotTest, SortedDeterministicAndJsonWellFormed) {
  Registry::Global().GetCounter(Name("b"))->Increment();
  Registry::Global().GetCounter(Name("a"))->Increment();
  Snapshot snap = Registry::Global().TakeSnapshot();
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  // Two snapshots of an unchanged registry are identical.
  Snapshot again = Registry::Global().TakeSnapshot();
  EXPECT_EQ(snap.counters, again.counters);
  EXPECT_EQ(snap.ToJson(), again.ToJson());

  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Balanced braces => structurally plausible; the trace test runs a full
  // JSON well-formedness check on the shared writer.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(SnapshotTest, TableListsEveryMetric) {
  const std::string cname = Name("table_counter");
  Registry::Global().GetCounter(cname)->Increment(9);
  const std::string table = Registry::Global().TakeSnapshot().ToTable();
  EXPECT_NE(table.find(cname), std::string::npos);
  EXPECT_NE(table.find('9'), std::string::npos);
}

TEST(RegistryTest, ResetAllZeroesButKeepsHandles) {
  Counter* counter = Registry::Global().GetCounter(Name("reset"));
  Histogram* h = Registry::Global().GetHistogram(Name("reset_h"), {1.0});
  counter->Increment(5);
  h->Record(0.5);
  Registry::Global().ResetAll();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  // The handle stays registered and usable.
  counter->Increment();
  EXPECT_EQ(counter->value(), 1u);
  EXPECT_EQ(Registry::Global().GetCounter(Name("reset")), counter);
}

TEST(MetricsTest, LogLatencyBucketsSpanMicrosecondToTenSeconds) {
  const std::vector<double>& bounds = LogLatencyBucketsUs();
  ASSERT_EQ(bounds.size(), 29u);  // 10^(k/4), k = 0..28
  EXPECT_DOUBLE_EQ(bounds.front(), 1.0);
  EXPECT_NEAR(bounds.back(), 1e7, 1.0);  // 10 s in microseconds
  // Four buckets per decade: a constant ~10^(1/4) ratio between neighbours.
  const double ratio = std::pow(10.0, 0.25);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
    EXPECT_NEAR(bounds[i] / bounds[i - 1], ratio, 1e-9);
  }
}

TEST(HistogramTest, ExemplarsNameAConcreteRequest) {
  Histogram* h =
      Registry::Global().GetHistogram(Name("exemplar"), {10.0, 100.0});
  h->Record(5.0, /*exemplar_id=*/0);  // id 0 = no exemplar
  h->Record(50.0, /*exemplar_id=*/77);
  h->Record(60.0, /*exemplar_id=*/78);  // last writer wins per bucket
  EXPECT_EQ(h->exemplar_id(0), 0u);
  EXPECT_EQ(h->exemplar_id(1), 78u);
  EXPECT_DOUBLE_EQ(h->exemplar_value(1), 60.0);

  Snapshot snap = Registry::Global().TakeSnapshot();
  const auto* hist = snap.FindHistogram(Name("exemplar"));
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->exemplars.size(), 1u);  // only buckets that have one
  EXPECT_EQ(hist->exemplars[0].bucket, 1u);
  EXPECT_EQ(hist->exemplars[0].id, 78u);
  EXPECT_DOUBLE_EQ(hist->exemplars[0].value, 60.0);
  const std::string json = snap.ToJson(/*pretty=*/false);
  EXPECT_NE(json.find("\"exemplars\""), std::string::npos);
  EXPECT_NE(json.find("78"), std::string::npos);
}

TEST(HistogramTest, ExemplarsExcludedFromSnapshotEquality) {
  // Which request last hit a bucket depends on thread interleaving, so
  // exemplars must not break the snapshot determinism contract.
  Histogram* h =
      Registry::Global().GetHistogram(Name("exemplar_eq"), {10.0});
  h->Record(5.0, 1);
  Snapshot a = Registry::Global().TakeSnapshot();
  // Re-record the same value with a different exemplar id: identical
  // aggregates, different exemplar. Snapshots must still compare equal.
  Registry::Global().ResetAll();
  h->Record(5.0, 2);
  Snapshot b = Registry::Global().TakeSnapshot();
  const auto* ha = a.FindHistogram(Name("exemplar_eq"));
  const auto* hb = b.FindHistogram(Name("exemplar_eq"));
  ASSERT_NE(ha, nullptr);
  ASSERT_NE(hb, nullptr);
  EXPECT_TRUE(*ha == *hb);
  EXPECT_NE(ha->exemplars[0].id, hb->exemplars[0].id);
}

TEST(SnapshotTest, ConsistentUnderConcurrentWriters) {
  // Snapshots taken while 4 writers hammer the registry must stay internally
  // sane (monotonic counters across snapshots, bucket sums bounded by the
  // final count) and, once writers quiesce, deterministic: two consecutive
  // snapshots byte-identical.
  Counter* counter = Registry::Global().GetCounter(Name("live"));
  Histogram* h = Registry::Global().GetHistogram(Name("live_h"), {10.0});
  constexpr size_t kThreads = 4;
  constexpr uint64_t kPerThread = 20000;

  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Snapshot snap = Registry::Global().TakeSnapshot();
      const auto* c = snap.FindCounter(Name("live"));
      ASSERT_NE(c, nullptr);
      EXPECT_GE(c->value, last);  // counters never run backwards
      last = c->value;
    }
  });

  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Increment();
        h->Record(static_cast<double>(i % 20));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  Snapshot final_a = Registry::Global().TakeSnapshot();
  Snapshot final_b = Registry::Global().TakeSnapshot();
  EXPECT_EQ(final_a.ToJson(), final_b.ToJson());
  const auto* hist = final_a.FindHistogram(Name("live_h"));
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, kThreads * kPerThread);
  uint64_t total = 0;
  for (uint64_t b : hist->buckets) total += b;
  EXPECT_EQ(total, hist->count);
}

TEST(ScopedTimerTest, RecordsOneSampleInTheRequestedUnit) {
  Histogram* h = Registry::Global().GetHistogram(Name("timer"));
  { ScopedTimer timer(h); }
  EXPECT_EQ(h->count(), 1u);
  EXPECT_GE(h->min(), 0.0);
}

}  // namespace
}  // namespace magneto::obs
