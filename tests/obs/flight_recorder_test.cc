// Flight recorder contract: a bounded lock-free ring of the most recent
// per-request records, deterministic id-sorted dumps, shed-burst anomaly
// detection with auto-dump, and torn-read-free snapshots under concurrent
// producers (the seqlock property TSan exercises in check.sh).

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/request_context.h"

namespace magneto::obs {
namespace {

/// A record whose every field is a deterministic function of `id`, so a
/// reader can verify a snapshot entry was not assembled from two different
/// writes (the torn-read check in ConcurrentProducers).
FlightRecord MakeRecord(uint64_t id) {
  FlightRecord record;
  record.id = id;
  record.session = static_cast<uint32_t>(id % 7);
  record.batch_size = static_cast<uint32_t>(id % 13);
  record.deployment_version = id * 3;
  record.outcome = static_cast<FlightRecord::Outcome>(id % 3);
  for (size_t i = 0; i < kNumRequestStages; ++i) {
    record.stage_ns[i] = id * 1000 + i;
  }
  return record;
}

void ExpectConsistent(const FlightRecord& r) {
  ASSERT_NE(r.id, 0u);
  EXPECT_EQ(r.session, static_cast<uint32_t>(r.id % 7));
  EXPECT_EQ(r.batch_size, static_cast<uint32_t>(r.id % 13));
  EXPECT_EQ(r.deployment_version, r.id * 3);
  EXPECT_EQ(static_cast<uint64_t>(r.outcome), r.id % 3);
  for (size_t i = 0; i < kNumRequestStages; ++i) {
    EXPECT_EQ(r.stage_ns[i], r.id * 1000 + i);
  }
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FlightRecorderTest, SnapshotIsSortedByRequestId) {
  FlightRecorder recorder(8);
  for (uint64_t id : {5u, 2u, 9u, 1u}) recorder.Record(MakeRecord(id));
  const std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].id, 1u);
  EXPECT_EQ(records[1].id, 2u);
  EXPECT_EQ(records[2].id, 5u);
  EXPECT_EQ(records[3].id, 9u);
  for (const FlightRecord& r : records) ExpectConsistent(r);
}

TEST(FlightRecorderTest, RingKeepsOnlyTheNewestRecords) {
  FlightRecorder recorder(4);
  EXPECT_EQ(recorder.capacity(), 4u);
  for (uint64_t id = 1; id <= 10; ++id) recorder.Record(MakeRecord(id));
  const std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  // Slots are claimed round-robin, so the survivors are the last 4 writes.
  EXPECT_EQ(records[0].id, 7u);
  EXPECT_EQ(records[3].id, 10u);
}

TEST(FlightRecorderTest, TinyCapacityIsRoundedUpToTwo) {
  FlightRecorder recorder(0);
  EXPECT_EQ(recorder.capacity(), 2u);
}

TEST(FlightRecorderTest, StageUsDecomposesAdjacentIntervals) {
  FlightRecord r;
  r.stage_ns[static_cast<size_t>(RequestStage::kAdmit)] = 1000;
  r.stage_ns[static_cast<size_t>(RequestStage::kDequeue)] = 4000;
  EXPECT_DOUBLE_EQ(r.StageUs(RequestStage::kAdmit, RequestStage::kDequeue),
                   3.0);
  // A missing stamp (or a never-reached stage) yields 0, not garbage.
  EXPECT_DOUBLE_EQ(r.StageUs(RequestStage::kDequeue, RequestStage::kPublish),
                   0.0);
  EXPECT_DOUBLE_EQ(r.StageUs(RequestStage::kDequeue, RequestStage::kAdmit),
                   0.0);
}

TEST(FlightRecorderTest, JsonDumpHasStageAttributionAndOutcomes) {
  FlightRecorder recorder(8);
  FlightRecord ok;
  ok.id = 11;
  ok.stage_ns[static_cast<size_t>(RequestStage::kAdmit)] = 1000;
  ok.stage_ns[static_cast<size_t>(RequestStage::kDequeue)] = 2000;
  ok.stage_ns[static_cast<size_t>(RequestStage::kEmbedStart)] = 3000;
  ok.stage_ns[static_cast<size_t>(RequestStage::kEmbedEnd)] = 5000;
  ok.stage_ns[static_cast<size_t>(RequestStage::kClassifyEnd)] = 6000;
  ok.stage_ns[static_cast<size_t>(RequestStage::kPublish)] = 7000;
  recorder.Record(ok);
  recorder.RecordShed(12, 0);

  const std::string json = recorder.ToJson(/*pretty=*/false);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"outcome\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"shed\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_us\":1"), std::string::npos);
  EXPECT_NE(json.find("\"embed_us\":2"), std::string::npos);
  EXPECT_NE(json.find("\"e2e_us\":6"), std::string::npos);
}

TEST(FlightRecorderTest, ShedBurstRaisesAnomalyOncePerBurst) {
  FlightRecorder recorder(16);
  recorder.SetShedBurstThreshold(3);
  Counter* bursts = Registry::Global().GetCounter("flight.anomaly.shed_burst");
  const uint64_t before = bursts->value();

  // A sustained burst fires exactly once at the threshold...
  for (uint64_t id = 1; id <= 5; ++id) recorder.RecordShed(id, 0);
  EXPECT_EQ(bursts->value(), before + 1);

  // ...an admission re-arms the detector, and the next burst fires again.
  recorder.NoteAdmit();
  for (uint64_t id = 6; id <= 8; ++id) recorder.RecordShed(id, 0);
  EXPECT_EQ(bursts->value(), before + 2);
}

TEST(FlightRecorderTest, AnomalyAutoDumpsToConfiguredPath) {
  const std::string path =
      ::testing::TempDir() + "flight_recorder_autodump.json";
  std::remove(path.c_str());

  FlightRecorder recorder(8);
  recorder.SetAutoDumpPath(path);
  recorder.SetShedBurstThreshold(2);
  recorder.Record(MakeRecord(21));
  recorder.RecordShed(22, 0);
  recorder.RecordShed(23, 0);  // threshold reached -> auto-dump

  const std::string dump = ReadFile(path);
  ASSERT_FALSE(dump.empty()) << "anomaly did not auto-dump to " << path;
  EXPECT_NE(dump.find("\"last_anomaly\": \"shed_burst\""), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("\"outcome\": \"shed\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, ClearEmptiesTheRingButKeepsConfig) {
  FlightRecorder recorder(8);
  recorder.SetShedBurstThreshold(5);
  recorder.Record(MakeRecord(31));
  ASSERT_EQ(recorder.Snapshot().size(), 1u);
  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.shed_burst_threshold(), 5u);
}

TEST(FlightRecorderTest, ConcurrentProducers) {
  // 8 producers lap a small ring while a reader snapshots under fire: the
  // per-slot seqlock must never let a snapshot contain a record stitched
  // together from two different writes. Every field is a function of the id,
  // so any torn read is detectable.
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 4000;
  FlightRecorder recorder(64);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const FlightRecord& r : recorder.Snapshot()) ExpectConsistent(r);
    }
  });

  std::vector<std::thread> producers;
  for (size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&recorder, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        recorder.Record(MakeRecord(t * kPerThread + i + 1));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const std::vector<FlightRecord> records = recorder.Snapshot();
  // Contended writers may drop records (a lapped slot), never corrupt them.
  EXPECT_LE(records.size(), recorder.capacity());
  EXPECT_FALSE(records.empty());
  for (const FlightRecord& r : records) ExpectConsistent(r);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].id, records[i].id);  // sorted, no duplicates
  }
}

}  // namespace
}  // namespace magneto::obs
