// SLO monitor contract: rolling-window health evaluation against targets
// (p99 / shed rate / error-budget burn), epoch rotation that forgets old
// load, a background exporter that builds the health timeline, and a
// lock-free observe path that stays exact under concurrent observers.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/slo_monitor.h"

namespace magneto::obs {
namespace {

SloTargets Targets(double p99_us, double max_shed = 0.01,
                   double error_budget = 0.001, size_t window = 8) {
  SloTargets t;
  t.p99_latency_us = p99_us;
  t.max_shed_rate = max_shed;
  t.error_budget = error_budget;
  t.window_epochs = window;
  return t;
}

TEST(SloMonitorTest, EmptyWindowIsOk) {
  SloMonitor monitor(Targets(1000.0));
  const HealthReport report = monitor.Evaluate();
  EXPECT_EQ(report.state, HealthState::kOk);
  EXPECT_EQ(report.requests, 0u);
  EXPECT_DOUBLE_EQ(report.p99_latency_us, 0.0);
}

TEST(SloMonitorTest, HealthStateNames) {
  EXPECT_STREQ(HealthStateName(HealthState::kOk), "OK");
  EXPECT_STREQ(HealthStateName(HealthState::kDegraded), "DEGRADED");
  EXPECT_STREQ(HealthStateName(HealthState::kCritical), "CRITICAL");
}

TEST(SloMonitorTest, DegradedWhenP99ExceedsTarget) {
  // 1500 us lands in the (1000, 1778] log bucket: the reported p99 (the
  // bucket's upper bound) exceeds the 1000 us target but stays under the
  // 2x critical line.
  SloMonitor monitor(Targets(1000.0));
  for (int i = 0; i < 100; ++i) monitor.ObserveLatency(1500.0);
  const HealthReport report = monitor.Evaluate();
  EXPECT_EQ(report.state, HealthState::kDegraded);
  EXPECT_GT(report.p99_latency_us, 1000.0);
  EXPECT_LE(report.p99_latency_us, 2000.0);
  EXPECT_EQ(report.requests, 100u);
}

TEST(SloMonitorTest, CriticalWhenP99FarExceedsTarget) {
  SloMonitor monitor(Targets(1000.0));
  for (int i = 0; i < 100; ++i) monitor.ObserveLatency(10'000.0);
  const HealthReport report = monitor.Evaluate();
  EXPECT_EQ(report.state, HealthState::kCritical);
  EXPECT_GT(report.p99_latency_us, 2000.0);
}

TEST(SloMonitorTest, ShedRateDegradedThenCritical) {
  // Huge latency target isolates the shed-rate rule.
  SloMonitor degraded(Targets(1e9, /*max_shed=*/0.1));
  for (int i = 0; i < 85; ++i) degraded.ObserveLatency(10.0);
  for (int i = 0; i < 15; ++i) degraded.ObserveShed();
  EXPECT_EQ(degraded.Evaluate().state, HealthState::kDegraded);
  EXPECT_DOUBLE_EQ(degraded.Evaluate().shed_rate, 0.15);

  SloMonitor critical(Targets(1e9, /*max_shed=*/0.1));
  for (int i = 0; i < 50; ++i) critical.ObserveLatency(10.0);
  for (int i = 0; i < 50; ++i) critical.ObserveShed();  // 0.5 > 4 x 0.1
  EXPECT_EQ(critical.Evaluate().state, HealthState::kCritical);
}

TEST(SloMonitorTest, ErrorBudgetBurnDegradedThenCritical) {
  SloMonitor degraded(Targets(1e9, 0.5, /*error_budget=*/0.01));
  for (int i = 0; i < 98; ++i) degraded.ObserveLatency(10.0);
  for (int i = 0; i < 2; ++i) degraded.ObserveError();
  HealthReport report = degraded.Evaluate();
  EXPECT_EQ(report.state, HealthState::kDegraded);
  EXPECT_GT(report.error_budget_burn, 1.0);
  EXPECT_LE(report.error_budget_burn, 4.0);

  SloMonitor critical(Targets(1e9, 0.5, /*error_budget=*/0.01));
  for (int i = 0; i < 98; ++i) critical.ObserveLatency(10.0);
  for (int i = 0; i < 10; ++i) critical.ObserveError();  // burn ~10
  EXPECT_EQ(critical.Evaluate().state, HealthState::kCritical);
}

TEST(SloMonitorTest, RollingWindowForgetsOldEpochs) {
  SloMonitor monitor(Targets(1000.0, 0.01, 0.001, /*window=*/2));
  for (int i = 0; i < 10; ++i) monitor.ObserveLatency(50'000.0);
  EXPECT_EQ(monitor.Evaluate().state, HealthState::kCritical);

  // One rotation: the bad epoch is still inside the 2-epoch window.
  monitor.AdvanceEpoch();
  EXPECT_EQ(monitor.Evaluate().state, HealthState::kCritical);

  // Second rotation reuses (and zeroes) the bad epoch: all evidence of
  // trouble has aged out and the monitor recovers to OK.
  monitor.AdvanceEpoch();
  const HealthReport report = monitor.Evaluate();
  EXPECT_EQ(report.state, HealthState::kOk);
  EXPECT_EQ(report.requests, 0u);
}

TEST(SloMonitorTest, EvaluatePublishesHealthGauge) {
  SloMonitor monitor(Targets(1000.0));
  for (int i = 0; i < 10; ++i) monitor.ObserveLatency(10'000.0);
  monitor.Evaluate();
  Gauge* gauge = Registry::Global().GetGauge("slo.health_state");
  EXPECT_DOUBLE_EQ(gauge->value(),
                   static_cast<double>(static_cast<int>(HealthState::kCritical)));
}

TEST(SloMonitorTest, ExporterBuildsMonotonicTimeline) {
  SloMonitor monitor(Targets(1000.0, 0.01, 0.001, /*window=*/4));
  monitor.StartExporter(0.005);
  monitor.StartExporter(0.005);  // idempotent while running
  for (int i = 0; i < 50; ++i) {
    monitor.ObserveLatency(100.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  monitor.StopExporter();
  monitor.StopExporter();  // idempotent when stopped

  const std::vector<SloMonitor::TimelinePoint> timeline = monitor.Timeline();
  ASSERT_FALSE(timeline.empty());
  for (size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_LT(timeline[i - 1].t_seconds, timeline[i].t_seconds);
  }
  // The exporter keeps rotating epochs, so total observed requests across
  // the timeline's final point can never exceed what was observed.
  EXPECT_LE(timeline.back().report.requests, 50u);
}

TEST(SloMonitorTest, HealthJsonHasStateTargetsAndTimeline) {
  SloMonitor monitor(Targets(1000.0));
  for (int i = 0; i < 10; ++i) monitor.ObserveLatency(1500.0);
  const std::string json = monitor.HealthJson(/*pretty=*/false);
  EXPECT_NE(json.find("\"state\":\"DEGRADED\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"targets\":{"), std::string::npos);
  EXPECT_NE(json.find("\"window_epochs\":8"), std::string::npos);
  EXPECT_NE(json.find("\"timeline\":[]"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(SloMonitorTest, ConcurrentObservers) {
  // 8 observer threads hammer the lock-free observe path while a reader
  // evaluates continuously. No epoch rotation mid-run, so every observation
  // stays in the window and the final aggregates must be exact.
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  SloMonitor monitor(Targets(1e9, 1.0, 1.0));

  std::atomic<bool> stop{false};
  std::thread evaluator([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const HealthReport report = monitor.Evaluate();
      EXPECT_LE(report.requests, kThreads * kPerThread);
    }
  });

  std::vector<std::thread> observers;
  for (size_t t = 0; t < kThreads; ++t) {
    observers.emplace_back([&monitor] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        monitor.ObserveLatency(100.0);
        if (i % 10 == 0) monitor.ObserveShed();
        if (i % 100 == 0) monitor.ObserveError();
      }
    });
  }
  for (std::thread& t : observers) t.join();
  stop.store(true, std::memory_order_relaxed);
  evaluator.join();

  const HealthReport report = monitor.Evaluate();
  EXPECT_EQ(report.requests, kThreads * kPerThread);
  EXPECT_EQ(report.shed, kThreads * (kPerThread / 10));
  EXPECT_EQ(report.errors, kThreads * (kPerThread / 100));
}

TEST(SloMonitorTest, ExporterRacesObserversWithoutCorruption) {
  // The rotation-vs-observe race (an observation landing in a just-zeroed
  // epoch) must never corrupt state — only shift a sample one epoch. TSan
  // leg for the epoch ring.
  SloMonitor monitor(Targets(1e9, 1.0, 1.0, /*window=*/4));
  monitor.StartExporter(0.001);
  std::vector<std::thread> observers;
  for (size_t t = 0; t < 4; ++t) {
    observers.emplace_back([&monitor] {
      for (int i = 0; i < 20000; ++i) {
        monitor.ObserveLatency(50.0);
        monitor.ObserveShed();
      }
    });
  }
  for (std::thread& t : observers) t.join();
  monitor.StopExporter();
  const HealthReport report = monitor.Evaluate();
  // Rotation drops old epochs from the window; it can never invent samples.
  EXPECT_LE(report.requests, 80000u);
  EXPECT_LE(report.shed, 80000u);
}

}  // namespace
}  // namespace magneto::obs
