// Tracer contract: zero recording when disabled, correct nesting depths,
// bounded rings that drop oldest-first, and Chrome trace_event JSON that a
// strict parser accepts with every span exported as a matched B/E pair.

#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace magneto::obs {
namespace {

/// Strict recursive-descent JSON well-formedness checker. Small on purpose:
/// it validates structure (the golden-file property we need), not semantics.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    const bool ok = Value();
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Literal(const char* word) {
    const size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }
  bool String() {
    if (!Consume('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    return Consume('"');
  }
  bool Number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    do {
      SkipSpace();
      if (!String() || !Consume(':') || !Value()) return false;
    } while (Consume(','));
    return Consume('}');
  }
  bool Array() {
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    do {
      if (!Value()) return false;
    } while (Consume(','));
    return Consume(']');
  }

  const std::string& text_;
  size_t pos_ = 0;
};

/// Every test owns the global tracer state for its duration.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClearTrace();
    SetTraceEnabled(true);
  }
  void TearDown() override {
    SetTraceEnabled(false);
    ClearTrace();
    SetTraceRingCapacity(16384);
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  SetTraceEnabled(false);
  { TraceSpan span("invisible"); }
  EXPECT_TRUE(CollectTraceEvents().empty());
}

TEST_F(TraceTest, NestedSpansGetIncreasingDepths) {
  {
    TraceSpan outer("outer");
    {
      TraceSpan middle("middle");
      { TraceSpan inner("inner"); }
    }
  }
  std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 3u);
  std::map<std::string, const TraceEvent*> by_name;
  for (const TraceEvent& e : events) by_name[e.name] = &e;
  ASSERT_EQ(by_name.size(), 3u);
  EXPECT_EQ(by_name["outer"]->depth, 0);
  EXPECT_EQ(by_name["middle"]->depth, 1);
  EXPECT_EQ(by_name["inner"]->depth, 2);
  // Nested spans are contained in their parents.
  EXPECT_LE(by_name["outer"]->begin_ns, by_name["middle"]->begin_ns);
  EXPECT_GE(by_name["outer"]->end_ns, by_name["middle"]->end_ns);
  EXPECT_LE(by_name["middle"]->begin_ns, by_name["inner"]->begin_ns);
}

TEST_F(TraceTest, EventsSortedByBeginTime) {
  { TraceSpan a("first"); }
  { TraceSpan b("second"); }
  { TraceSpan c("third"); }
  std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "first");
  EXPECT_STREQ(events[1].name, "second");
  EXPECT_STREQ(events[2].name, "third");
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].begin_ns, events[i].begin_ns);
  }
}

TEST_F(TraceTest, RingWraparoundKeepsNewestSpans) {
  // A fresh capacity only applies to rings created after the call; spans on
  // this thread may use an existing ring, so run on a new thread.
  SetTraceRingCapacity(4);
  std::vector<std::string> names;
  std::thread worker([] {
    for (int i = 0; i < 10; ++i) {
      switch (i) {
        case 6: { TraceSpan s("span6"); break; }
        case 7: { TraceSpan s("span7"); break; }
        case 8: { TraceSpan s("span8"); break; }
        case 9: { TraceSpan s("span9"); break; }
        default: { TraceSpan s("older"); break; }
      }
    }
  });
  worker.join();
  std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 4u);  // capacity bounds retention
  EXPECT_STREQ(events[0].name, "span6");
  EXPECT_STREQ(events[1].name, "span7");
  EXPECT_STREQ(events[2].name, "span8");
  EXPECT_STREQ(events[3].name, "span9");
}

TEST_F(TraceTest, ChromeJsonParsesAndPairsEveryBeginWithAnEnd) {
  {
    TraceSpan outer("outer");
    { TraceSpan inner("inner"); }
  }
  { TraceSpan after("after"); }
  const std::string json = TraceToJson();

  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

  // Count B and E markers per name: every span contributes exactly one of
  // each (the viewer rejects unbalanced stacks).
  auto count = [&json](const std::string& needle) {
    size_t n = 0;
    for (size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"B\""), 3u);
  EXPECT_EQ(count("\"ph\":\"E\""), 3u);
  for (const char* name : {"outer", "inner", "after"}) {
    EXPECT_EQ(count(std::string("\"name\":\"") + name + "\""), 2u) << name;
  }
}

TEST_F(TraceTest, GoldenShapeOfOneSpan) {
  // With a single span the whole document is predictable except timestamps:
  // B at ts 0, E at the span's duration.
  { TraceSpan span("solo"); }
  const std::string json = TraceToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  const std::string expected_prefix =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{\"name\":\"solo\","
      "\"cat\":\"magneto\",\"ph\":\"B\",\"ts\":0,";
  EXPECT_EQ(json.substr(0, expected_prefix.size()), expected_prefix) << json;
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST_F(TraceTest, ClearTraceDropsEverything) {
  { TraceSpan span("gone"); }
  ASSERT_FALSE(CollectTraceEvents().empty());
  ClearTrace();
  EXPECT_TRUE(CollectTraceEvents().empty());
}

TEST_F(TraceTest, FlowMarkersExportAsLinkedSTFEvents) {
  // One request crossing three slices: the exporter must emit s/t/f sharing
  // the flow id, with "bp":"e" on the finish so it binds to the enclosing
  // slice (where TraceFlowEnd was actually called).
  constexpr uint64_t kId = 42;
  {
    TraceSpan admit("admit");
    TraceFlowBegin("request", kId);
  }
  {
    TraceSpan embed("embed");
    TraceFlowStep("request", kId);
  }
  {
    TraceSpan publish("publish");
    TraceFlowEnd("request", kId);
  }

  std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 6u);  // 3 spans + 3 flow markers
  size_t flows = 0;
  for (const TraceEvent& e : events) {
    if (e.phase == TracePhase::kSpan) continue;
    ++flows;
    EXPECT_EQ(e.flow_id, kId);
    EXPECT_STREQ(e.name, "request");
  }
  EXPECT_EQ(flows, 3u);

  const std::string json = TraceToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

TEST_F(TraceTest, AtVariantsRecordTheSuppliedTimestamps) {
  // The serving path reuses its stage stamps instead of re-reading the
  // clock; the recorded events must carry exactly those timestamps.
  const uint64_t base = 1'000'000'000ull;
  {
    TraceSpan span("stamped", base);
    TraceFlowBeginAt("flow", 7, base + 100);
    TraceFlowStepAt("flow", 7, base + 200);
    TraceFlowEndAt("flow", 7, base + 300);
  }
  std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(events[0].name, "stamped");
  EXPECT_EQ(events[0].begin_ns, base);
  EXPECT_EQ(events[1].begin_ns, base + 100);
  EXPECT_EQ(events[1].phase, TracePhase::kFlowBegin);
  EXPECT_EQ(events[2].begin_ns, base + 200);
  EXPECT_EQ(events[2].phase, TracePhase::kFlowStep);
  EXPECT_EQ(events[3].begin_ns, base + 300);
  EXPECT_EQ(events[3].phase, TracePhase::kFlowEnd);
}

TEST_F(TraceTest, DisabledFlowMarkersRecordNothing) {
  SetTraceEnabled(false);
  TraceFlowBegin("off", 1);
  TraceFlowStep("off", 1);
  TraceFlowEnd("off", 1);
  TraceFlowBeginAt("off", 1, 123);
  EXPECT_TRUE(CollectTraceEvents().empty());
}

TEST_F(TraceTest, RingOverwriteBumpsDroppedCounter) {
  Counter* dropped = Registry::Global().GetCounter("obs.trace.dropped");
  const uint64_t before = dropped->value();
  SetTraceRingCapacity(4);
  // Fresh thread -> fresh ring with the small capacity (this thread's ring
  // already exists at the default size).
  std::thread worker([] {
    for (int i = 0; i < 10; ++i) TraceFlowStep("overflow", 1);
  });
  worker.join();
  EXPECT_EQ(dropped->value(), before + 6);  // 10 pushes, 4 kept
}

}  // namespace
}  // namespace magneto::obs
