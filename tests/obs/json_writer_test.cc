// The shared JSON writer underpins the metrics snapshot, the Chrome trace
// export, and the BENCH_*.json artifacts — its output must be exactly right.

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "obs/json_writer.h"

namespace magneto::obs {
namespace {

TEST(JsonWriterTest, CompactObjectWithEveryValueKind) {
  JsonWriter json(/*pretty=*/false);
  json.BeginObject()
      .Field("s", "text")
      .Field("i", int64_t{-3})
      .Field("u", uint64_t{18446744073709551615ull})
      .Field("d", 1.5)
      .Field("b", true)
      .EndObject();
  EXPECT_TRUE(json.Complete());
  EXPECT_EQ(json.str(),
            "{\"s\":\"text\",\"i\":-3,\"u\":18446744073709551615,"
            "\"d\":1.5,\"b\":true}");
}

TEST(JsonWriterTest, NestedContainersAndCommas) {
  JsonWriter json(/*pretty=*/false);
  json.BeginObject().Key("rows").BeginArray();
  json.Value(1).Value(2);
  json.BeginObject().Field("k", "v").EndObject();
  json.EndArray().EndObject();
  EXPECT_TRUE(json.Complete());
  EXPECT_EQ(json.str(), "{\"rows\":[1,2,{\"k\":\"v\"}]}");
}

TEST(JsonWriterTest, EscapesStringsAndControlCharacters) {
  std::string out;
  JsonEscape("a\"b\\c\nd\te\x01", &out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\u0001");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter json(/*pretty=*/false);
  json.BeginArray()
      .Value(std::numeric_limits<double>::quiet_NaN())
      .Value(std::numeric_limits<double>::infinity())
      .Value(0.0)
      .EndArray();
  EXPECT_EQ(json.str(), "[null,null,0]");
}

TEST(JsonWriterTest, PrettyModeIndents) {
  JsonWriter json(/*pretty=*/true);
  json.BeginObject().Field("a", 1).EndObject();
  EXPECT_EQ(json.str(), "{\n  \"a\": 1\n}");
}

TEST(JsonWriterTest, CompleteOnlyAfterRootCloses) {
  JsonWriter json(/*pretty=*/false);
  json.BeginObject();
  EXPECT_FALSE(json.Complete());
  json.EndObject();
  EXPECT_TRUE(json.Complete());
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter json(/*pretty=*/false);
  json.BeginObject().Key("o").BeginObject().EndObject().Key("a").BeginArray()
      .EndArray().EndObject();
  EXPECT_EQ(json.str(), "{\"o\":{},\"a\":[]}");
}

TEST(JsonWriterTest, DeeplyNestedContainersStayBalanced) {
  JsonWriter json(/*pretty=*/false);
  constexpr int kDepth = 64;
  for (int i = 0; i < kDepth; ++i) json.BeginArray();
  json.Value(1);
  for (int i = 0; i < kDepth; ++i) json.EndArray();
  EXPECT_TRUE(json.Complete());
  const std::string out = json.str();
  EXPECT_EQ(out, std::string(kDepth, '[') + "1" + std::string(kDepth, ']'));
}

TEST(JsonWriterTest, EveryControlByteEscapes) {
  // RFC 8259: every byte below 0x20 must be escaped, whether via a short
  // form (\n, \t, ...) or \u00XX. None may pass through raw.
  for (int c = 0; c < 0x20; ++c) {
    std::string out;
    JsonEscape(std::string(1, static_cast<char>(c)), &out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], '\\') << "control byte " << c << " not escaped";
    for (char ch : out) {
      EXPECT_GE(static_cast<unsigned char>(ch), 0x20u);
    }
  }
}

TEST(JsonWriterTest, IntegerExtremesRoundTripExactly) {
  JsonWriter json(/*pretty=*/false);
  json.BeginArray()
      .Value(std::numeric_limits<int64_t>::min())
      .Value(std::numeric_limits<int64_t>::max())
      .Value(std::numeric_limits<uint64_t>::max())
      .EndArray();
  EXPECT_EQ(json.str(),
            "[-9223372036854775808,9223372036854775807,"
            "18446744073709551615]");
}

TEST(JsonWriterTest, PrettyModeNestsIndentation) {
  JsonWriter json(/*pretty=*/true);
  json.BeginObject().Key("outer").BeginObject().Field("inner", 1).EndObject()
      .EndObject();
  EXPECT_EQ(json.str(),
            "{\n  \"outer\": {\n    \"inner\": 1\n  }\n}");
}

}  // namespace
}  // namespace magneto::obs
