// The shared JSON writer underpins the metrics snapshot, the Chrome trace
// export, and the BENCH_*.json artifacts — its output must be exactly right.

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "obs/json_writer.h"

namespace magneto::obs {
namespace {

TEST(JsonWriterTest, CompactObjectWithEveryValueKind) {
  JsonWriter json(/*pretty=*/false);
  json.BeginObject()
      .Field("s", "text")
      .Field("i", int64_t{-3})
      .Field("u", uint64_t{18446744073709551615ull})
      .Field("d", 1.5)
      .Field("b", true)
      .EndObject();
  EXPECT_TRUE(json.Complete());
  EXPECT_EQ(json.str(),
            "{\"s\":\"text\",\"i\":-3,\"u\":18446744073709551615,"
            "\"d\":1.5,\"b\":true}");
}

TEST(JsonWriterTest, NestedContainersAndCommas) {
  JsonWriter json(/*pretty=*/false);
  json.BeginObject().Key("rows").BeginArray();
  json.Value(1).Value(2);
  json.BeginObject().Field("k", "v").EndObject();
  json.EndArray().EndObject();
  EXPECT_TRUE(json.Complete());
  EXPECT_EQ(json.str(), "{\"rows\":[1,2,{\"k\":\"v\"}]}");
}

TEST(JsonWriterTest, EscapesStringsAndControlCharacters) {
  std::string out;
  JsonEscape("a\"b\\c\nd\te\x01", &out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\u0001");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter json(/*pretty=*/false);
  json.BeginArray()
      .Value(std::numeric_limits<double>::quiet_NaN())
      .Value(std::numeric_limits<double>::infinity())
      .Value(0.0)
      .EndArray();
  EXPECT_EQ(json.str(), "[null,null,0]");
}

TEST(JsonWriterTest, PrettyModeIndents) {
  JsonWriter json(/*pretty=*/true);
  json.BeginObject().Field("a", 1).EndObject();
  EXPECT_EQ(json.str(), "{\n  \"a\": 1\n}");
}

TEST(JsonWriterTest, CompleteOnlyAfterRootCloses) {
  JsonWriter json(/*pretty=*/false);
  json.BeginObject();
  EXPECT_FALSE(json.Complete());
  json.EndObject();
  EXPECT_TRUE(json.Complete());
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter json(/*pretty=*/false);
  json.BeginObject().Key("o").BeginObject().EndObject().Key("a").BeginArray()
      .EndArray().EndObject();
  EXPECT_EQ(json.str(), "{\"o\":{},\"a\":[]}");
}

}  // namespace
}  // namespace magneto::obs
