#include "learn/pair_sampler.h"

#include <gtest/gtest.h>

namespace magneto::learn {
namespace {

sensors::FeatureDataset ThreeClassData() {
  sensors::FeatureDataset ds;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 4; ++i) {
      ds.Append({static_cast<float>(c), static_cast<float>(i)}, c);
    }
  }
  return ds;
}

TEST(PairSamplerTest, BatchShape) {
  sensors::FeatureDataset ds = ThreeClassData();
  PairSampler sampler(ds, 1);
  PairBatch batch = sampler.Sample(8);
  EXPECT_EQ(batch.size(), 8u);
  EXPECT_EQ(batch.a.rows(), 8u);
  EXPECT_EQ(batch.b.rows(), 8u);
  EXPECT_EQ(batch.a.cols(), 2u);
}

TEST(PairSamplerTest, LabelsMatchSameFlag) {
  // Feature[0] encodes the class, so we can verify the flag from content.
  sensors::FeatureDataset ds = ThreeClassData();
  PairSampler sampler(ds, 2);
  PairBatch batch = sampler.Sample(64);
  for (size_t i = 0; i < batch.size(); ++i) {
    const bool same_class = batch.a.At(i, 0) == batch.b.At(i, 0);
    EXPECT_EQ(same_class, batch.same[i] == 1) << "pair " << i;
  }
}

TEST(PairSamplerTest, BalancedBatches) {
  sensors::FeatureDataset ds = ThreeClassData();
  PairSampler sampler(ds, 3);
  PairBatch batch = sampler.Sample(100);
  size_t positives = 0;
  for (uint8_t s : batch.same) positives += s;
  EXPECT_EQ(positives, 50u);
}

TEST(PairSamplerTest, PositivePairsUseDistinctExamples) {
  // Feature[1] is a per-class example index: a positive pair must not pair an
  // example with itself.
  sensors::FeatureDataset ds = ThreeClassData();
  PairSampler sampler(ds, 4);
  PairBatch batch = sampler.Sample(200);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch.same[i]) {
      const bool identical = batch.a.At(i, 0) == batch.b.At(i, 0) &&
                             batch.a.At(i, 1) == batch.b.At(i, 1);
      EXPECT_FALSE(identical) << "pair " << i;
    }
  }
}

TEST(PairSamplerTest, SingleClassFallsBackToPositives) {
  sensors::FeatureDataset ds;
  ds.Append({1, 0}, 7);
  ds.Append({1, 1}, 7);
  ds.Append({1, 2}, 7);
  PairSampler sampler(ds, 5);
  EXPECT_TRUE(sampler.CanSamplePositives());
  EXPECT_FALSE(sampler.CanSampleNegatives());
  PairBatch batch = sampler.Sample(10);
  for (uint8_t s : batch.same) EXPECT_EQ(s, 1);
}

TEST(PairSamplerTest, SingletonClassesFallBackToNegatives) {
  sensors::FeatureDataset ds;
  ds.Append({0, 0}, 0);
  ds.Append({1, 0}, 1);
  ds.Append({2, 0}, 2);
  PairSampler sampler(ds, 6);
  EXPECT_FALSE(sampler.CanSamplePositives());
  EXPECT_TRUE(sampler.CanSampleNegatives());
  PairBatch batch = sampler.Sample(10);
  for (uint8_t s : batch.same) EXPECT_EQ(s, 0);
}

TEST(PairSamplerTest, OnePairCapableClassAmongManySingletons) {
  // Regression: the normal mid-incremental-learning state — one established
  // class with exemplars, many freshly captured singleton classes. The old
  // implementation rejection-sampled `classes_` until it happened to hit the
  // single pair-capable class, an expected 101 RNG draws per positive pair
  // (unbounded in the worst case); the precomputed positive-class list makes
  // it exactly one draw.
  sensors::FeatureDataset ds;
  ds.Append({0.0f, 0.0f}, 0);
  ds.Append({0.0f, 1.0f}, 0);
  ds.Append({0.0f, 2.0f}, 0);
  for (int c = 1; c <= 100; ++c) {
    ds.Append({static_cast<float>(c), 0.0f}, c);
  }
  PairSampler sampler(ds, 8);
  EXPECT_TRUE(sampler.CanSamplePositives());
  EXPECT_TRUE(sampler.CanSampleNegatives());

  PairBatch batch = sampler.Sample(2000);
  size_t positives = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!batch.same[i]) continue;
    ++positives;
    // Every positive pair must come from the only pair-capable class, and
    // must pair two distinct exemplars of it.
    EXPECT_EQ(batch.a.At(i, 0), 0.0f) << "pair " << i;
    EXPECT_EQ(batch.b.At(i, 0), 0.0f) << "pair " << i;
    EXPECT_NE(batch.a.At(i, 1), batch.b.At(i, 1)) << "pair " << i;
  }
  EXPECT_EQ(positives, 1000u);
}

TEST(PairSamplerTest, AllPairCapableSamplingUnchangedByPrecomputation) {
  // When every class is pair-capable the precomputed list must be a drop-in:
  // the positive-class draw consumes exactly one RNG value, as the old
  // rejection loop did when it never rejected, so seeded batches (and with
  // them seeded training runs) are bit-identical.
  sensors::FeatureDataset ds = ThreeClassData();
  PairSampler sampler(ds, 42);
  PairBatch batch = sampler.Sample(32);
  // Against a reference sampler drawing with the identical seed: the whole
  // batch content is reproducible draw-for-draw.
  PairSampler reference(ds, 42);
  PairBatch expected = reference.Sample(32);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch.same[i], expected.same[i]);
    EXPECT_EQ(batch.a.At(i, 0), expected.a.At(i, 0));
    EXPECT_EQ(batch.a.At(i, 1), expected.a.At(i, 1));
    EXPECT_EQ(batch.b.At(i, 0), expected.b.At(i, 0));
    EXPECT_EQ(batch.b.At(i, 1), expected.b.At(i, 1));
  }
}

TEST(PairSamplerDeathTest, SingleExampleDatasetAborts) {
  // One example total: neither a positive nor a negative pair exists.
  sensors::FeatureDataset ds;
  ds.Append({1, 2}, 0);
  PairSampler sampler(ds, 9);
  EXPECT_FALSE(sampler.CanSamplePositives());
  EXPECT_FALSE(sampler.CanSampleNegatives());
  EXPECT_DEATH(sampler.Sample(4), "Check failed");
}

TEST(PairSamplerTest, DeterministicForSeed) {
  sensors::FeatureDataset ds = ThreeClassData();
  PairSampler s1(ds, 42), s2(ds, 42);
  PairBatch b1 = s1.Sample(16);
  PairBatch b2 = s2.Sample(16);
  for (size_t i = 0; i < b1.size(); ++i) {
    EXPECT_EQ(b1.same[i], b2.same[i]);
    EXPECT_FLOAT_EQ(b1.a.At(i, 0), b2.a.At(i, 0));
    EXPECT_FLOAT_EQ(b1.b.At(i, 1), b2.b.At(i, 1));
  }
}

TEST(PairSamplerTest, CoversAllClassesEventually) {
  sensors::FeatureDataset ds = ThreeClassData();
  PairSampler sampler(ds, 7);
  std::set<float> seen;
  PairBatch batch = sampler.Sample(300);
  for (size_t i = 0; i < batch.size(); ++i) {
    seen.insert(batch.a.At(i, 0));
    seen.insert(batch.b.At(i, 0));
  }
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace magneto::learn
