#include "learn/ewc.h"

#include <cmath>

#include <gtest/gtest.h>

#include "learn/pair_sampler.h"
#include "learn/siamese_trainer.h"

namespace magneto::learn {
namespace {

sensors::FeatureDataset Blobs(size_t classes, size_t per_class, size_t dim,
                              uint64_t seed) {
  Rng rng(seed);
  sensors::FeatureDataset ds;
  for (size_t c = 0; c < classes; ++c) {
    for (size_t i = 0; i < per_class; ++i) {
      std::vector<float> x(dim);
      for (size_t j = 0; j < dim; ++j) {
        x[j] = (((c >> (j % 4)) & 1) ? 2.0f : -2.0f) +
               static_cast<float>(rng.Normal(0.0, 0.3));
      }
      ds.Append(x, static_cast<sensors::ActivityId>(c));
    }
  }
  return ds;
}

TEST(EwcTest, EstimateLeavesParametersUntouched) {
  Rng rng(1);
  nn::Sequential net = nn::BuildMlp(6, {8, 4}, &rng);
  std::vector<Matrix> before;
  for (Matrix* p : net.Params()) before.push_back(*p);
  sensors::FeatureDataset data = Blobs(2, 20, 6, 2);
  auto ewc = EwcRegularizer::Estimate(&net, data, {});
  ASSERT_TRUE(ewc.ok());
  auto params = net.Params();
  for (size_t i = 0; i < params.size(); ++i) {
    for (size_t j = 0; j < params[i]->size(); ++j) {
      ASSERT_FLOAT_EQ(params[i]->data()[j], before[i].data()[j]);
    }
  }
  // And gradients are left clean.
  for (Matrix* g : net.Grads()) EXPECT_FLOAT_EQ(g->AbsMax(), 0.0f);
}

TEST(EwcTest, PenaltyIsZeroAtAnchor) {
  Rng rng(3);
  nn::Sequential net = nn::BuildMlp(6, {8, 4}, &rng);
  sensors::FeatureDataset data = Blobs(2, 20, 6, 4);
  auto ewc = EwcRegularizer::Estimate(&net, data, {}).value();
  EXPECT_DOUBLE_EQ(ewc.Penalty(&net, 1.0), 0.0);
  // Gradient contribution at the anchor is zero.
  net.ZeroGrad();
  ewc.AccumulatePenaltyGradient(&net, 1.0);
  for (Matrix* g : net.Grads()) EXPECT_FLOAT_EQ(g->AbsMax(), 0.0f);
}

TEST(EwcTest, PenaltyGrowsWithParameterDrift) {
  Rng rng(5);
  nn::Sequential net = nn::BuildMlp(6, {8, 4}, &rng);
  sensors::FeatureDataset data = Blobs(2, 20, 6, 6);
  auto ewc = EwcRegularizer::Estimate(&net, data, {}).value();
  net.Params()[0]->data()[0] += 0.5f;
  const double small = ewc.Penalty(&net, 1.0);
  net.Params()[0]->data()[0] += 0.5f;
  const double large = ewc.Penalty(&net, 1.0);
  EXPECT_GE(large, small);
  EXPECT_GE(small, 0.0);
  // Lambda scales linearly.
  EXPECT_NEAR(ewc.Penalty(&net, 2.0), 2.0 * large, 1e-9);
}

TEST(EwcTest, PenaltyGradientMatchesAnalyticForm) {
  Rng rng(7);
  nn::Sequential net = nn::BuildMlp(4, {5, 3}, &rng);
  sensors::FeatureDataset data = Blobs(2, 15, 4, 8);
  auto ewc = EwcRegularizer::Estimate(&net, data, {}).value();

  // Shift one parameter and check dPenalty/dtheta = lambda * F * (theta-a).
  Matrix* p0 = net.Params()[0];
  const float delta = 0.3f;
  p0->data()[2] += delta;
  net.ZeroGrad();
  ewc.AccumulatePenaltyGradient(&net, 2.0);
  const float grad = net.Grads()[0]->data()[2];

  // Finite difference of Penalty wrt that parameter.
  const double eps = 1e-3;
  p0->data()[2] += static_cast<float>(eps);
  const double plus = ewc.Penalty(&net, 2.0);
  p0->data()[2] -= static_cast<float>(2 * eps);
  const double minus = ewc.Penalty(&net, 2.0);
  const double numeric = (plus - minus) / (2 * eps);
  EXPECT_NEAR(grad, numeric, 1e-2 * (std::fabs(numeric) + 1.0));
}

TEST(EwcTest, ReducesDriftOnImportantWeights) {
  // Train on task A; then train on task B with and without EWC. The EWC run
  // must keep the old-task loss lower.
  sensors::FeatureDataset task_a = Blobs(2, 30, 6, 9);
  sensors::FeatureDataset task_b = Blobs(4, 30, 6, 10).FilterByClasses({2, 3});

  Rng rng(11);
  nn::Sequential net = nn::BuildMlp(6, {12, 4}, &rng);
  TrainOptions pretrain;
  pretrain.epochs = 15;
  pretrain.seed = 12;
  ASSERT_TRUE(SiameseTrainer(pretrain).Train(&net, task_a).ok());

  auto old_task_loss = [&](nn::Sequential* m) {
    // Mean contrastive loss over a fixed pair sample of task A.
    PairSampler sampler(task_a, 99);
    nn::ForwardWorkspace ws;
    double total = 0.0;
    for (int i = 0; i < 10; ++i) {
      PairBatch batch = sampler.Sample(32);
      const Matrix& emb = m->Forward(VStack(batch.a, batch.b), &ws);
      total += nn::ContrastiveLoss(emb.RowSlice(0, 32), emb.RowSlice(32, 64),
                                   batch.same, 5.0)
                   .loss;
    }
    return total / 10.0;
  };

  auto run_update = [&](double lambda) {
    nn::Sequential student = net.Clone();
    auto ewc = EwcRegularizer::Estimate(&student, task_a, {}).value();
    TrainOptions update;
    update.epochs = 15;
    update.seed = 13;
    update.ewc_weight = lambda;
    SiameseTrainer trainer(update);
    EXPECT_TRUE(trainer
                    .Train(&student, task_b, nullptr, nullptr,
                           lambda > 0 ? &ewc : nullptr)
                    .ok());
    return old_task_loss(&student);
  };

  const double with_ewc = run_update(50.0);
  const double without = run_update(0.0);
  EXPECT_LE(with_ewc, without + 1e-6)
      << "EWC " << with_ewc << " vs plain " << without;
}

TEST(EwcTest, FisherScaleIsBatchSizeInvariant) {
  // The Fisher is a per-sample statistic: estimating it with 8 batches of 8
  // pairs or 2 batches of 32 pairs (same pair budget, same data) must land
  // on the same order of magnitude. Squaring batch-aggregated gradients
  // instead ties the scale to batch_size — the old bug made the effective
  // ewc_weight drift whenever the training batch size was tuned.
  Rng rng(21);
  nn::Sequential net = nn::BuildMlp(6, {8, 4}, &rng);
  sensors::FeatureDataset data = Blobs(2, 40, 6, 22);

  EwcRegularizer::Options small;
  small.batches = 8;
  small.batch_size = 8;
  EwcRegularizer::Options large;
  large.batches = 2;
  large.batch_size = 32;
  auto ewc_small = EwcRegularizer::Estimate(&net, data, small).value();
  auto ewc_large = EwcRegularizer::Estimate(&net, data, large).value();

  // Probe the Fisher magnitude through the penalty at a fixed uniform drift.
  for (Matrix* p : net.Params()) {
    for (size_t j = 0; j < p->size(); ++j) p->data()[j] += 0.1f;
  }
  const double penalty_small = ewc_small.Penalty(&net, 1.0);
  const double penalty_large = ewc_large.Penalty(&net, 1.0);
  ASSERT_GT(penalty_small, 0.0);
  ASSERT_GT(penalty_large, 0.0);
  const double ratio = penalty_small / penalty_large;
  // Same statistic, different sampling: within ~2x. The batch-coupled bug
  // put the two 4x apart (Fisher scaled with 1/batch_size).
  EXPECT_GT(ratio, 0.5) << penalty_small << " vs " << penalty_large;
  EXPECT_LT(ratio, 2.0) << penalty_small << " vs " << penalty_large;
}

TEST(EwcTest, InputValidation) {
  Rng rng(14);
  nn::Sequential net = nn::BuildMlp(4, {4}, &rng);
  sensors::FeatureDataset data = Blobs(2, 5, 4, 15);
  EXPECT_FALSE(EwcRegularizer::Estimate(nullptr, data, {}).ok());
  EXPECT_FALSE(EwcRegularizer::Estimate(&net, {}, {}).ok());
  EwcRegularizer::Options zero;
  zero.batches = 0;
  EXPECT_FALSE(EwcRegularizer::Estimate(&net, data, zero).ok());

  // Trainer refuses ewc_weight without a regularizer.
  TrainOptions options;
  options.ewc_weight = 1.0;
  options.epochs = 1;
  EXPECT_FALSE(SiameseTrainer(options).Train(&net, data).ok());
}

}  // namespace
}  // namespace magneto::learn
