#include "learn/siamese_trainer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace magneto::learn {
namespace {

/// Gaussian blobs: class c is centred at distinct corners of a hypercube.
sensors::FeatureDataset Blobs(size_t classes, size_t per_class, size_t dim,
                              double spread, uint64_t seed) {
  Rng rng(seed);
  sensors::FeatureDataset ds;
  for (size_t c = 0; c < classes; ++c) {
    std::vector<float> center(dim);
    for (size_t j = 0; j < dim; ++j) {
      center[j] = ((c >> (j % 8)) & 1) ? 2.0f : -2.0f;
    }
    for (size_t i = 0; i < per_class; ++i) {
      std::vector<float> x(dim);
      for (size_t j = 0; j < dim; ++j) {
        x[j] = center[j] + static_cast<float>(rng.Normal(0.0, spread));
      }
      ds.Append(x, static_cast<sensors::ActivityId>(c));
    }
  }
  return ds;
}

/// 1-nearest-class-mean accuracy in the embedding space.
double NcmAccuracy(nn::Sequential* net, const sensors::FeatureDataset& train,
                   const sensors::FeatureDataset& test) {
  nn::ForwardWorkspace ws;
  Matrix train_emb = net->Forward(train.ToMatrix(), &ws);
  std::map<sensors::ActivityId, std::pair<std::vector<double>, size_t>> sums;
  for (size_t i = 0; i < train.size(); ++i) {
    auto& [sum, count] = sums[train.Label(i)];
    sum.resize(train_emb.cols(), 0.0);
    for (size_t j = 0; j < train_emb.cols(); ++j) {
      sum[j] += train_emb.At(i, j);
    }
    ++count;
  }
  Matrix test_emb = net->Forward(test.ToMatrix(), &ws);
  size_t correct = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    double best = 1e300;
    sensors::ActivityId best_id = -1;
    for (const auto& [id, entry] : sums) {
      double d = 0.0;
      for (size_t j = 0; j < test_emb.cols(); ++j) {
        const double proto = entry.first[j] / entry.second;
        const double diff = test_emb.At(i, j) - proto;
        d += diff * diff;
      }
      if (d < best) {
        best = d;
        best_id = id;
      }
    }
    if (best_id == test.Label(i)) ++correct;
  }
  return static_cast<double>(correct) / test.size();
}

TrainOptions FastOptions() {
  TrainOptions options;
  options.epochs = 10;
  options.batch_size = 32;
  options.learning_rate = 1e-3;
  options.seed = 5;
  return options;
}

TEST(SiameseTrainerTest, InputValidation) {
  SiameseTrainer trainer(FastOptions());
  sensors::FeatureDataset data = Blobs(2, 5, 4, 0.1, 1);
  EXPECT_FALSE(trainer.Train(nullptr, data).ok());
  EXPECT_FALSE(trainer.Train(nullptr, {}).ok());

  Rng rng(1);
  nn::Sequential net = nn::BuildMlp(4, {8, 4}, &rng);
  sensors::FeatureDataset empty;
  EXPECT_FALSE(trainer.Train(&net, empty).ok());

  // Teacher without distill data / weight is rejected.
  nn::Sequential teacher = net.Clone();
  EXPECT_FALSE(trainer.Train(&net, data, &teacher, &empty).ok());
  TrainOptions no_weight = FastOptions();
  no_weight.distill_weight = 0.0;
  SiameseTrainer t2(no_weight);
  EXPECT_FALSE(t2.Train(&net, data, &teacher, &data).ok());

  // A single-example dataset can form no pair of either kind.
  sensors::FeatureDataset single;
  single.Append(std::vector<float>(4, 0.0f), 0);
  EXPECT_EQ(trainer.Train(&net, single).status().code(),
            StatusCode::kInvalidArgument);

  TrainOptions zero_epochs = FastOptions();
  zero_epochs.epochs = 0;
  EXPECT_FALSE(SiameseTrainer(zero_epochs).Train(&net, data).ok());
  TrainOptions zero_batch = FastOptions();
  zero_batch.batch_size = 0;
  EXPECT_FALSE(SiameseTrainer(zero_batch).Train(&net, data).ok());
}

TEST(SiameseTrainerTest, LossDecreasesOnSeparableData) {
  sensors::FeatureDataset data = Blobs(3, 30, 8, 0.3, 2);
  Rng rng(3);
  nn::Sequential net = nn::BuildMlp(8, {16, 4}, &rng);
  TrainOptions options = FastOptions();
  options.epochs = 15;
  SiameseTrainer trainer(options);
  auto report = trainer.Train(&net, data);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().epochs.size(), 15u);
  EXPECT_LT(report.value().final_embedding_loss(),
            report.value().epochs.front().embedding_loss * 0.8);
}

TEST(SiameseTrainerTest, LearnsSeparableEmbedding) {
  Rng split_rng(4);
  auto [train, test] = Blobs(3, 40, 8, 0.4, 5).StratifiedSplit(0.75,
                                                               &split_rng);
  Rng rng(6);
  nn::Sequential net = nn::BuildMlp(8, {16, 4}, &rng);
  const double before = NcmAccuracy(&net, train, test);
  TrainOptions options = FastOptions();
  options.epochs = 25;
  SiameseTrainer trainer(options);
  ASSERT_TRUE(trainer.Train(&net, train).ok());
  const double after = NcmAccuracy(&net, train, test);
  EXPECT_GT(after, 0.9);
  EXPECT_GE(after, before - 0.05);
}

TEST(SiameseTrainerTest, SupConVariantAlsoLearns) {
  Rng split_rng(7);
  auto [train, test] = Blobs(3, 40, 8, 0.4, 8).StratifiedSplit(0.75,
                                                               &split_rng);
  Rng rng(9);
  nn::Sequential net = nn::BuildMlp(8, {16, 4}, &rng);
  TrainOptions options = FastOptions();
  options.epochs = 25;
  options.embedding_loss = EmbeddingLoss::kSupCon;
  options.supcon_temperature = 0.2;
  SiameseTrainer trainer(options);
  ASSERT_TRUE(trainer.Train(&net, train).ok());
  EXPECT_GT(NcmAccuracy(&net, train, test), 0.85);
}

TEST(SiameseTrainerTest, DistillationAnchorsTeacherEmbeddings) {
  // Train a "pre-trained" net on 2 old classes, then retrain on a third with
  // and without distillation: with distillation, the old-class embeddings
  // stay closer to the teacher's.
  sensors::FeatureDataset old_data = Blobs(2, 30, 8, 0.3, 10);
  Rng rng(11);
  nn::Sequential net = nn::BuildMlp(8, {16, 4}, &rng);
  TrainOptions pretrain = FastOptions();
  pretrain.epochs = 15;
  ASSERT_TRUE(SiameseTrainer(pretrain).Train(&net, old_data).ok());

  nn::Sequential teacher = net.Clone();
  nn::ForwardWorkspace ws;
  Matrix old_emb_before = teacher.Forward(old_data.ToMatrix(), &ws);

  sensors::FeatureDataset new_data = Blobs(3, 30, 8, 0.3, 10);

  auto drift_after_training = [&](double distill_weight) {
    nn::Sequential student = teacher.Clone();
    TrainOptions update = FastOptions();
    update.epochs = 12;
    update.distill_weight = distill_weight;
    SiameseTrainer trainer(update);
    if (distill_weight > 0.0) {
      nn::Sequential frozen = teacher.Clone();
      EXPECT_TRUE(
          trainer.Train(&student, new_data, &frozen, &old_data).ok());
    } else {
      EXPECT_TRUE(trainer.Train(&student, new_data).ok());
    }
    Matrix after = student.Forward(old_data.ToMatrix(), &ws);
    after.SubInPlace(old_emb_before);
    return std::sqrt(after.SumOfSquares() / after.rows());
  };

  const double drift_with = drift_after_training(2.0);
  const double drift_without = drift_after_training(0.0);
  EXPECT_LT(drift_with, drift_without);
}

TEST(SiameseTrainerTest, DeterministicForSeed) {
  sensors::FeatureDataset data = Blobs(2, 20, 6, 0.3, 12);
  auto run = [&]() {
    Rng rng(13);
    nn::Sequential net = nn::BuildMlp(6, {8, 3}, &rng);
    SiameseTrainer trainer(FastOptions());
    auto report = trainer.Train(&net, data);
    EXPECT_TRUE(report.ok());
    nn::ForwardWorkspace ws;
    return Matrix(net.Forward(data.ToMatrix(), &ws));
  };
  Matrix a = run();
  Matrix b = run();
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(SiameseTrainerTest, LrDecayConvergesAtLeastAsSmoothly) {
  // With aggressive decay the last epochs take tiny steps: the final loss
  // must be finite and the run must not blow up. (Qualitative check — decay
  // is a stability knob, not a guaranteed accuracy win.)
  sensors::FeatureDataset data = Blobs(3, 30, 8, 0.3, 30);
  Rng rng(31);
  nn::Sequential net = nn::BuildMlp(8, {16, 4}, &rng);
  TrainOptions options = FastOptions();
  options.epochs = 20;
  options.lr_decay = 0.85;
  SiameseTrainer trainer(options);
  auto report = trainer.Train(&net, data);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report.value().final_embedding_loss(),
            report.value().epochs.front().embedding_loss);
  // Late epochs move less than early ones (decayed steps).
  const auto& epochs = report.value().epochs;
  const double early_delta =
      std::fabs(epochs[1].embedding_loss - epochs[0].embedding_loss);
  const double late_delta = std::fabs(epochs[19].embedding_loss -
                                      epochs[18].embedding_loss);
  EXPECT_LE(late_delta, early_delta + 1e-3);
}

TEST(SiameseTrainerTest, ReportShapesMatchOptions) {
  sensors::FeatureDataset data = Blobs(2, 10, 4, 0.3, 14);
  Rng rng(15);
  nn::Sequential net = nn::BuildMlp(4, {6, 2}, &rng);
  TrainOptions options = FastOptions();
  options.epochs = 3;
  options.distill_weight = 0.5;
  nn::Sequential teacher = net.Clone();
  SiameseTrainer trainer(options);
  auto report = trainer.Train(&net, data, &teacher, &data);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().epochs.size(), 3u);
  EXPECT_GT(report.value().final_distill_loss(), 0.0);
}

}  // namespace
}  // namespace magneto::learn
