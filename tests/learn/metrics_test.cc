#include "learn/metrics.h"

#include <gtest/gtest.h>

namespace magneto::learn {
namespace {

TEST(ConfusionMatrixTest, EmptyMatrix) {
  ConfusionMatrix cm;
  EXPECT_EQ(cm.total(), 0u);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.MacroF1(), 0.0);
}

TEST(ConfusionMatrixTest, PerfectPredictions) {
  ConfusionMatrix cm;
  for (int i = 0; i < 10; ++i) {
    cm.Add(0, 0);
    cm.Add(1, 1);
  }
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.Recall(0), 1.0);
  EXPECT_DOUBLE_EQ(cm.Precision(1), 1.0);
  EXPECT_DOUBLE_EQ(cm.F1(0), 1.0);
  EXPECT_DOUBLE_EQ(cm.MacroF1(), 1.0);
}

TEST(ConfusionMatrixTest, KnownMix) {
  ConfusionMatrix cm;
  // class 0: 3 correct, 1 predicted as 1.
  cm.Add(0, 0);
  cm.Add(0, 0);
  cm.Add(0, 0);
  cm.Add(0, 1);
  // class 1: 1 correct, 1 predicted as 0.
  cm.Add(1, 1);
  cm.Add(1, 0);
  EXPECT_EQ(cm.total(), 6u);
  EXPECT_EQ(cm.Count(0, 1), 1u);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(cm.Recall(0), 0.75);
  EXPECT_DOUBLE_EQ(cm.Recall(1), 0.5);
  EXPECT_DOUBLE_EQ(cm.Precision(0), 0.75);
  EXPECT_DOUBLE_EQ(cm.Precision(1), 0.5);
}

TEST(ConfusionMatrixTest, UnseenClassesAreZero) {
  ConfusionMatrix cm;
  cm.Add(0, 0);
  EXPECT_DOUBLE_EQ(cm.Recall(5), 0.0);
  EXPECT_DOUBLE_EQ(cm.Precision(5), 0.0);
  EXPECT_DOUBLE_EQ(cm.F1(5), 0.0);
}

TEST(ConfusionMatrixTest, PerClassRecallMap) {
  ConfusionMatrix cm;
  cm.Add(3, 3);
  cm.Add(3, 7);
  cm.Add(7, 7);
  auto recall = cm.PerClassRecall();
  EXPECT_EQ(recall.size(), 2u);
  EXPECT_DOUBLE_EQ(recall[3], 0.5);
  EXPECT_DOUBLE_EQ(recall[7], 1.0);
  EXPECT_EQ(cm.Classes(), (std::vector<sensors::ActivityId>{3, 7}));
}

TEST(ConfusionMatrixTest, ToStringContainsNamesAndAccuracy) {
  ConfusionMatrix cm;
  cm.Add(sensors::kWalk, sensors::kWalk);
  cm.Add(sensors::kRun, sensors::kWalk);
  const std::string table =
      cm.ToString(sensors::ActivityRegistry::BaseActivities());
  EXPECT_NE(table.find("Walk"), std::string::npos);
  EXPECT_NE(table.find("Run"), std::string::npos);
  EXPECT_NE(table.find("accuracy=0.5"), std::string::npos);
}

TEST(ForgettingTest, NoForgettingWhenRecallPreserved) {
  ConfusionMatrix before, after;
  for (int i = 0; i < 10; ++i) {
    before.Add(0, 0);
    before.Add(1, 1);
    after.Add(0, 0);
    after.Add(1, 1);
    after.Add(2, 2);  // new class
  }
  auto report = ComputeForgetting(before, after, 2);
  EXPECT_DOUBLE_EQ(report.mean_forgetting, 0.0);
  EXPECT_DOUBLE_EQ(report.old_class_accuracy_after, 1.0);
  EXPECT_DOUBLE_EQ(report.new_class_accuracy, 1.0);
}

TEST(ForgettingTest, MeasuresRecallDrop) {
  ConfusionMatrix before, after;
  for (int i = 0; i < 10; ++i) {
    before.Add(0, 0);  // recall 1.0 before
    before.Add(1, 1);
  }
  for (int i = 0; i < 10; ++i) {
    after.Add(0, i < 6 ? 0 : 2);  // recall 0.6 after
    after.Add(1, 1);              // retained
    after.Add(2, i < 8 ? 2 : 0);  // new class recall 0.8
  }
  auto report = ComputeForgetting(before, after, 2);
  EXPECT_NEAR(report.mean_forgetting, (0.4 + 0.0) / 2.0, 1e-9);
  EXPECT_NEAR(report.old_class_accuracy_after, (0.6 + 1.0) / 2.0, 1e-9);
  EXPECT_NEAR(report.old_class_accuracy_before, 1.0, 1e-9);
  EXPECT_NEAR(report.new_class_accuracy, 0.8, 1e-9);
}

TEST(ForgettingTest, ImprovementIsNotNegativeForgetting) {
  ConfusionMatrix before, after;
  before.Add(0, 1);  // recall 0 before
  after.Add(0, 0);   // recall 1 after (improved)
  auto report = ComputeForgetting(before, after, 9);
  EXPECT_DOUBLE_EQ(report.mean_forgetting, 0.0);  // clamped at 0
}

}  // namespace
}  // namespace magneto::learn
