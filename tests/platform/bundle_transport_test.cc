#include "platform/bundle_transport.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace magneto::platform {
namespace {

std::string RandomPayload(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string payload(n, '\0');
  for (size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<char>(rng.UniformInt(0, 255));
  }
  return payload;
}

/// Plays back an exact fault sequence; clean once the script runs out.
class ScriptedInjector : public FaultInjector {
 public:
  explicit ScriptedInjector(std::vector<FaultDecision> script)
      : script_(std::move(script)) {}

  FaultDecision Decide(size_t) override {
    if (next_ < script_.size()) return script_[next_++];
    return FaultDecision{};
  }

 private:
  std::vector<FaultDecision> script_;
  size_t next_ = 0;
};

FaultDecision Fault(FaultKind kind, size_t offset = 0) {
  FaultDecision decision;
  decision.kind = kind;
  decision.offset = offset;
  return decision;
}

TransportOptions SmallChunks() {
  TransportOptions options;
  options.chunk_bytes = 1024;
  return options;
}

TEST(BundleTransportTest, CleanDeliveryIsByteIdentical) {
  const std::string payload = RandomPayload(10000, 1);
  NetworkLink link(50.0, 10.0);
  BundleTransport transport(&link, SmallChunks());
  auto delivered = transport.Deliver(Direction::kDownlink,
                                     PayloadKind::kModelArtifact, payload);
  ASSERT_TRUE(delivered.ok()) << delivered.status();
  EXPECT_EQ(delivered.value(), payload);

  const TransportReport& report = transport.report();
  EXPECT_TRUE(report.delivered);
  EXPECT_EQ(report.chunks, 10u);  // ceil(10000 / 1024)
  EXPECT_EQ(report.attempts, 10u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.backoff_seconds, 0.0);
  EXPECT_GT(report.wire_bytes, payload.size());  // chunk framing overhead
  for (size_t attempts : report.chunk_attempts) EXPECT_EQ(attempts, 1u);
  // Timing: one latency hit for the stream, serialization for every frame.
  EXPECT_NEAR(report.seconds,
              0.025 + static_cast<double>(report.wire_bytes) * 8.0 / 10e6,
              1e-9);
}

TEST(BundleTransportTest, DropOnChunkKResumesAtChunkKNotChunkZero) {
  const std::string payload = RandomPayload(8192, 2);  // 8 chunks of 1024
  const size_t k = 5;
  std::vector<FaultDecision> script(k, Fault(FaultKind::kNone));
  script.push_back(Fault(FaultKind::kDrop));  // chunk k, first attempt
  NetworkLink link(50.0, 10.0);
  link.SetFaultInjector(std::make_unique<ScriptedInjector>(script));
  BundleTransport transport(&link, SmallChunks());
  auto delivered = transport.Deliver(Direction::kDownlink,
                                     PayloadKind::kModelArtifact, payload);
  ASSERT_TRUE(delivered.ok()) << delivered.status();
  EXPECT_EQ(delivered.value(), payload);

  const TransportReport& report = transport.report();
  ASSERT_EQ(report.chunk_attempts.size(), 8u);
  for (size_t i = 0; i < report.chunk_attempts.size(); ++i) {
    // The resume contract: only chunk k is re-sent; chunks before (and
    // after) the fault go over the wire exactly once.
    EXPECT_EQ(report.chunk_attempts[i], i == k ? 2u : 1u) << "chunk " << i;
  }
  EXPECT_EQ(report.attempts, 9u);
  EXPECT_EQ(report.retries, 1u);
  EXPECT_GT(report.backoff_seconds, 0.0);
}

TEST(BundleTransportTest, CorruptedChunkIsRetriedUntilClean) {
  const std::string payload = RandomPayload(4096, 3);  // 4 chunks
  // Chunk 0 suffers a bit-flip then a truncation before going through.
  std::vector<FaultDecision> script = {Fault(FaultKind::kBitFlip, 100),
                                       Fault(FaultKind::kTruncate, 37)};
  NetworkLink link(50.0, 10.0);
  link.SetFaultInjector(std::make_unique<ScriptedInjector>(script));
  BundleTransport transport(&link, SmallChunks());
  auto delivered = transport.Deliver(Direction::kDownlink,
                                     PayloadKind::kModelArtifact, payload);
  ASSERT_TRUE(delivered.ok()) << delivered.status();
  EXPECT_EQ(delivered.value(), payload);
  EXPECT_EQ(transport.report().chunk_attempts[0], 3u);
  EXPECT_EQ(transport.report().retries, 2u);
}

TEST(BundleTransportTest, DelayFaultCostsTimeButDelivers) {
  const std::string payload = RandomPayload(1024, 4);
  FaultDecision delay = Fault(FaultKind::kDelay);
  delay.extra_seconds = 0.75;
  NetworkLink link(50.0, 10.0);
  link.SetFaultInjector(
      std::make_unique<ScriptedInjector>(std::vector<FaultDecision>{delay}));
  BundleTransport transport(&link, SmallChunks());
  auto delivered = transport.Deliver(Direction::kDownlink,
                                     PayloadKind::kModelArtifact, payload);
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(transport.report().retries, 0u);
  EXPECT_GT(transport.report().seconds, 0.75);
}

TEST(BundleTransportTest, HopelessLinkFailsBounded) {
  FaultPolicy policy;
  policy.drop_rate = 1.0;
  NetworkLink link(50.0, 10.0);
  link.SetFaultInjector(std::make_unique<FaultInjector>(policy));
  TransportOptions options = SmallChunks();
  options.max_attempts_per_chunk = 5;
  BundleTransport transport(&link, options);
  const std::string payload = RandomPayload(4096, 5);
  auto delivered = transport.Deliver(Direction::kDownlink,
                                     PayloadKind::kModelArtifact, payload);
  EXPECT_EQ(delivered.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(transport.report().delivered);
  // Bounded: exactly the per-chunk budget on chunk 0, then abort.
  EXPECT_EQ(transport.report().attempts, 5u);
  EXPECT_EQ(transport.report().chunk_attempts[0], 5u);
}

TEST(BundleTransportTest, SeededLossyLinkDeliversByteIdentical) {
  // The acceptance scenario: 20% drop + 5% corruption, seeded. Delivery
  // must complete in bounded retries with a byte-identical payload.
  const std::string payload = RandomPayload(64 * 1024, 6);
  FaultPolicy policy;
  policy.drop_rate = 0.2;
  policy.truncate_rate = 0.025;
  policy.bit_flip_rate = 0.025;
  policy.seed = 23;
  NetworkLink link(50.0, 10.0);
  link.SetFaultInjector(std::make_unique<FaultInjector>(policy));
  BundleTransport transport(&link, SmallChunks());
  auto delivered = transport.Deliver(Direction::kDownlink,
                                     PayloadKind::kModelArtifact, payload);
  ASSERT_TRUE(delivered.ok()) << delivered.status();
  EXPECT_EQ(delivered.value(), payload);
  EXPECT_GT(transport.report().retries, 0u);
  EXPECT_TRUE(transport.report().delivered);
}

TEST(BundleTransportTest, SameSeedsSameReport) {
  const std::string payload = RandomPayload(32 * 1024, 7);
  FaultPolicy policy;
  policy.drop_rate = 0.25;
  policy.seed = 41;

  auto run = [&]() {
    NetworkLink link(50.0, 10.0);
    link.SetFaultInjector(std::make_unique<FaultInjector>(policy));
    BundleTransport transport(&link, SmallChunks());
    auto delivered = transport.Deliver(Direction::kDownlink,
                                       PayloadKind::kModelArtifact, payload);
    EXPECT_TRUE(delivered.ok());
    return transport.report();
  };
  const TransportReport a = run();
  const TransportReport b = run();
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.chunk_attempts, b.chunk_attempts);
}

TEST(BundleTransportTest, BackoffGrowsExponentiallyAndCaps) {
  NetworkLink link(50.0, 10.0);
  TransportOptions options;
  options.jitter_fraction = 0.0;  // exact values
  BundleTransport transport(&link, options);
  EXPECT_DOUBLE_EQ(transport.BackoffSeconds(1), 0.05);
  EXPECT_DOUBLE_EQ(transport.BackoffSeconds(2), 0.10);
  EXPECT_DOUBLE_EQ(transport.BackoffSeconds(3), 0.20);
  EXPECT_DOUBLE_EQ(transport.BackoffSeconds(20), options.backoff_max_s);
}

TEST(BundleTransportTest, EmptyPayloadDeliversTrivially) {
  NetworkLink link(50.0, 10.0);
  BundleTransport transport(&link, SmallChunks());
  auto delivered =
      transport.Deliver(Direction::kDownlink, PayloadKind::kModelArtifact, "");
  ASSERT_TRUE(delivered.ok());
  EXPECT_TRUE(delivered.value().empty());
  EXPECT_EQ(transport.report().chunks, 0u);
  EXPECT_TRUE(transport.report().delivered);
}

TEST(ChunkFrameTest, RoundTrip) {
  const std::string chunk = RandomPayload(512, 8);
  const std::string frame = EncodeChunkFrame(3, 10, 9999, chunk);
  auto decoded = DecodeChunkFrame(frame, 3, 10, 9999);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded.value(), chunk);
}

TEST(ChunkFrameTest, RejectsHeaderMismatchAndCorruption) {
  const std::string chunk = RandomPayload(512, 9);
  std::string frame = EncodeChunkFrame(3, 10, 9999, chunk);
  EXPECT_EQ(DecodeChunkFrame(frame, 4, 10, 9999).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(DecodeChunkFrame(frame, 3, 11, 9999).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(DecodeChunkFrame(frame, 3, 10, 10000).status().code(),
            StatusCode::kCorruption);
  // Any single-byte truncation of the frame must read as corruption.
  for (size_t len = 0; len < frame.size(); ++len) {
    EXPECT_EQ(
        DecodeChunkFrame(frame.substr(0, len), 3, 10, 9999).status().code(),
        StatusCode::kCorruption)
        << "truncated to " << len;
  }
  frame[40] ^= 0x10;  // payload bit-flip
  EXPECT_EQ(DecodeChunkFrame(frame, 3, 10, 9999).status().code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace magneto::platform
