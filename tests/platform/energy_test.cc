#include "platform/energy.h"

#include <gtest/gtest.h>

#include "platform/protocols.h"

namespace magneto::platform {
namespace {

TEST(EnergyModelTest, EnergyIsPowerTimesTime) {
  EnergyModel model;
  EXPECT_DOUBLE_EQ(model.ComputeJoules(10.0), 20.0);  // 2 W x 10 s
  EXPECT_DOUBLE_EQ(model.RadioJoules(10.0), 8.0);     // 0.8 W x 10 s
  EXPECT_DOUBLE_EQ(model.ComputeJoules(0.0), 0.0);
}

TEST(EnergyModelTest, BatteryFraction) {
  EnergyModel model;
  model.battery_joules = 1000.0;
  EXPECT_DOUBLE_EQ(model.BatteryFraction(10.0), 0.01);
  model.battery_joules = 0.0;
  EXPECT_DOUBLE_EQ(model.BatteryFraction(10.0), 0.0);
}

TEST(EnergyModelTest, CustomPowerDraws) {
  EnergyModel model;
  model.cpu_active_watts = 5.0;
  model.radio_active_watts = 1.5;
  EXPECT_DOUBLE_EQ(model.ComputeJoules(2.0), 10.0);
  EXPECT_DOUBLE_EQ(model.RadioJoules(2.0), 3.0);
}

TEST(ProtocolMetricsTest, TotalJoulesSumsComponents) {
  ProtocolMetrics metrics;
  metrics.cpu_joules = 1.5;
  metrics.radio_joules = 2.5;
  EXPECT_DOUBLE_EQ(metrics.total_joules(), 4.0);
}

}  // namespace
}  // namespace magneto::platform
