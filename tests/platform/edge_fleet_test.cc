#include "platform/edge_fleet.h"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/edge_runtime.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/slo_monitor.h"
#include "obs/trace.h"
#include "sensors/synthetic_generator.h"
#include "testing/test_helpers.h"

namespace magneto::platform {
namespace {

core::IncrementalOptions FastUpdateOptions() {
  core::IncrementalOptions options;
  options.train.epochs = 2;
  options.train.batch_size = 16;
  options.train.seed = 7;
  return options;
}

std::vector<sensors::Frame> FramesOf(const sensors::Recording& rec) {
  std::vector<sensors::Frame> frames(rec.num_samples());
  for (size_t i = 0; i < frames.size(); ++i) {
    for (size_t c = 0; c < sensors::kNumChannels; ++c) {
      frames[i][c] = rec.samples.At(i, c);
    }
  }
  return frames;
}

std::vector<sensors::Frame> ActivityFrames(sensors::ActivityId activity,
                                           double seconds, uint64_t seed) {
  sensors::SyntheticGenerator gen(seed);
  return FramesOf(
      gen.Generate(sensors::DefaultActivityLibrary()[activity], seconds));
}

TEST(EdgeFleetTest, CreateValidatesInputs) {
  EXPECT_EQ(EdgeFleet::Create(testing::SmallPretrainedBundle(801), 0)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // An unfitted/empty bundle is refused.
  EXPECT_EQ(EdgeFleet::Create(core::ModelBundle{}, 2).status().code(),
            StatusCode::kFailedPrecondition);
  FleetOptions zero_batch;
  zero_batch.max_batch = 0;
  EXPECT_EQ(EdgeFleet::Create(testing::SmallPretrainedBundle(801), 2,
                              zero_batch)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  auto fleet = EdgeFleet::Create(testing::SmallPretrainedBundle(801), 3);
  ASSERT_TRUE(fleet.ok());
  EXPECT_EQ(fleet.value()->num_sessions(), 3u);
  EXPECT_EQ(fleet.value()->deployment_version(), 1u);
}

TEST(EdgeFleetTest, SingleSessionMatchesEdgeRuntime) {
  // A fleet of one must be byte-for-byte the single-session runtime: same
  // bundle, same frames, identical prediction stream.
  core::ModelBundle runtime_bundle = testing::SmallPretrainedBundle(802);
  core::SupportSet support = std::move(runtime_bundle.support);
  core::EdgeRuntime runtime(std::move(runtime_bundle).ToEdgeModel(),
                            std::move(support), FastUpdateOptions());
  auto fleet =
      EdgeFleet::Create(testing::SmallPretrainedBundle(802), 1).value();

  std::vector<sensors::Frame> frames = ActivityFrames(sensors::kWalk, 3.0, 5);
  std::vector<sensors::Frame> more = ActivityFrames(sensors::kStill, 3.0, 6);
  frames.insert(frames.end(), more.begin(), more.end());

  size_t predictions = 0;
  for (const sensors::Frame& frame : frames) {
    auto from_runtime = runtime.PushFrame(frame);
    auto from_fleet = fleet->PushFrame(0, frame);
    ASSERT_TRUE(from_runtime.ok());
    ASSERT_TRUE(from_fleet.ok());
    ASSERT_EQ(from_runtime.value().has_value(),
              from_fleet.value().has_value());
    if (!from_fleet.value().has_value()) continue;
    ++predictions;
    const core::NamedPrediction& a = *from_runtime.value();
    const core::NamedPrediction& b = *from_fleet.value();
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(std::memcmp(&a.prediction, &b.prediction,
                          sizeof(core::Prediction)),
              0);
  }
  EXPECT_GE(predictions, 5u);
  EXPECT_EQ(fleet->session_stats(0).predictions, predictions);
}

TEST(EdgeFleetTest, SessionsHaveIndependentState) {
  FleetOptions options;
  options.enable_journal = true;
  auto fleet = EdgeFleet::Create(testing::SmallPretrainedBundle(803), 3,
                                 options)
                   .value();
  for (const sensors::Frame& f : ActivityFrames(sensors::kWalk, 2.0, 11)) {
    ASSERT_TRUE(fleet->PushFrame(0, f).ok());
  }
  for (const sensors::Frame& f : ActivityFrames(sensors::kStill, 1.0, 12)) {
    ASSERT_TRUE(fleet->PushFrame(1, f).ok());
  }

  EXPECT_EQ(fleet->session_stats(0).frames, 240u);
  EXPECT_EQ(fleet->session_stats(0).windows, 2u);
  EXPECT_EQ(fleet->session_stats(1).frames, 120u);
  EXPECT_EQ(fleet->session_stats(1).windows, 1u);
  // Session 2 was never fed: untouched.
  EXPECT_EQ(fleet->session_stats(2).frames, 0u);
  EXPECT_FALSE(fleet->last_prediction(2).has_value());
  ASSERT_TRUE(fleet->last_prediction(0).has_value());
  ASSERT_NE(fleet->journal(0), nullptr);
  EXPECT_GT(fleet->journal(0)->elapsed_seconds(), 0.0);
  EXPECT_EQ(fleet->journal(2)->elapsed_seconds(), 0.0);

  EXPECT_EQ(fleet->PushFrame(99, ActivityFrames(sensors::kWalk, 0.1, 1)[0])
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(EdgeFleetTest, PromotionSwapsAtomicallyAndResetsStreams) {
  auto fleet =
      EdgeFleet::Create(testing::SmallPretrainedBundle(804), 1).value();
  std::vector<sensors::Frame> frames = ActivityFrames(sensors::kWalk, 2.0, 21);

  // Fill half a window, then promote: the partial window must be discarded.
  for (size_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(fleet->PushFrame(0, frames[i]).ok());
  }
  ASSERT_TRUE(fleet->PromoteBundle(testing::SmallPretrainedBundle(805)).ok());
  EXPECT_EQ(fleet->deployment_version(), 2u);

  size_t frames_to_first = 0;
  for (size_t i = 60; i < frames.size(); ++i) {
    auto pred = fleet->PushFrame(0, frames[i]);
    ASSERT_TRUE(pred.ok());
    ++frames_to_first;
    if (pred.value().has_value()) break;
  }
  // A full fresh window (120 frames) after the promotion, not 60.
  EXPECT_EQ(frames_to_first, 120u);

  // Promoting junk is refused and the live deployment is untouched.
  EXPECT_EQ(fleet->PromoteBundle(core::ModelBundle{}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(fleet->deployment_version(), 2u);
}

TEST(EdgeFleetTest, BackgroundLearnAndPromoteUpdate) {
  FleetOptions options;
  options.update_options = FastUpdateOptions();
  auto fleet = EdgeFleet::Create(testing::SmallPretrainedBundle(806), 2,
                                 options)
                   .value();
  EXPECT_EQ(fleet->PromoteUpdate().status().code(),
            StatusCode::kFailedPrecondition);

  sensors::SyntheticGenerator gen(31);
  std::vector<sensors::Recording> capture{
      gen.Generate(sensors::MakeGestureModel(31), 20.0)};
  ASSERT_TRUE(fleet->BeginLearn("Gesture Hi", std::move(capture)).ok());
  EXPECT_TRUE(fleet->UpdatePending());

  // Sessions keep serving the current model while training runs.
  for (const sensors::Frame& f : ActivityFrames(sensors::kWalk, 1.0, 32)) {
    ASSERT_TRUE(fleet->PushFrame(0, f).ok());
  }

  auto report = fleet->PromoteUpdate();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(fleet->deployment_version(), 2u);
  EXPECT_FALSE(fleet->UpdatePending());
  core::ModelBundle out = fleet->ToBundle();
  EXPECT_EQ(out.registry.size(), 6u);
  EXPECT_TRUE(out.registry.IdOf("Gesture Hi").ok());
  EXPECT_TRUE(out.support.HasClass(report.value().activity));
}

TEST(EdgeFleetTest, FailedUpdateIsNeverPromoted) {
  FleetOptions options;
  options.update_options = FastUpdateOptions();
  options.update_options.failure_hook = [](core::UpdateStep step) {
    if (step == core::UpdateStep::kTrain) {
      return Status::Internal("injected training failure");
    }
    return Status::Ok();
  };
  auto fleet = EdgeFleet::Create(testing::SmallPretrainedBundle(810), 2,
                                 options)
                   .value();

  const uint64_t failures_before = [] {
    const auto snap = obs::Registry::Global().TakeSnapshot();
    const auto* c = snap.FindCounter("fleet.update_failures");
    return c == nullptr ? uint64_t{0} : c->value;
  }();

  sensors::SyntheticGenerator gen(33);
  std::vector<sensors::Recording> capture{
      gen.Generate(sensors::MakeGestureModel(33), 20.0)};
  ASSERT_TRUE(fleet->BeginLearn("Gesture Hi", std::move(capture)).ok());

  auto report = fleet->PromoteUpdate();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);

  // The failed update never reached the deployment: version unchanged, the
  // registry untouched, and the failure counted.
  EXPECT_EQ(fleet->deployment_version(), 1u);
  EXPECT_FALSE(fleet->ToBundle().registry.IdOf("Gesture Hi").ok());
  {
    const auto snap = obs::Registry::Global().TakeSnapshot();
    const auto* c = snap.FindCounter("fleet.update_failures");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value, failures_before + 1);
  }

  // Sessions keep serving after the rollback.
  size_t predictions = 0;
  for (const sensors::Frame& f : ActivityFrames(sensors::kWalk, 2.0, 34)) {
    auto pred = fleet->PushFrame(0, f);
    ASSERT_TRUE(pred.ok());
    if (pred.value().has_value()) ++predictions;
  }
  EXPECT_EQ(predictions, 2u);
}

TEST(EdgeFleetTest, BatchingKeepsMetricsConsistent) {
  obs::Registry::Global().ResetAll();
  FleetOptions options;
  options.max_batch = 4;
  auto fleet = EdgeFleet::Create(testing::SmallPretrainedBundle(807), 4,
                                 options)
                   .value();
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (size_t s = 0; s < 4; ++s) {
    threads.emplace_back([&, s] {
      for (const sensors::Frame& f :
           ActivityFrames(sensors::kWalk, 2.0, 40 + s)) {
        if (!fleet->PushFrame(s, f).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  obs::Snapshot snap = obs::Registry::Global().TakeSnapshot();
  const auto* requests = snap.FindCounter("fleet.requests");
  const auto* batches = snap.FindCounter("fleet.batches");
  const auto* batch_size = snap.FindHistogram("fleet.batch_size");
  ASSERT_NE(requests, nullptr);
  ASSERT_NE(batches, nullptr);
  ASSERT_NE(batch_size, nullptr);
  EXPECT_EQ(requests->value, 8u);  // 4 sessions x 2 windows
  EXPECT_GT(batches->value, 0u);
  EXPECT_LE(batches->value, requests->value);
  EXPECT_EQ(batch_size->count, batches->value);
  // Total classified rows across all batches equals total requests.
  EXPECT_DOUBLE_EQ(batch_size->sum, static_cast<double>(requests->value));
}

/// Pre-featurizes `count` consecutive windows of synthetic `activity` data
/// through the bundle's own pipeline — exactly what an open-loop generator
/// feeds `SubmitWindow`.
std::vector<std::vector<float>> FeaturizedWindows(
    const core::ModelBundle& bundle, sensors::ActivityId activity,
    size_t count, uint64_t seed) {
  const auto& seg = bundle.pipeline.config().segmentation;
  const double seconds =
      static_cast<double>(seg.window_samples + count * seg.stride) /
          sensors::kDefaultSampleRateHz +
      1.0;
  std::vector<sensors::Frame> frames = ActivityFrames(activity, seconds, seed);
  std::vector<std::vector<float>> out;
  out.reserve(count);
  for (size_t w = 0; w < count; ++w) {
    Matrix window(seg.window_samples, sensors::kNumChannels);
    for (size_t r = 0; r < seg.window_samples; ++r) {
      const sensors::Frame& f = frames[w * seg.stride + r];
      for (size_t c = 0; c < sensors::kNumChannels; ++c) {
        window.At(r, c) = f[c];
      }
    }
    out.push_back(bundle.pipeline.ProcessWindow(window).value());
  }
  return out;
}

TEST(EdgeFleetTest, OpenLoopOptionsValidated) {
  FleetOptions no_leaders;
  no_leaders.max_concurrent_batches = 0;
  EXPECT_EQ(EdgeFleet::Create(testing::SmallPretrainedBundle(811), 1,
                              no_leaders)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  FleetOptions no_queue;
  no_queue.serve_threads = 2;
  no_queue.admission_capacity = 0;
  EXPECT_EQ(EdgeFleet::Create(testing::SmallPretrainedBundle(811), 1,
                              no_queue)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(EdgeFleetDeathTest, SubmitWindowWithoutWorkersAborts) {
  // Default options leave serve_threads = 0: the open-loop path is off and
  // SubmitWindow is a configuration error, not a quiet no-op.
  auto fleet =
      EdgeFleet::Create(testing::SmallPretrainedBundle(812), 1).value();
  EXPECT_DEATH(fleet->SubmitWindow(0, std::vector<float>(4, 0.0f)),
               "serve_threads");
}

TEST(EdgeFleetTest, OpenLoopServesSubmittedWindows) {
  core::ModelBundle bundle = testing::SmallPretrainedBundle(813);
  auto windows = FeaturizedWindows(bundle, sensors::kWalk, 6, 60);
  FleetOptions options;
  options.serve_threads = 2;
  options.max_concurrent_batches = 2;
  auto fleet = EdgeFleet::Create(std::move(bundle), 2, options).value();

  for (size_t i = 0; i < windows.size(); ++i) {
    EXPECT_TRUE(fleet->SubmitWindow(i % 2, windows[i]));
  }
  // Out-of-range sessions are shed, not fatal: the generator keeps running.
  EXPECT_FALSE(fleet->SubmitWindow(99, windows[0]));
  fleet->DrainSubmitted();

  for (size_t s = 0; s < 2; ++s) {
    const FleetSessionStats stats = fleet->session_stats(s);
    EXPECT_EQ(stats.submitted, 3u) << "session " << s;
    EXPECT_EQ(stats.rejected, 0u) << "session " << s;
    EXPECT_EQ(stats.windows, 3u) << "session " << s;
    EXPECT_EQ(stats.predictions, 3u) << "session " << s;
    // SubmitWindow bypasses the frame stream entirely.
    EXPECT_EQ(stats.frames, 0u) << "session " << s;
    EXPECT_TRUE(fleet->last_prediction(s).has_value()) << "session " << s;
  }
}

TEST(EdgeFleetTest, OpenLoopMatchesClosedLoopPrediction) {
  // The same window must classify identically whether it arrives frame by
  // frame (PushFrame) or pre-featurized through the admission queue.
  core::ModelBundle closed_bundle = testing::SmallPretrainedBundle(814);
  core::ModelBundle open_bundle = testing::SmallPretrainedBundle(814);
  auto windows = FeaturizedWindows(open_bundle, sensors::kRun, 1, 61);

  auto closed = EdgeFleet::Create(std::move(closed_bundle), 1).value();
  const auto& seg = open_bundle.pipeline.config().segmentation;
  const double seconds = static_cast<double>(seg.window_samples + seg.stride) /
                             sensors::kDefaultSampleRateHz +
                         1.0;
  std::optional<core::NamedPrediction> from_frames;
  for (const sensors::Frame& f : ActivityFrames(sensors::kRun, seconds, 61)) {
    auto pred = closed->PushFrame(0, f);
    ASSERT_TRUE(pred.ok());
    if (pred.value().has_value()) {
      from_frames = pred.value();
      break;
    }
  }
  ASSERT_TRUE(from_frames.has_value());

  FleetOptions options;
  options.serve_threads = 1;
  auto open = EdgeFleet::Create(std::move(open_bundle), 1, options).value();
  ASSERT_TRUE(open->SubmitWindow(0, windows[0]));
  open->DrainSubmitted();
  ASSERT_TRUE(open->last_prediction(0).has_value());
  EXPECT_EQ(open->last_prediction(0)->name, from_frames->name);
  EXPECT_EQ(open->last_prediction(0)->prediction.activity,
            from_frames->prediction.activity);
}

TEST(EdgeFleetTest, OpenLoopShedsWhenQueueFull) {
  obs::Registry::Global().ResetAll();
  core::ModelBundle bundle = testing::SmallPretrainedBundle(815);
  auto windows = FeaturizedWindows(bundle, sensors::kStill, 1, 62);
  FleetOptions options;
  options.serve_threads = 1;
  options.admission_capacity = 4;
  auto fleet = EdgeFleet::Create(std::move(bundle), 1, options).value();

  // A hard burst: admission is a queue push, service is a backbone forward,
  // and the queue holds 4 — the lone worker cannot keep up and most of the
  // burst must shed.
  constexpr size_t kBurst = 500;
  size_t admitted = 0;
  for (size_t i = 0; i < kBurst; ++i) {
    if (fleet->SubmitWindow(0, windows[0])) ++admitted;
  }
  fleet->DrainSubmitted();

  const FleetSessionStats stats = fleet->session_stats(0);
  EXPECT_EQ(stats.submitted, admitted);
  EXPECT_EQ(stats.rejected, kBurst - admitted);
  EXPECT_GT(stats.rejected, 0u);
  // Every admitted window was served, every shed window was not.
  EXPECT_EQ(stats.windows, admitted);
  EXPECT_EQ(stats.predictions, admitted);

  obs::Snapshot snap = obs::Registry::Global().TakeSnapshot();
  const auto* rejected = snap.FindCounter("fleet.rejected");
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(rejected->value, stats.rejected);
  const auto* wait = snap.FindHistogram("fleet.queue_wait_us");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->count, admitted);
  const auto* depth = snap.FindGauge("fleet.queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->value, 0.0);  // drained
}

TEST(EdgeFleetTest, OpenLoopEmitsLinkedFlowEventsAndStageHistograms) {
  // The tentpole property: one submitted window is followable end-to-end —
  // a flow begin on the admission thread, a step at the combiner, a finish
  // at publish, all sharing the request id, plus one sample in every
  // fleet.stage.* histogram whose stages tile admit -> publish.
  obs::Registry::Global().ResetAll();
  obs::ClearTrace();
  obs::SetTraceEnabled(true);
  core::ModelBundle bundle = testing::SmallPretrainedBundle(818);
  auto windows = FeaturizedWindows(bundle, sensors::kWalk, 4, 64);
  FleetOptions options;
  options.serve_threads = 2;
  auto fleet = EdgeFleet::Create(std::move(bundle), 1, options).value();

  for (const auto& w : windows) ASSERT_TRUE(fleet->SubmitWindow(0, w));
  fleet->DrainSubmitted();
  obs::SetTraceEnabled(false);

  // Each request contributes exactly one s and one f marker (and at least
  // one t at the embed hop), every marker carrying the same nonzero id.
  std::map<uint64_t, std::array<size_t, 3>> flows;  // id -> {s, t, f} counts
  for (const obs::TraceEvent& e : obs::CollectTraceEvents()) {
    if (e.phase == obs::TracePhase::kSpan) continue;
    ASSERT_STREQ(e.name, "fleet.request");
    ASSERT_NE(e.flow_id, 0u);
    auto& counts = flows[e.flow_id];
    switch (e.phase) {
      case obs::TracePhase::kFlowBegin: ++counts[0]; break;
      case obs::TracePhase::kFlowStep: ++counts[1]; break;
      case obs::TracePhase::kFlowEnd: ++counts[2]; break;
      default: break;
    }
  }
  ASSERT_EQ(flows.size(), windows.size());
  for (const auto& [id, counts] : flows) {
    EXPECT_EQ(counts[0], 1u) << "flow " << id;
    EXPECT_EQ(counts[1], 1u) << "flow " << id;
    EXPECT_EQ(counts[2], 1u) << "flow " << id;
  }

  // Stage attribution: every stage histogram saw every request, and the
  // stage means tile the end-to-end mean exactly (adjacent intervals).
  obs::Snapshot snap = obs::Registry::Global().TakeSnapshot();
  double stage_mean_sum = 0.0;
  for (const char* stage : {"queue", "batch_wait", "embed", "classify",
                            "publish"}) {
    const auto* h = snap.FindHistogram(std::string("fleet.stage.") + stage +
                                       "_us");
    ASSERT_NE(h, nullptr) << stage;
    EXPECT_EQ(h->count, windows.size()) << stage;
    stage_mean_sum += h->sum / static_cast<double>(h->count);
  }
  const auto* e2e_h = snap.FindHistogram("fleet.e2e_us");
  ASSERT_NE(e2e_h, nullptr);
  EXPECT_EQ(e2e_h->count, windows.size());
  const double e2e_mean = e2e_h->sum / static_cast<double>(e2e_h->count);
  // The 1/1000 fixed-point quantisation of each histogram's sum is the only
  // slack between the tiled stages and the end-to-end interval.
  EXPECT_NEAR(stage_mean_sum, e2e_mean, 0.01 * 6);
  // Tail buckets carry exemplars: concrete request ids, not just counts.
  bool any_exemplar = false;
  for (const auto& ex : e2e_h->exemplars) any_exemplar |= ex.id != 0;
  EXPECT_TRUE(any_exemplar);
}

TEST(EdgeFleetTest, OpenLoopFillsInjectedFlightRecorder) {
  obs::FlightRecorder recorder(64);
  core::ModelBundle bundle = testing::SmallPretrainedBundle(819);
  auto windows = FeaturizedWindows(bundle, sensors::kRun, 5, 65);
  FleetOptions options;
  options.serve_threads = 1;
  options.flight_recorder = &recorder;
  auto fleet = EdgeFleet::Create(std::move(bundle), 1, options).value();
  for (const auto& w : windows) ASSERT_TRUE(fleet->SubmitWindow(0, w));
  fleet->DrainSubmitted();

  const std::vector<obs::FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), windows.size());
  for (const obs::FlightRecord& r : records) {
    EXPECT_EQ(r.outcome, obs::FlightRecord::Outcome::kOk);
    EXPECT_EQ(r.session, 0u);
    EXPECT_EQ(r.deployment_version, 1u);
    EXPECT_GE(r.batch_size, 1u);
    // Stage stamps are complete and ordered for a published request.
    uint64_t prev = 0;
    for (size_t s = 0; s < obs::kNumRequestStages; ++s) {
      EXPECT_GT(r.stage_ns[s], 0u) << "stage " << s;
      EXPECT_GE(r.stage_ns[s], prev) << "stage " << s;
      prev = r.stage_ns[s];
    }
  }
}

TEST(EdgeFleetTest, ShedBurstDegradesHealthAndAutoDumps) {
  // Forced-degradation drill: a burst against a tiny queue must leave shed
  // records in the injected recorder, fire the shed_burst anomaly (with an
  // auto-dump), and push the SLO monitor out of OK.
  const std::string dump_path =
      ::testing::TempDir() + "fleet_shed_burst_dump.json";
  std::remove(dump_path.c_str());
  obs::FlightRecorder recorder(128);
  recorder.SetShedBurstThreshold(8);
  recorder.SetAutoDumpPath(dump_path);
  obs::SloMonitor slo;

  core::ModelBundle bundle = testing::SmallPretrainedBundle(820);
  auto windows = FeaturizedWindows(bundle, sensors::kStill, 1, 66);
  FleetOptions options;
  options.serve_threads = 1;
  options.admission_capacity = 4;
  options.flight_recorder = &recorder;
  options.slo_monitor = &slo;
  auto fleet = EdgeFleet::Create(std::move(bundle), 1, options).value();

  constexpr size_t kBurst = 400;
  size_t admitted = 0;
  for (size_t i = 0; i < kBurst; ++i) {
    if (fleet->SubmitWindow(0, windows[0])) ++admitted;
  }
  fleet->DrainSubmitted();
  ASSERT_GT(kBurst - admitted, 8u);  // the burst actually shed

  // Shed records landed in the ring alongside served ones.
  size_t shed_records = 0;
  for (const obs::FlightRecord& r : recorder.Snapshot()) {
    if (r.outcome == obs::FlightRecord::Outcome::kShed) ++shed_records;
  }
  EXPECT_GT(shed_records, 0u);

  // The burst crossed the threshold: anomaly dump exists and names it.
  std::ifstream dump(dump_path);
  ASSERT_TRUE(dump.good()) << "shed burst did not auto-dump";
  std::ostringstream contents;
  contents << dump.rdbuf();
  EXPECT_NE(contents.str().find("\"last_anomaly\": \"shed_burst\""),
            std::string::npos);
  std::remove(dump_path.c_str());

  // Sheds outnumber serves by ~100x, far past any shed-rate target.
  const obs::HealthReport health = slo.Evaluate();
  EXPECT_NE(health.state, obs::HealthState::kOk);
  EXPECT_GT(health.shed_rate, slo.targets().max_shed_rate);
  EXPECT_EQ(health.requests + health.shed, kBurst);
}

TEST(EdgeFleetStressTest, OpenLoopConcurrentSubmitWithMidRunPromotion) {
  // Open-loop counterpart of the promotion storm below: producer threads
  // hammer SubmitWindow while workers drain and a promotion swaps the
  // deployment mid-run. TSan target for the admission queue handoff.
  constexpr size_t kSessions = 4;
  constexpr size_t kPerSession = 50;
  core::ModelBundle bundle = testing::SmallPretrainedBundle(816);
  auto windows = FeaturizedWindows(bundle, sensors::kWalk, 4, 63);
  FleetOptions options;
  options.serve_threads = 4;
  options.max_concurrent_batches = 4;
  options.max_batch = 8;
  options.admission_capacity = 64;
  auto fleet =
      EdgeFleet::Create(std::move(bundle), kSessions, options).value();

  std::vector<std::thread> producers;
  for (size_t s = 0; s < kSessions; ++s) {
    producers.emplace_back([&, s] {
      for (size_t i = 0; i < kPerSession; ++i) {
        fleet->SubmitWindow(s, windows[i % windows.size()]);
        if (i % 8 == 0) std::this_thread::yield();
      }
    });
  }
  while (fleet->session_stats(0).windows == 0) std::this_thread::yield();
  ASSERT_TRUE(fleet->PromoteBundle(testing::SmallPretrainedBundle(817)).ok());
  for (auto& t : producers) t.join();
  fleet->DrainSubmitted();

  for (size_t s = 0; s < kSessions; ++s) {
    const FleetSessionStats stats = fleet->session_stats(s);
    EXPECT_EQ(stats.submitted + stats.rejected, kPerSession)
        << "session " << s;
    EXPECT_EQ(stats.windows, stats.submitted) << "session " << s;
    EXPECT_EQ(stats.predictions, stats.submitted) << "session " << s;
  }
  EXPECT_EQ(fleet->deployment_version(), 2u);
}

TEST(EdgeFleetTest, AnnDeploymentMatchesExactServing) {
  // Full-probe ANN configuration: the candidate pool covers every prototype,
  // so an ANN-enabled fleet must serve byte-identical predictions to a plain
  // one built from the same bundle seed — through promotions included.
  FleetOptions ann_options;
  ann_options.ann.enable = true;
  ann_options.ann.min_index_size = 1;
  ann_options.ann.nlist = 2;
  ann_options.ann.nprobe = 2;
  auto ann_fleet = EdgeFleet::Create(testing::SmallPretrainedBundle(821), 1,
                                     ann_options)
                       .value();
  auto exact_fleet =
      EdgeFleet::Create(testing::SmallPretrainedBundle(821), 1).value();

  auto compare_streams = [&](uint64_t seed) {
    size_t predictions = 0;
    for (const sensors::Frame& f : ActivityFrames(sensors::kWalk, 3.0, seed)) {
      auto pa = ann_fleet->PushFrame(0, f);
      auto pe = exact_fleet->PushFrame(0, f);
      ASSERT_TRUE(pa.ok());
      ASSERT_TRUE(pe.ok());
      ASSERT_EQ(pa.value().has_value(), pe.value().has_value());
      if (!pa.value().has_value()) continue;
      ++predictions;
      EXPECT_EQ(pa.value()->name, pe.value()->name);
      EXPECT_EQ(std::memcmp(&pa.value()->prediction, &pe.value()->prediction,
                            sizeof(core::Prediction)),
                0);
    }
    EXPECT_GE(predictions, 2u);
  };
  compare_streams(70);

  // The promoted deployment rebuilds the index before the pointer flip.
  ASSERT_TRUE(
      ann_fleet->PromoteBundle(testing::SmallPretrainedBundle(822)).ok());
  ASSERT_TRUE(
      exact_fleet->PromoteBundle(testing::SmallPretrainedBundle(822)).ok());
  compare_streams(71);
}

TEST(EdgeFleetStressTest, AnnConcurrentServeWithMidRunPromotion) {
  // ANN leg of the promotion storm: sessions classify through the shared
  // immutable index (thread_local NCM scratch in ServeBatch) while a
  // promotion swaps in a freshly built index mid-run. TSan target via
  // check.sh's ANN leg.
  constexpr size_t kSessions = 4;
  FleetOptions options;
  options.max_batch = 4;
  options.ann.enable = true;
  options.ann.min_index_size = 1;
  options.ann.nlist = 2;
  options.ann.nprobe = 2;
  auto fleet = EdgeFleet::Create(testing::SmallPretrainedBundle(823),
                                 kSessions, options)
                   .value();

  const sensors::ActivityId activities[] = {sensors::kStill, sensors::kWalk,
                                            sensors::kRun};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      for (const sensors::Frame& f :
           ActivityFrames(activities[s % 3], 4.0, 72 + s)) {
        if (!fleet->PushFrame(s, f).ok()) failures.fetch_add(1);
      }
    });
  }
  while (fleet->session_stats(0).windows < 1) std::this_thread::yield();
  ASSERT_TRUE(fleet->PromoteBundle(testing::SmallPretrainedBundle(824)).ok());
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(fleet->deployment_version(), 2u);
  for (size_t s = 0; s < kSessions; ++s) {
    EXPECT_GT(fleet->session_stats(s).predictions, 0u) << "session " << s;
  }
}

TEST(EdgeFleetStressTest, ConcurrentSessionsWithMidRunPromotion) {
  // The tentpole: many sessions classify concurrently while a bundle
  // promotion lands mid-run. Under -DMAGNETO_SANITIZE=thread this is the
  // race detector for the whole serving path (shared deployment, batcher,
  // per-session state, copy-on-swap).
  constexpr size_t kSessions = 8;
  FleetOptions options;
  options.max_batch = 8;
  options.enable_smoothing = true;
  options.smoother.window = 3;
  options.enable_journal = true;
  auto fleet = EdgeFleet::Create(testing::SmallPretrainedBundle(808),
                                 kSessions, options)
                   .value();

  const sensors::ActivityId activities[] = {sensors::kStill, sensors::kWalk,
                                            sensors::kRun};
  std::atomic<int> failures{0};
  std::atomic<size_t> sessions_done{0};
  std::vector<std::thread> threads;
  for (size_t s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      std::vector<sensors::Frame> frames =
          ActivityFrames(activities[s % 3], 4.0, 50 + s);
      for (const sensors::Frame& f : frames) {
        if (!fleet->PushFrame(s, f).ok()) failures.fetch_add(1);
      }
      sessions_done.fetch_add(1);
    });
  }
  // Promote once a few sessions are underway, well before they finish.
  while (sessions_done.load() == 0 && fleet->session_stats(0).windows < 1) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(fleet->PromoteBundle(testing::SmallPretrainedBundle(809)).ok());
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(fleet->deployment_version(), 2u);
  for (size_t s = 0; s < kSessions; ++s) {
    EXPECT_EQ(fleet->session_stats(s).frames, 480u) << "session " << s;
    EXPECT_GT(fleet->session_stats(s).predictions, 0u) << "session " << s;
    EXPECT_TRUE(fleet->last_prediction(s).has_value()) << "session " << s;
  }
  // The fleet survives a second promotion after the storm.
  EXPECT_TRUE(fleet->PromoteBundle(fleet->ToBundle()).ok());
  EXPECT_EQ(fleet->deployment_version(), 3u);
}

}  // namespace
}  // namespace magneto::platform
