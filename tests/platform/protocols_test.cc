#include "platform/protocols.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "platform/privacy_auditor.h"
#include "testing/test_helpers.h"

namespace magneto::platform {
namespace {

class ProtocolsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    server_ = new CloudServer(testing::SmallCloudConfig());
    ASSERT_TRUE(server_
                    ->Pretrain(testing::SmallCorpus(501),
                               sensors::ActivityRegistry::BaseActivities())
                    .ok());
    stream_ = new std::vector<sensors::LabeledRecording>(
        testing::SmallCorpus(502, 1, 4.0));
  }
  static void TearDownTestSuite() {
    delete server_;
    delete stream_;
  }

  static CloudServer* server_;
  static std::vector<sensors::LabeledRecording>* stream_;
};

CloudServer* ProtocolsTest::server_ = nullptr;
std::vector<sensors::LabeledRecording>* ProtocolsTest::stream_ = nullptr;

TEST_F(ProtocolsTest, ServerLifecycle) {
  CloudServer fresh(testing::SmallCloudConfig());
  EXPECT_FALSE(fresh.pretrained());
  EXPECT_EQ(fresh.ServeBundleBytes().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(fresh.RemoteInfer(std::vector<float>(80, 0.0f)).ok());
  EXPECT_TRUE(server_->pretrained());
  EXPECT_GT(server_->ServeBundleBytes().value().size(), 1000u);
}

TEST_F(ProtocolsTest, EdgeProtocolUplinksZeroUserBytes) {
  NetworkLink link(50.0, 10.0);
  EdgeProtocol protocol(server_, &link);
  auto metrics = protocol.Run(*stream_);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(metrics.value().uplink_user_bytes, 0u);
  EXPECT_GT(metrics.value().windows, 0u);
  EXPECT_GT(metrics.value().downlink_bytes, 0u);  // the one-time bundle
  PrivacyAuditor auditor(&link);
  EXPECT_TRUE(auditor.Verify().ok());
}

TEST_F(ProtocolsTest, CloudProtocolLeaksUserData) {
  NetworkLink link(50.0, 10.0);
  // Fresh deserialised pipeline stands in for the device's preprocessing.
  auto bundle = core::ModelBundle::FromString(
      server_->ServeBundleBytes().value());
  ASSERT_TRUE(bundle.ok());
  CloudProtocol protocol(server_, &link);
  auto metrics = protocol.Run(*stream_, bundle.value().pipeline);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_GT(metrics.value().uplink_user_bytes, 0u);
  // Exactly one 80-float feature vector per window.
  EXPECT_EQ(metrics.value().uplink_user_bytes,
            metrics.value().windows * 80 * sizeof(float));
  PrivacyAuditor auditor(&link);
  EXPECT_EQ(auditor.Verify().code(), StatusCode::kPermissionDenied);
}

TEST_F(ProtocolsTest, EdgeBeatsCloudOnPerWindowLatency) {
  // Figure 1's headline: once provisioned, edge inference avoids the
  // per-window RTT entirely.
  NetworkLink cloud_link(50.0, 10.0);
  NetworkLink edge_link(50.0, 10.0);
  auto bundle = core::ModelBundle::FromString(
      server_->ServeBundleBytes().value());
  ASSERT_TRUE(bundle.ok());

  auto cloud = CloudProtocol(server_, &cloud_link)
                   .Run(*stream_, bundle.value().pipeline);
  auto edge = EdgeProtocol(server_, &edge_link).Run(*stream_);
  ASSERT_TRUE(cloud.ok());
  ASSERT_TRUE(edge.ok());
  EXPECT_LT(edge.value().mean_window_latency_s,
            cloud.value().mean_window_latency_s);
  // The cloud loop pays at least the full RTT per window (50 ms here).
  EXPECT_GE(cloud.value().mean_window_latency_s, 0.05);
  // Local inference is the paper's "few milliseconds".
  EXPECT_LT(edge.value().mean_window_latency_s, 0.05);
}

TEST_F(ProtocolsTest, SameModelSameAccuracy) {
  // Both protocols serve the same weights; accuracy must agree.
  NetworkLink link1(50.0, 10.0), link2(50.0, 10.0);
  auto bundle = core::ModelBundle::FromString(
      server_->ServeBundleBytes().value());
  ASSERT_TRUE(bundle.ok());
  auto cloud = CloudProtocol(server_, &link1)
                   .Run(*stream_, bundle.value().pipeline);
  auto edge = EdgeProtocol(server_, &link2).Run(*stream_);
  ASSERT_TRUE(cloud.ok());
  ASSERT_TRUE(edge.ok());
  EXPECT_NEAR(cloud.value().accuracy, edge.value().accuracy, 1e-9);
  EXPECT_EQ(cloud.value().windows, edge.value().windows);
}

TEST_F(ProtocolsTest, RawUplinkCostsMoreThanFeatureUplink) {
  NetworkLink features_link(50.0, 10.0);
  NetworkLink raw_link(50.0, 10.0);
  auto bundle = core::ModelBundle::FromString(
      server_->ServeBundleBytes().value());
  ASSERT_TRUE(bundle.ok());
  auto features = CloudProtocol(server_, &features_link)
                      .Run(*stream_, bundle.value().pipeline, false);
  auto raw = CloudProtocol(server_, &raw_link)
                 .Run(*stream_, bundle.value().pipeline, true);
  ASSERT_TRUE(features.ok());
  ASSERT_TRUE(raw.ok());
  EXPECT_GT(raw.value().uplink_user_bytes,
            features.value().uplink_user_bytes * 5);
}

TEST_F(ProtocolsTest, EnergyAccountingSplitsCpuAndRadio) {
  NetworkLink cloud_link(50.0, 10.0);
  NetworkLink edge_link(50.0, 10.0);
  auto bundle = core::ModelBundle::FromString(
      server_->ServeBundleBytes().value());
  ASSERT_TRUE(bundle.ok());
  auto cloud = CloudProtocol(server_, &cloud_link)
                   .Run(*stream_, bundle.value().pipeline);
  auto edge = EdgeProtocol(server_, &edge_link).Run(*stream_);
  ASSERT_TRUE(cloud.ok());
  ASSERT_TRUE(edge.ok());

  // Cloud protocol: energy dominated by radio time (RTT per window).
  EXPECT_GT(cloud.value().radio_joules, 0.0);
  EXPECT_GT(cloud.value().network_seconds, 1.0);  // 60 windows x >= 50 ms RTT
  EXPECT_GT(cloud.value().radio_joules, cloud.value().cpu_joules);

  // Edge protocol: tiny one-time radio cost, the rest is local compute.
  EXPECT_GT(edge.value().cpu_joules, 0.0);
  EXPECT_LT(edge.value().network_seconds, 0.5);
  EXPECT_DOUBLE_EQ(edge.value().total_joules(),
                   edge.value().cpu_joules + edge.value().radio_joules);
  // And the edge total is far below the cloud total.
  EXPECT_LT(edge.value().total_joules(), cloud.value().total_joules() / 5);
}

TEST_F(ProtocolsTest, EdgeDeviceProvisionRejectsCorruptBundle) {
  std::string bytes = server_->ServeBundleBytes().value();
  bytes[bytes.size() / 2] ^= 1;
  EXPECT_FALSE(EdgeDevice::Provision(bytes, core::IncrementalOptions{}).ok());
}

TEST_F(ProtocolsTest, ProvisionedDeviceReportsBundleSize) {
  const std::string bytes = server_->ServeBundleBytes().value();
  auto device = EdgeDevice::Provision(bytes, core::IncrementalOptions{});
  ASSERT_TRUE(device.ok());
  EXPECT_EQ(device.value().provisioned_bytes(), bytes.size());
  EXPECT_EQ(device.value().runtime().model().registry().size(), 5u);
}

TEST_F(ProtocolsTest, ServeQuantizedBundleIsWireV3AndSmaller) {
  const std::string fp32 = server_->ServeBundleBytes().value();
  auto quant = server_->ServeQuantizedBundleBytes();
  ASSERT_TRUE(quant.ok()) << quant.status();
  EXPECT_LT(quant.value().size(), fp32.size() / 2);
  auto bundle = core::ModelBundle::FromString(quant.value());
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  EXPECT_EQ(bundle.value().wire_version, core::kBundleWireV3);
  EXPECT_TRUE(bundle.value().classifier.quantized());
  // Lazily cached: a second call serves the identical bytes.
  EXPECT_EQ(server_->ServeQuantizedBundleBytes().value(), quant.value());
}

// The quantized-vs-fp32 agreement scenario: both protocols classify the same
// synthetic stream; the int8 bundle must cost a fraction of the downlink
// bytes (the privacy auditor reads it off the link) and stay within the
// paper-replication accuracy tolerance of the fp32 deployment.
TEST_F(ProtocolsTest, QuantizedEdgeProtocolShrinksDownlinkAndAgrees) {
  NetworkLink fp_link(50.0, 10.0);
  NetworkLink q_link(50.0, 10.0);
  EdgeProtocol fp32(server_, &fp_link);
  EdgeProtocol quant(server_, &q_link, /*quantized_bundle=*/true);
  auto m_fp = fp32.Run(*stream_);
  ASSERT_TRUE(m_fp.ok()) << m_fp.status();
  auto m_q = quant.Run(*stream_);
  ASSERT_TRUE(m_q.ok()) << m_q.status();

  EXPECT_EQ(m_q.value().protocol, "edge(int8)");
  EXPECT_EQ(m_q.value().uplink_user_bytes, 0u);
  EXPECT_TRUE(PrivacyAuditor(&q_link).Verify().ok());

  const size_t fp_bytes = PrivacyAuditor(&fp_link).BundleBytesDownlinked();
  const size_t q_bytes = PrivacyAuditor(&q_link).BundleBytesDownlinked();
  ASSERT_GT(fp_bytes, 0u);
  ASSERT_GT(q_bytes, 0u);
  EXPECT_LT(q_bytes, fp_bytes / 2);  // bench_quant pins ~4x at paper scale

  EXPECT_EQ(m_q.value().windows, m_fp.value().windows);
  EXPECT_NEAR(m_q.value().accuracy, m_fp.value().accuracy, 0.05);
}

// Regression: CloudProtocol::Run never timed the device-side preprocessing,
// so the cloud column of the energy comparison reported cpu_joules == 0 — a
// free lunch for the architecture the paper argues against.
TEST_F(ProtocolsTest, CloudProtocolAccountsPreprocessCompute) {
  NetworkLink link(50.0, 10.0);
  auto bundle = core::ModelBundle::FromString(
      server_->ServeBundleBytes().value());
  ASSERT_TRUE(bundle.ok());
  auto metrics = CloudProtocol(server_, &link)
                     .Run(*stream_, bundle.value().pipeline);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_GT(metrics.value().compute_seconds, 0.0);
  EXPECT_GT(metrics.value().cpu_joules, 0.0);
  // Compute shows up in the end-to-end latency too, not just the energy.
  EXPECT_GE(metrics.value().total_latency_s, metrics.value().compute_seconds);
}

// ProtocolMetrics invariants when one link is reused across runs WITHOUT
// Reset(): byte counters read the link's cumulative ledger, so run k reports
// the sum of runs 1..k — exactly (documented in protocols.h).
TEST_F(ProtocolsTest, ByteCountersAccumulateAcrossRunsWithoutReset) {
  NetworkLink link(50.0, 10.0);
  auto bundle = core::ModelBundle::FromString(
      server_->ServeBundleBytes().value());
  ASSERT_TRUE(bundle.ok());
  CloudProtocol protocol(server_, &link);
  auto first = protocol.Run(*stream_, bundle.value().pipeline);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().uplink_user_bytes,
            link.TotalBytes(Direction::kUplink, PayloadKind::kUserData));

  auto second = protocol.Run(*stream_, bundle.value().pipeline);
  ASSERT_TRUE(second.ok());
  // Deterministic stream, same run: the ledger doubles exactly.
  EXPECT_EQ(second.value().uplink_user_bytes,
            2 * first.value().uplink_user_bytes);
  EXPECT_EQ(second.value().downlink_bytes, 2 * first.value().downlink_bytes);
  EXPECT_EQ(second.value().uplink_user_bytes,
            link.TotalBytes(Direction::kUplink, PayloadKind::kUserData));

  // After Reset() the next run reports single-run numbers again.
  link.Reset();
  auto third = protocol.Run(*stream_, bundle.value().pipeline);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value().uplink_user_bytes, first.value().uplink_user_bytes);
}

// Many devices provisioning and classifying concurrently against ONE shared
// CloudServer: each thread owns its link and protocol, the server's bundle
// caches and model are shared. Run under TSan via check.sh; the fp32/int8
// split makes half the threads race the quantized-cache build.
TEST_F(ProtocolsTest, MultiDeviceConcurrentEdgeProtocolRuns) {
  constexpr size_t kDevices = 6;
  std::vector<Result<ProtocolMetrics>> results(
      kDevices, Status::Internal("not run"));
  std::vector<std::thread> devices;
  for (size_t d = 0; d < kDevices; ++d) {
    devices.emplace_back([&, d] {
      NetworkLink link(50.0, 10.0);
      EdgeProtocol protocol(server_, &link, /*quantized_bundle=*/d % 2 == 1);
      results[d] = protocol.Run(*stream_);
    });
  }
  for (std::thread& t : devices) t.join();

  ASSERT_TRUE(results[0].ok()) << results[0].status();
  const ProtocolMetrics& fp32 = results[0].value();
  for (size_t d = 1; d < kDevices; ++d) {
    ASSERT_TRUE(results[d].ok()) << "device " << d << ": "
                                 << results[d].status();
    const ProtocolMetrics& m = results[d].value();
    EXPECT_EQ(m.windows, fp32.windows);
    EXPECT_EQ(m.uplink_user_bytes, 0u);
    if (d % 2 == 0) {
      // Same protocol, same model, independent links: identical accuracy.
      EXPECT_NEAR(m.accuracy, fp32.accuracy, 1e-12);
    } else {
      EXPECT_NEAR(m.accuracy, fp32.accuracy, 0.05);  // int8 tolerance
    }
  }
}

}  // namespace
}  // namespace magneto::platform
