#include "platform/privacy_auditor.h"

#include <gtest/gtest.h>

namespace magneto::platform {
namespace {

TEST(PrivacyAuditorTest, CleanLinkPasses) {
  NetworkLink link(50.0, 10.0);
  link.Transfer(Direction::kDownlink, PayloadKind::kModelArtifact, 100000);
  link.Transfer(Direction::kDownlink, PayloadKind::kUserData, 500);
  link.Transfer(Direction::kUplink, PayloadKind::kControl, 32);
  PrivacyAuditor auditor(&link);
  EXPECT_EQ(auditor.UserBytesUplinked(), 0u);
  EXPECT_TRUE(auditor.Verify().ok());
  EXPECT_NE(auditor.Report().find("PASS"), std::string::npos);
}

TEST(PrivacyAuditorTest, UplinkUserDataIsViolation) {
  NetworkLink link(50.0, 10.0);
  link.Transfer(Direction::kUplink, PayloadKind::kUserData, 320);
  PrivacyAuditor auditor(&link);
  EXPECT_EQ(auditor.UserBytesUplinked(), 320u);
  Status status = auditor.Verify();
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(status.message().find("320"), std::string::npos);
  EXPECT_NE(auditor.Report().find("VIOLATION"), std::string::npos);
}

TEST(PrivacyAuditorTest, Definition1AllowsCloudToEdgePulls) {
  // "it is less restrict to pull data from Cloud to Edge" — downlink user
  // data (e.g. open datasets) is not a violation.
  NetworkLink link(50.0, 10.0);
  link.Transfer(Direction::kDownlink, PayloadKind::kUserData, 1 << 20);
  PrivacyAuditor auditor(&link);
  EXPECT_TRUE(auditor.Verify().ok());
}

TEST(PrivacyAuditorTest, ModelUplinkIsNotUserData) {
  // Uplinking *model* bytes (e.g. federated-style gradients are out of scope
  // here, but a control ack is fine) does not trip the user-data rule.
  NetworkLink link(50.0, 10.0);
  link.Transfer(Direction::kUplink, PayloadKind::kModelArtifact, 1024);
  PrivacyAuditor auditor(&link);
  EXPECT_TRUE(auditor.Verify().ok());
}

TEST(PrivacyAuditorTest, ReportTabulatesAllKinds) {
  NetworkLink link(10.0, 10.0);
  link.Transfer(Direction::kUplink, PayloadKind::kUserData, 11);
  link.Transfer(Direction::kUplink, PayloadKind::kControl, 22);
  link.Transfer(Direction::kDownlink, PayloadKind::kResult, 33);
  const std::string report = PrivacyAuditor(&link).Report();
  EXPECT_NE(report.find("user_data=11"), std::string::npos);
  EXPECT_NE(report.find("control=22"), std::string::npos);
  EXPECT_NE(report.find("result=33"), std::string::npos);
}

}  // namespace
}  // namespace magneto::platform
