#include "platform/cloud_control_plane.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/model_bundle.h"
#include "testing/test_helpers.h"

namespace magneto::platform {
namespace {

class CloudControlPlaneTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    server_ = new CloudServer(testing::SmallCloudConfig());
    ASSERT_TRUE(server_
                    ->Pretrain(testing::SmallCorpus(701),
                               sensors::ActivityRegistry::BaseActivities())
                    .ok());
  }
  static void TearDownTestSuite() { delete server_; }

  /// Small but non-trivial traffic model: lossy links, churn, both
  /// encodings. 200 devices keeps a test under a second.
  static FleetSpec SmallFleet(size_t devices = 200) {
    FleetSpec spec;
    spec.num_devices = devices;
    spec.seed = 5;
    spec.mean_arrival_s = 0.5;
    spec.faulty_fraction = 0.2;
    spec.drop_rate = 0.2;
    spec.corrupt_rate = 0.05;
    spec.churn_fraction = 0.3;
    spec.decode_check_every = 64;
    return spec;
  }

  static CloudServer* server_;
};

CloudServer* CloudControlPlaneTest::server_ = nullptr;

TEST_F(CloudControlPlaneTest, RegisterTenantPublishesBothEncodings) {
  CloudControlPlane plane;
  auto tenant = plane.RegisterTenant("acme", *server_);
  ASSERT_TRUE(tenant.ok()) << tenant.status();
  EXPECT_EQ(plane.NumTenants(), 1u);
  EXPECT_EQ(plane.LatestVersion(tenant.value()).value(), 1u);

  auto artifact = plane.Artifact(tenant.value(), 1);
  ASSERT_TRUE(artifact.ok());
  auto fp32 = core::ModelBundle::FromString(artifact.value()->fp32_bytes);
  auto int8 = core::ModelBundle::FromString(artifact.value()->int8_bytes);
  ASSERT_TRUE(fp32.ok());
  ASSERT_TRUE(int8.ok());
  EXPECT_EQ(fp32.value().wire_version, core::kBundleWireV2);
  EXPECT_EQ(int8.value().wire_version, core::kBundleWireV3);
  EXPECT_LT(artifact.value()->int8_bytes.size(),
            artifact.value()->fp32_bytes.size() / 2);

  EXPECT_EQ(plane.Artifact(tenant.value(), 2).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(plane.Artifact(99, 1).status().code(), StatusCode::kNotFound);
}

TEST_F(CloudControlPlaneTest, PublishVersionBytesValidatesWireVersion) {
  CloudControlPlane plane;
  auto tenant = plane.RegisterTenant("acme", *server_);
  ASSERT_TRUE(tenant.ok());
  auto artifact = plane.Artifact(tenant.value(), 1);
  ASSERT_TRUE(artifact.ok());

  auto v2 = plane.PublishVersionBytes(tenant.value(),
                                      artifact.value()->fp32_bytes);
  ASSERT_TRUE(v2.ok()) << v2.status();
  EXPECT_EQ(v2.value(), 2u);
  EXPECT_EQ(plane.LatestVersion(tenant.value()).value(), 2u);

  // An int8 wire-v3 payload is not a publishable source encoding.
  EXPECT_EQ(plane
                .PublishVersionBytes(tenant.value(),
                                     artifact.value()->int8_bytes)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(plane.PublishVersionBytes(tenant.value(), "garbage").ok());
}

TEST_F(CloudControlPlaneTest, ProvisionFleetInstallsChurnsAndResumes) {
  CloudControlPlane plane;
  auto tenant = plane.RegisterTenant("acme", *server_);
  ASSERT_TRUE(tenant.ok());
  const FleetSpec spec = SmallFleet();

  auto fleet = plane.ProvisionFleet(tenant.value(), spec);
  ASSERT_TRUE(fleet.ok()) << fleet.status();
  const FleetReport& report = fleet.value();
  EXPECT_EQ(report.devices, spec.num_devices);
  EXPECT_EQ(report.provisioned, spec.num_devices);  // retries absorb faults
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.fp32_devices + report.int8_devices, report.provisioned);
  EXPECT_GT(report.int8_devices, 0u);
  EXPECT_GT(report.fp32_devices, 0u);
  // ~30% churners must have disconnected and resumed mid-bundle.
  EXPECT_GT(report.churned_devices, spec.num_devices / 10);
  EXPECT_GE(report.resumed_sessions, report.churned_devices);
  EXPECT_GT(report.wire_bytes, 0u);

  // The completion curve covers every installed device and is sorted.
  ASSERT_EQ(report.completion_sorted_s.size(), report.provisioned);
  EXPECT_TRUE(std::is_sorted(report.completion_sorted_s.begin(),
                             report.completion_sorted_s.end()));
  EXPECT_LE(report.CompletionQuantile(0.5), report.CompletionQuantile(0.99));

  EXPECT_EQ(plane.DeviceCount(tenant.value()).value(), spec.num_devices);
  EXPECT_EQ(plane.InstalledVersion(tenant.value(), 0).value(), 1u);
  auto counts = plane.VersionCounts(tenant.value());
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ(counts.value().at(1), spec.num_devices);
}

TEST_F(CloudControlPlaneTest, FleetRunsAreDeterministicAcrossWorkerCounts) {
  const FleetSpec spec = SmallFleet(150);
  FleetReport reports[2];
  const size_t workers[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    CloudControlPlane::Options options;
    options.provision_workers = workers[i];
    options.num_shards = i == 0 ? 1 : 16;  // sharding must not matter either
    CloudControlPlane plane(options);
    auto tenant = plane.RegisterTenant("acme", *server_);
    ASSERT_TRUE(tenant.ok());
    auto fleet = plane.ProvisionFleet(tenant.value(), spec);
    ASSERT_TRUE(fleet.ok()) << fleet.status();
    reports[i] = std::move(fleet).value();
  }
  EXPECT_EQ(reports[0].provisioned, reports[1].provisioned);
  EXPECT_EQ(reports[0].failed, reports[1].failed);
  EXPECT_EQ(reports[0].churned_devices, reports[1].churned_devices);
  EXPECT_EQ(reports[0].resumed_sessions, reports[1].resumed_sessions);
  EXPECT_EQ(reports[0].fp32_devices, reports[1].fp32_devices);
  EXPECT_EQ(reports[0].wire_bytes, reports[1].wire_bytes);
  // Bit-stable simulated completion times, not just equal counts.
  EXPECT_EQ(reports[0].completion_sorted_s, reports[1].completion_sorted_s);
}

TEST_F(CloudControlPlaneTest, StagedRolloutCompletesWithVersionSkew) {
  CloudControlPlane plane;
  auto tenant = plane.RegisterTenant("acme", *server_);
  ASSERT_TRUE(tenant.ok());
  const FleetSpec spec = SmallFleet(300);
  ASSERT_TRUE(plane.ProvisionFleet(tenant.value(), spec).ok());
  auto artifact = plane.Artifact(tenant.value(), 1);
  ASSERT_TRUE(artifact.ok());
  auto v2 = plane.PublishVersionBytes(tenant.value(),
                                      artifact.value()->fp32_bytes);
  ASSERT_TRUE(v2.ok());

  RolloutPolicy policy;
  policy.stages = {0.1, 0.5, 1.0};
  auto rollout = plane.RunRollout(tenant.value(), v2.value(), policy, spec);
  ASSERT_TRUE(rollout.ok()) << rollout.status();
  const RolloutReport& report = rollout.value();
  EXPECT_EQ(report.state, RolloutState::kCompleted);
  ASSERT_EQ(report.stage_records.size(), 3u);

  // Stage 1 starts on an all-old fleet; later stages see the skewed mix.
  EXPECT_EQ(report.stage_records[0].skew_new_before, 0u);
  EXPECT_EQ(report.stage_records[0].skew_old_before, spec.num_devices);
  EXPECT_GT(report.stage_records[1].skew_new_before, 0u);
  EXPECT_GT(report.stage_records[1].skew_old_before, 0u);

  EXPECT_EQ(report.devices_updated, spec.num_devices);
  EXPECT_EQ(report.devices_failed, 0u);
  auto counts = plane.VersionCounts(tenant.value());
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ(counts.value().at(v2.value()), spec.num_devices);
}

TEST_F(CloudControlPlaneTest, RolloutHaltsWhenStageFailureRateSpikes) {
  // Tight budgets: 2 attempts per chunk, no reconnects, so a hostile link
  // actually fails devices instead of being absorbed by retries.
  CloudControlPlane::Options options;
  options.transport.max_attempts_per_chunk = 2;
  options.max_reconnects = 0;
  CloudControlPlane plane(options);
  auto tenant = plane.RegisterTenant("acme", *server_);
  ASSERT_TRUE(tenant.ok());

  FleetSpec clean = SmallFleet(120);
  clean.faulty_fraction = 0.0;
  clean.churn_fraction = 0.0;
  ASSERT_TRUE(plane.ProvisionFleet(tenant.value(), clean).ok());
  auto artifact = plane.Artifact(tenant.value(), 1);
  ASSERT_TRUE(artifact.ok());
  auto v2 = plane.PublishVersionBytes(tenant.value(),
                                      artifact.value()->fp32_bytes);
  ASSERT_TRUE(v2.ok());

  FleetSpec hostile = clean;
  hostile.faulty_fraction = 1.0;
  hostile.drop_rate = 0.8;
  RolloutPolicy policy;
  policy.stages = {0.25, 1.0};
  policy.halt_failure_rate = 0.5;
  auto rollout = plane.RunRollout(tenant.value(), v2.value(), policy, hostile);
  ASSERT_TRUE(rollout.ok()) << rollout.status();
  EXPECT_EQ(rollout.value().state, RolloutState::kHalted);
  EXPECT_LT(rollout.value().stage_records.size(), policy.stages.size());
  EXPECT_GT(rollout.value().devices_failed, 0u);

  // The halted fleet keeps serving the old version — mixed versions are a
  // steady state, not an error.
  auto counts = plane.VersionCounts(tenant.value());
  ASSERT_TRUE(counts.ok());
  EXPECT_GT(counts.value().at(1), 0u);
}

TEST_F(CloudControlPlaneTest, PinnedDevicesAreNeverMovedByRollouts) {
  CloudControlPlane plane;
  auto tenant = plane.RegisterTenant("acme", *server_);
  ASSERT_TRUE(tenant.ok());
  FleetSpec spec = SmallFleet(80);
  spec.faulty_fraction = 0.0;
  spec.churn_fraction = 0.0;
  ASSERT_TRUE(plane.ProvisionFleet(tenant.value(), spec).ok());
  auto artifact = plane.Artifact(tenant.value(), 1);
  ASSERT_TRUE(artifact.ok());
  auto v2 = plane.PublishVersionBytes(tenant.value(),
                                      artifact.value()->fp32_bytes);
  ASSERT_TRUE(v2.ok());

  ASSERT_TRUE(plane.PinDevice(tenant.value(), 7, 1).ok());
  EXPECT_EQ(plane.PinDevice(tenant.value(), 7, 99).code(),
            StatusCode::kNotFound);

  RolloutPolicy policy;
  policy.stages = {1.0};
  auto rollout = plane.RunRollout(tenant.value(), v2.value(), policy, spec);
  ASSERT_TRUE(rollout.ok());
  EXPECT_EQ(rollout.value().devices_pinned, 1u);
  EXPECT_EQ(plane.InstalledVersion(tenant.value(), 7).value(), 1u);
  EXPECT_EQ(plane.InstalledVersion(tenant.value(), 8).value(), v2.value());

  // Unpin and re-run: the device now joins the rollout.
  ASSERT_TRUE(plane.PinDevice(tenant.value(), 7, 0).ok());
  auto again = plane.RunRollout(tenant.value(), v2.value(), policy, spec);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(plane.InstalledVersion(tenant.value(), 7).value(), v2.value());
}

TEST_F(CloudControlPlaneTest, ReportsErrorsForBadInputs) {
  CloudControlPlane plane;
  EXPECT_EQ(plane.LatestVersion(0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(plane.ProvisionFleet(0, FleetSpec{}).status().code(),
            StatusCode::kNotFound);

  auto tenant = plane.RegisterTenant("acme", *server_);
  ASSERT_TRUE(tenant.ok());
  FleetSpec empty;
  empty.num_devices = 0;
  EXPECT_EQ(plane.ProvisionFleet(tenant.value(), empty).status().code(),
            StatusCode::kInvalidArgument);

  // Rollout needs a provisioned fleet and sane stages.
  EXPECT_EQ(plane.RunRollout(tenant.value(), 1, RolloutPolicy{}, FleetSpec{})
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(plane.ProvisionFleet(tenant.value(), SmallFleet(40)).ok());
  RolloutPolicy bad;
  bad.stages = {0.5, 0.25};
  EXPECT_EQ(plane.RunRollout(tenant.value(), 1, bad, SmallFleet(40))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(plane.RunRollout(tenant.value(), 9, RolloutPolicy{}, SmallFleet(40))
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(plane.InstalledVersion(tenant.value(), 12345).status().code(),
            StatusCode::kNotFound);
}

// Registry and device-table locking under concurrent publishers, readers,
// and a provisioning run on a second tenant. Run under TSan via check.sh.
TEST_F(CloudControlPlaneTest, ConcurrentPublishReadAndProvision) {
  CloudControlPlane plane;
  auto tenant_a = plane.RegisterTenant("a", *server_);
  auto tenant_b = plane.RegisterTenant("b", *server_);
  ASSERT_TRUE(tenant_a.ok());
  ASSERT_TRUE(tenant_b.ok());
  const std::string fp32 =
      plane.Artifact(tenant_a.value(), 1).value()->fp32_bytes;

  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  // Two publishers on tenant A.
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < 3; ++i) {
        if (!plane.PublishVersionBytes(tenant_a.value(), fp32).ok()) ++errors;
      }
    });
  }
  // Two readers racing the publishers.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        auto latest = plane.LatestVersion(tenant_a.value());
        if (!latest.ok() || !plane.Artifact(tenant_a.value(), latest.value())
                                 .ok()) {
          ++errors;
        }
      }
    });
  }
  // A fleet run on tenant B, concurrent with tenant A's registry traffic.
  threads.emplace_back([&] {
    FleetSpec spec = SmallFleet(60);
    if (!plane.ProvisionFleet(tenant_b.value(), spec).ok()) ++errors;
  });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(plane.LatestVersion(tenant_a.value()).value(), 7u);  // 1 + 2x3
  EXPECT_EQ(plane.DeviceCount(tenant_b.value()).value(), 60u);
}

}  // namespace
}  // namespace magneto::platform
