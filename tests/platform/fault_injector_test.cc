#include "platform/fault_injector.h"

#include <gtest/gtest.h>

namespace magneto::platform {
namespace {

TEST(FaultInjectorTest, ZeroRatesNeverFault) {
  FaultInjector injector(FaultPolicy{});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(injector.Decide(4096).kind, FaultKind::kNone);
  }
}

TEST(FaultInjectorTest, CertainDropAlwaysDrops) {
  FaultPolicy policy;
  policy.drop_rate = 1.0;
  FaultInjector injector(policy);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.Decide(4096).kind, FaultKind::kDrop);
  }
}

TEST(FaultInjectorTest, SameSeedSameDecisionSequence) {
  FaultPolicy policy;
  policy.drop_rate = 0.2;
  policy.truncate_rate = 0.1;
  policy.bit_flip_rate = 0.1;
  policy.delay_rate = 0.1;
  policy.seed = 99;
  FaultInjector a(policy);
  FaultInjector b(policy);
  for (int i = 0; i < 500; ++i) {
    const FaultDecision da = a.Decide(1000 + i);
    const FaultDecision db = b.Decide(1000 + i);
    EXPECT_EQ(da.kind, db.kind);
    EXPECT_EQ(da.offset, db.offset);
    EXPECT_EQ(da.bit, db.bit);
    EXPECT_EQ(da.extra_seconds, db.extra_seconds);
  }
}

TEST(FaultInjectorTest, RatesRoughlyObserved) {
  FaultPolicy policy;
  policy.drop_rate = 0.25;
  policy.seed = 5;
  FaultInjector injector(policy);
  int drops = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (injector.Decide(128).kind == FaultKind::kDrop) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.25, 0.02);
}

TEST(FaultInjectorTest, ApplyDropReportsUndelivered) {
  std::string payload = "hello";
  FaultDecision decision;
  decision.kind = FaultKind::kDrop;
  EXPECT_FALSE(FaultInjector::Apply(decision, &payload));
}

TEST(FaultInjectorTest, ApplyTruncateShortens) {
  std::string payload(100, 'x');
  FaultDecision decision;
  decision.kind = FaultKind::kTruncate;
  decision.offset = 40;
  EXPECT_TRUE(FaultInjector::Apply(decision, &payload));
  EXPECT_EQ(payload.size(), 40u);
}

TEST(FaultInjectorTest, ApplyBitFlipChangesExactlyOneBit) {
  std::string payload(64, '\0');
  FaultDecision decision;
  decision.kind = FaultKind::kBitFlip;
  decision.offset = 10;
  decision.bit = 3;
  EXPECT_TRUE(FaultInjector::Apply(decision, &payload));
  EXPECT_EQ(payload[10], 0x08);
  for (size_t i = 0; i < payload.size(); ++i) {
    if (i != 10) EXPECT_EQ(payload[i], '\0');
  }
}

TEST(FaultInjectorTest, ApplyDelayLeavesPayloadIntact) {
  std::string payload = "intact";
  FaultDecision decision;
  decision.kind = FaultKind::kDelay;
  decision.extra_seconds = 0.5;
  EXPECT_TRUE(FaultInjector::Apply(decision, &payload));
  EXPECT_EQ(payload, "intact");
}

TEST(FaultInjectorDeathTest, RejectsInvalidRates) {
  FaultPolicy negative;
  negative.drop_rate = -0.1;
  EXPECT_DEATH(FaultInjector{negative}, "Check failed");
  FaultPolicy over;
  over.drop_rate = 0.8;
  over.truncate_rate = 0.4;
  EXPECT_DEATH(FaultInjector{over}, "Check failed");
}

}  // namespace
}  // namespace magneto::platform
