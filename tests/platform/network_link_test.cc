#include "platform/network_link.h"

#include <gtest/gtest.h>

namespace magneto::platform {
namespace {

TEST(NetworkLinkTest, TransferTimeModel) {
  NetworkLink link(100.0, 8.0);  // 100 ms RTT, 8 Mbit/s = 1 MB/s
  // 1 MB transfer: 50 ms one-way latency + 1 s serialisation.
  const double t = link.EstimateSeconds(1000000);
  EXPECT_NEAR(t, 0.05 + 1.0, 1e-9);
  // Zero bytes still pays latency.
  EXPECT_NEAR(link.EstimateSeconds(0), 0.05, 1e-12);
}

TEST(NetworkLinkTest, TransferRecordsLedger) {
  NetworkLink link(50.0, 10.0);
  link.Transfer(Direction::kUplink, PayloadKind::kUserData, 1000);
  link.Transfer(Direction::kUplink, PayloadKind::kControl, 64);
  link.Transfer(Direction::kDownlink, PayloadKind::kModelArtifact, 5000);

  EXPECT_EQ(link.records().size(), 3u);
  EXPECT_EQ(link.TotalBytes(Direction::kUplink), 1064u);
  EXPECT_EQ(link.TotalBytes(Direction::kDownlink), 5000u);
  EXPECT_EQ(link.TotalBytes(Direction::kUplink, PayloadKind::kUserData),
            1000u);
  EXPECT_EQ(link.TotalBytes(Direction::kDownlink, PayloadKind::kUserData),
            0u);
  EXPECT_GT(link.TotalSeconds(), 0.0);
}

TEST(NetworkLinkTest, ResetClearsLedger) {
  NetworkLink link(50.0, 10.0);
  link.Transfer(Direction::kUplink, PayloadKind::kUserData, 1000);
  link.Reset();
  EXPECT_TRUE(link.records().empty());
  EXPECT_EQ(link.TotalBytes(Direction::kUplink), 0u);
}

TEST(NetworkLinkTest, FasterLinkIsFaster) {
  NetworkLink slow(50.0, 1.0);
  NetworkLink fast(50.0, 100.0);
  EXPECT_GT(slow.EstimateSeconds(100000), fast.EstimateSeconds(100000));
}

TEST(NetworkLinkDeathTest, InvalidParametersAbort) {
  EXPECT_DEATH(NetworkLink(-1.0, 10.0), "Check failed");
  EXPECT_DEATH(NetworkLink(10.0, 0.0), "Check failed");
}

}  // namespace
}  // namespace magneto::platform
