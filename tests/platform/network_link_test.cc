#include "platform/network_link.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace magneto::platform {
namespace {

TEST(NetworkLinkTest, TransferTimeModel) {
  NetworkLink link(100.0, 8.0);  // 100 ms RTT, 8 Mbit/s = 1 MB/s
  // 1 MB transfer: 50 ms one-way latency + 1 s serialisation.
  const double t = link.EstimateSeconds(1000000);
  EXPECT_NEAR(t, 0.05 + 1.0, 1e-9);
  // Zero bytes still pays latency.
  EXPECT_NEAR(link.EstimateSeconds(0), 0.05, 1e-12);
}

TEST(NetworkLinkTest, TransferRecordsLedger) {
  NetworkLink link(50.0, 10.0);
  link.Transfer(Direction::kUplink, PayloadKind::kUserData, 1000);
  link.Transfer(Direction::kUplink, PayloadKind::kControl, 64);
  link.Transfer(Direction::kDownlink, PayloadKind::kModelArtifact, 5000);

  EXPECT_EQ(link.records().size(), 3u);
  EXPECT_EQ(link.TotalBytes(Direction::kUplink), 1064u);
  EXPECT_EQ(link.TotalBytes(Direction::kDownlink), 5000u);
  EXPECT_EQ(link.TotalBytes(Direction::kUplink, PayloadKind::kUserData),
            1000u);
  EXPECT_EQ(link.TotalBytes(Direction::kDownlink, PayloadKind::kUserData),
            0u);
  EXPECT_GT(link.TotalSeconds(), 0.0);
}

TEST(NetworkLinkTest, ResetClearsLedger) {
  NetworkLink link(50.0, 10.0);
  link.Transfer(Direction::kUplink, PayloadKind::kUserData, 1000);
  link.Reset();
  EXPECT_TRUE(link.records().empty());
  EXPECT_EQ(link.TotalBytes(Direction::kUplink), 0u);
}

TEST(NetworkLinkTest, FasterLinkIsFaster) {
  NetworkLink slow(50.0, 1.0);
  NetworkLink fast(50.0, 100.0);
  EXPECT_GT(slow.EstimateSeconds(100000), fast.EstimateSeconds(100000));
}

TEST(NetworkLinkTest, SendPayloadCleanLinkDeliversVerbatim) {
  NetworkLink link(100.0, 8.0);
  Delivery d = link.SendPayload(Direction::kDownlink,
                                PayloadKind::kModelArtifact, "hello world");
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.fault, FaultKind::kNone);
  EXPECT_EQ(d.payload, "hello world");
  EXPECT_NEAR(d.seconds, 0.05 + 11.0 * 8.0 / 8e6, 1e-12);
  ASSERT_EQ(link.records().size(), 1u);
  EXPECT_EQ(link.records()[0].bytes, 11u);
}

TEST(NetworkLinkTest, SendPayloadWithoutLatencyPaysSerializationOnly) {
  NetworkLink link(100.0, 8.0);
  Delivery d =
      link.SendPayload(Direction::kDownlink, PayloadKind::kModelArtifact,
                       std::string(1000, 'x'), /*pay_latency=*/false);
  EXPECT_NEAR(d.seconds, 1000.0 * 8.0 / 8e6, 1e-12);
}

TEST(NetworkLinkTest, SendPayloadAppliesFaultInjector) {
  NetworkLink link(50.0, 10.0);
  FaultPolicy policy;
  policy.drop_rate = 1.0;
  link.SetFaultInjector(std::make_unique<FaultInjector>(policy));
  Delivery d = link.SendPayload(Direction::kDownlink,
                                PayloadKind::kModelArtifact, "doomed");
  EXPECT_FALSE(d.delivered);
  EXPECT_EQ(d.fault, FaultKind::kDrop);
  EXPECT_TRUE(d.payload.empty());
  EXPECT_GT(d.seconds, 0.0);  // a dropped transfer still costs time
  // The sender put the bytes on the wire; the ledger records them.
  EXPECT_EQ(link.TotalBytes(Direction::kDownlink), 6u);

  link.SetFaultInjector(nullptr);  // back to a clean link
  EXPECT_TRUE(link
                  .SendPayload(Direction::kDownlink,
                               PayloadKind::kModelArtifact, "fine")
                  .delivered);
}

TEST(NetworkLinkDeathTest, InvalidParametersAbort) {
  EXPECT_DEATH(NetworkLink(-1.0, 10.0), "Check failed");
  EXPECT_DEATH(NetworkLink(10.0, 0.0), "Check failed");
}

}  // namespace
}  // namespace magneto::platform
