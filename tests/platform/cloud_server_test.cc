#include "platform/cloud_server.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/model_bundle.h"
#include "testing/test_helpers.h"

namespace magneto::platform {
namespace {

class CloudServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    server_ = new CloudServer(testing::SmallCloudConfig());
    ASSERT_TRUE(server_
                    ->Pretrain(testing::SmallCorpus(601),
                               sensors::ActivityRegistry::BaseActivities())
                    .ok());
  }
  static void TearDownTestSuite() { delete server_; }

  static CloudServer* server_;
};

CloudServer* CloudServerTest::server_ = nullptr;

TEST_F(CloudServerTest, AdoptBundleServesWithoutPretraining) {
  CloudServer adopted(core::CloudConfig{});
  EXPECT_FALSE(adopted.pretrained());
  ASSERT_TRUE(adopted.AdoptBundle(testing::SmallPretrainedBundle()).ok());
  EXPECT_TRUE(adopted.pretrained());
  EXPECT_GT(adopted.ServeBundleBytes().value().size(), 1000u);
  auto pred =
      adopted.RemoteInfer(std::vector<float>(80, 0.1f));
  EXPECT_TRUE(pred.ok()) << pred.status();
}

TEST_F(CloudServerTest, AdoptBundleRejectsDoubleAdopt) {
  CloudServer adopted(core::CloudConfig{});
  ASSERT_TRUE(adopted.AdoptBundle(testing::SmallPretrainedBundle()).ok());
  EXPECT_EQ(adopted.AdoptBundle(testing::SmallPretrainedBundle()).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CloudServerTest, EncodeQuantizedBundleIsAPureWireV3Reencoding) {
  const std::string fp32 = server_->ServeBundleBytes().value();
  auto int8_a = CloudServer::EncodeQuantizedBundle(fp32);
  auto int8_b = CloudServer::EncodeQuantizedBundle(fp32);
  ASSERT_TRUE(int8_a.ok()) << int8_a.status();
  ASSERT_TRUE(int8_b.ok());
  EXPECT_EQ(int8_a.value(), int8_b.value());  // pure function of the bytes
  EXPECT_LT(int8_a.value().size(), fp32.size() / 2);
  auto decoded = core::ModelBundle::FromString(int8_a.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().wire_version, core::kBundleWireV3);
  EXPECT_FALSE(CloudServer::EncodeQuantizedBundle("garbage").ok());
}

// Regression: the lazy wire-v3 cache used to be an unguarded mutable string
// (first concurrent callers raced the build and could serve a torn copy).
// Now a std::once_flag serializes the build; run with TSan to pin it.
TEST_F(CloudServerTest, ConcurrentQuantizedServeBuildsOnceRaceFree) {
  CloudServer fresh(core::CloudConfig{});
  ASSERT_TRUE(fresh.AdoptBundle(testing::SmallPretrainedBundle()).ok());
  constexpr size_t kThreads = 8;
  std::vector<std::string> served(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fresh, &served, t] {
      auto bytes = fresh.ServeQuantizedBundleBytes();
      if (bytes.ok()) served[t] = std::move(bytes).value();
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_FALSE(served[0].empty());
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(served[t], served[0]) << "thread " << t << " saw torn bytes";
  }
}

// Regression: RemoteInfer used to route N threads through the shared
// EdgeModel's single embedding workspace (a data race on the scratch
// matrices). Now the forward pass runs through a thread-local workspace over
// the const model; concurrent calls must agree with the serial answer.
TEST_F(CloudServerTest, ConcurrentRemoteInferMatchesSerial) {
  std::vector<std::vector<float>> queries;
  for (size_t q = 0; q < 16; ++q) {
    queries.push_back(
        std::vector<float>(80, 0.01f * static_cast<float>(q + 1)));
  }
  std::vector<core::NamedPrediction> serial;
  for (const auto& query : queries) {
    serial.push_back(server_->RemoteInfer(query).value());
  }

  constexpr size_t kThreads = 8;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t round = 0; round < 25; ++round) {
        const size_t q = (t + round) % queries.size();
        auto pred = server_->RemoteInfer(queries[q]);
        if (!pred.ok() ||
            pred.value().prediction.activity !=
                serial[q].prediction.activity ||
            pred.value().prediction.distance !=
                serial[q].prediction.distance) {
          ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace magneto::platform
