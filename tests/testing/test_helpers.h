#ifndef MAGNETO_TESTS_TESTING_TEST_HELPERS_H_
#define MAGNETO_TESTS_TESTING_TEST_HELPERS_H_

#include <vector>

#include "core/cloud_initializer.h"
#include "core/model_bundle.h"
#include "sensors/signal_model.h"
#include "sensors/synthetic_generator.h"

namespace magneto::testing {

/// A deliberately small cloud configuration so a full pretrain fits in a
/// unit-test time budget (tiny backbone, few epochs, small support set).
inline core::CloudConfig SmallCloudConfig() {
  core::CloudConfig config;
  config.backbone_dims = {32, 16};
  config.train.epochs = 8;
  config.train.batch_size = 32;
  config.train.learning_rate = 2e-3;
  config.train.seed = 21;
  config.support_capacity = 12;
  config.seed = 31;
  return config;
}

/// Synthetic stand-in for the paper's initial corpus: `per_class` recordings
/// of `seconds` seconds for each of the five base activities.
inline std::vector<sensors::LabeledRecording> SmallCorpus(
    uint64_t seed, size_t per_class = 2, double seconds = 4.0) {
  sensors::SyntheticGenerator gen(seed);
  return gen.GenerateDataset(sensors::DefaultActivityLibrary(), per_class,
                             seconds);
}

/// Complete small pretrained bundle (pipeline + backbone + support + NCM).
inline core::ModelBundle SmallPretrainedBundle(uint64_t seed = 41) {
  core::CloudInitializer cloud(SmallCloudConfig());
  auto bundle = cloud.Initialize(SmallCorpus(seed),
                                 sensors::ActivityRegistry::BaseActivities());
  MAGNETO_CHECK(bundle.ok());
  return std::move(bundle).value();
}

}  // namespace magneto::testing

#endif  // MAGNETO_TESTS_TESTING_TEST_HELPERS_H_
