#include "preprocess/normalization.h"

#include <cmath>

#include <gtest/gtest.h>

namespace magneto::preprocess {
namespace {

sensors::FeatureDataset MakeData() {
  sensors::FeatureDataset ds;
  ds.Append({0.0f, 100.0f, 5.0f}, 0);
  ds.Append({2.0f, 200.0f, 5.0f}, 1);
  ds.Append({4.0f, 300.0f, 5.0f}, 0);
  ds.Append({6.0f, 400.0f, 5.0f}, 1);
  return ds;
}

TEST(NormalizerTest, ZScoreProducesZeroMeanUnitVar) {
  auto norm = Normalizer::Fit(NormalizationMethod::kZScore, MakeData());
  ASSERT_TRUE(norm.ok());
  auto out = norm.value().ApplyToDataset(MakeData());
  ASSERT_TRUE(out.ok());
  for (size_t j = 0; j < 2; ++j) {
    double mean = 0.0, var = 0.0;
    for (size_t i = 0; i < out.value().size(); ++i) {
      mean += out.value().Row(i)[j];
    }
    mean /= out.value().size();
    for (size_t i = 0; i < out.value().size(); ++i) {
      const double d = out.value().Row(i)[j] - mean;
      var += d * d;
    }
    var /= out.value().size();
    EXPECT_NEAR(mean, 0.0, 1e-5) << "dim " << j;
    EXPECT_NEAR(var, 1.0, 1e-4) << "dim " << j;
  }
}

TEST(NormalizerTest, ZScoreConstantDimensionMapsToZero) {
  auto norm = Normalizer::Fit(NormalizationMethod::kZScore, MakeData());
  ASSERT_TRUE(norm.ok());
  std::vector<float> row{3.0f, 250.0f, 5.0f};
  ASSERT_TRUE(norm.value().Apply(&row).ok());
  EXPECT_NEAR(row[2], 0.0f, 1e-6);  // constant 5 maps to 0
}

TEST(NormalizerTest, MinMaxMapsToUnitInterval) {
  auto norm = Normalizer::Fit(NormalizationMethod::kMinMax, MakeData());
  ASSERT_TRUE(norm.ok());
  auto out = norm.value().ApplyToDataset(MakeData());
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < out.value().size(); ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_GE(out.value().Row(i)[j], 0.0f);
      EXPECT_LE(out.value().Row(i)[j], 1.0f);
    }
  }
  // Extremes map to exactly 0 and 1.
  EXPECT_FLOAT_EQ(out.value().Row(0)[0], 0.0f);
  EXPECT_FLOAT_EQ(out.value().Row(3)[0], 1.0f);
}

TEST(NormalizerTest, NoneIsIdentity) {
  auto norm = Normalizer::Fit(NormalizationMethod::kNone, MakeData());
  ASSERT_TRUE(norm.ok());
  std::vector<float> row{42.0f, -1.0f, 3.0f};
  const std::vector<float> orig = row;
  ASSERT_TRUE(norm.value().Apply(&row).ok());
  EXPECT_EQ(row, orig);
}

TEST(NormalizerTest, FrozenStatsApplyToUnseenData) {
  // Edge data outside the fitted range must still use cloud statistics.
  auto norm = Normalizer::Fit(NormalizationMethod::kZScore, MakeData());
  ASSERT_TRUE(norm.ok());
  std::vector<float> row{8.0f, 500.0f, 5.0f};  // beyond the fit range
  ASSERT_TRUE(norm.value().Apply(&row).ok());
  // dim0: mean 3, std sqrt(5) -> (8-3)/sqrt(5)
  EXPECT_NEAR(row[0], (8.0 - 3.0) / std::sqrt(5.0), 1e-4);
}

TEST(NormalizerTest, DimMismatchRejected) {
  auto norm = Normalizer::Fit(NormalizationMethod::kZScore, MakeData());
  ASSERT_TRUE(norm.ok());
  std::vector<float> wrong{1.0f, 2.0f};
  EXPECT_EQ(norm.value().Apply(&wrong).code(), StatusCode::kInvalidArgument);
}

TEST(NormalizerTest, EmptyDatasetRejected) {
  sensors::FeatureDataset empty;
  EXPECT_FALSE(Normalizer::Fit(NormalizationMethod::kZScore, empty).ok());
}

TEST(NormalizerTest, SerializationRoundTrip) {
  auto norm = Normalizer::Fit(NormalizationMethod::kZScore, MakeData());
  ASSERT_TRUE(norm.ok());
  BinaryWriter w;
  norm.value().Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = Normalizer::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value() == norm.value());

  // Same transformation after the round trip.
  std::vector<float> a{1.0f, 150.0f, 5.0f};
  std::vector<float> b = a;
  ASSERT_TRUE(norm.value().Apply(&a).ok());
  ASSERT_TRUE(back.value().Apply(&b).ok());
  EXPECT_EQ(a, b);
}

TEST(NormalizerTest, DeserializeRejectsMismatchedVectors) {
  BinaryWriter w;
  w.WriteU8(1);  // kZScore
  w.WriteF32Vector({1.0f, 2.0f});
  w.WriteF32Vector({1.0f});
  BinaryReader r(w.buffer());
  EXPECT_FALSE(Normalizer::Deserialize(&r).ok());
}

}  // namespace
}  // namespace magneto::preprocess
