#include "preprocess/pipeline.h"

#include <gtest/gtest.h>

#include "sensors/signal_model.h"

namespace magneto::preprocess {
namespace {

std::vector<sensors::LabeledRecording> MakeCorpus(uint64_t seed,
                                                  size_t per_class = 2,
                                                  double seconds = 3.0) {
  sensors::SyntheticGenerator gen(seed);
  return gen.GenerateDataset(sensors::DefaultActivityLibrary(), per_class,
                             seconds);
}

TEST(PipelineTest, FitProducesNormalizedDataset) {
  Pipeline pipeline((PipelineConfig()));
  auto data = pipeline.Fit(MakeCorpus(1));
  ASSERT_TRUE(data.ok());
  // 5 classes x 2 recordings x 3 windows each (3 s @ 120-sample windows).
  EXPECT_EQ(data.value().size(), 30u);
  EXPECT_EQ(data.value().dim(), kNumFeatures);
  EXPECT_TRUE(pipeline.fitted());
}

TEST(PipelineTest, ProcessBeforeFitFails) {
  Pipeline pipeline((PipelineConfig()));
  sensors::SyntheticGenerator gen(2);
  sensors::Recording rec =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kWalk], 1.0);
  EXPECT_EQ(pipeline.Process(rec).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(pipeline.ProcessWindow(rec.samples).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(PipelineTest, NoNormalizationNeedsNoFit) {
  PipelineConfig config;
  config.normalization = NormalizationMethod::kNone;
  Pipeline pipeline(config);
  EXPECT_TRUE(pipeline.fitted());
  sensors::SyntheticGenerator gen(3);
  sensors::Recording rec =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kWalk], 2.0);
  auto windows = pipeline.Process(rec);
  ASSERT_TRUE(windows.ok());
  EXPECT_EQ(windows.value().size(), 2u);
}

TEST(PipelineTest, ProcessSegmentsPerConfig) {
  PipelineConfig config;
  config.segmentation.window_samples = 120;
  config.segmentation.stride = 60;  // 50% overlap
  Pipeline pipeline(config);
  ASSERT_TRUE(pipeline.Fit(MakeCorpus(4)).ok());
  sensors::SyntheticGenerator gen(5);
  sensors::Recording rec =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kRun], 3.0);
  auto windows = pipeline.Process(rec);
  ASSERT_TRUE(windows.ok());
  // 360 samples, stride 60 -> starts at 0..240 -> 5 windows.
  EXPECT_EQ(windows.value().size(), 5u);
  for (const auto& w : windows.value()) EXPECT_EQ(w.size(), kNumFeatures);
}

TEST(PipelineTest, ProcessWindowMatchesProcess) {
  Pipeline pipeline((PipelineConfig()));
  ASSERT_TRUE(pipeline.Fit(MakeCorpus(6)).ok());
  sensors::SyntheticGenerator gen(7);
  sensors::Recording rec =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kStill], 1.0);
  auto via_process = pipeline.Process(rec);
  ASSERT_TRUE(via_process.ok());
  ASSERT_EQ(via_process.value().size(), 1u);
  auto via_window = pipeline.ProcessWindow(rec.samples.RowSlice(0, 120));
  ASSERT_TRUE(via_window.ok());
  for (size_t j = 0; j < kNumFeatures; ++j) {
    EXPECT_FLOAT_EQ(via_process.value()[0][j], via_window.value()[j]);
  }
}

TEST(PipelineTest, ProcessLabeledKeepsLabels) {
  Pipeline pipeline((PipelineConfig()));
  ASSERT_TRUE(pipeline.Fit(MakeCorpus(8)).ok());
  auto corpus = MakeCorpus(9, 1, 2.0);
  auto data = pipeline.ProcessLabeled(corpus);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value().size(), 10u);  // 5 classes x 1 rec x 2 windows
  EXPECT_EQ(data.value().Classes().size(), 5u);
}

TEST(PipelineTest, FitOnEmptyCorpusFails) {
  Pipeline pipeline((PipelineConfig()));
  EXPECT_FALSE(pipeline.Fit({}).ok());
}

TEST(PipelineTest, FitOnTooShortRecordingsFails) {
  Pipeline pipeline((PipelineConfig()));
  sensors::SyntheticGenerator gen(10);
  std::vector<sensors::LabeledRecording> corpus{
      {gen.Generate(sensors::DefaultActivityLibrary()[sensors::kWalk], 0.5),
       sensors::kWalk}};  // 60 samples < 120-sample window
  EXPECT_FALSE(pipeline.Fit(corpus).ok());
}

TEST(PipelineTest, SerializationRoundTripPreservesBehaviour) {
  PipelineConfig config;
  config.denoise.method = DenoiseMethod::kLowPass;
  config.denoise.alpha = 0.4;
  config.segmentation.stride = 60;
  Pipeline pipeline(config);
  ASSERT_TRUE(pipeline.Fit(MakeCorpus(11)).ok());

  BinaryWriter w;
  pipeline.Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = Pipeline::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().fitted());
  EXPECT_EQ(back.value().config().segmentation.stride, 60u);

  sensors::SyntheticGenerator gen(12);
  sensors::Recording rec =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kEScooter], 2.0);
  auto a = pipeline.Process(rec);
  auto b = back.value().Process(rec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i], b.value()[i]) << "window " << i;
  }
}

TEST(PipelineTest, LinearTimeScaling) {
  // C4 sanity check (the full sweep lives in bench_preprocessing): doubling
  // the input roughly doubles the window count, never worse.
  Pipeline pipeline((PipelineConfig()));
  ASSERT_TRUE(pipeline.Fit(MakeCorpus(13)).ok());
  sensors::SyntheticGenerator gen(14);
  const auto& lib = sensors::DefaultActivityLibrary();
  sensors::Recording small = gen.Generate(lib.at(sensors::kWalk), 4.0);
  sensors::Recording big = gen.Generate(lib.at(sensors::kWalk), 8.0);
  EXPECT_EQ(pipeline.Process(small).value().size(), 4u);
  EXPECT_EQ(pipeline.Process(big).value().size(), 8u);
}

}  // namespace
}  // namespace magneto::preprocess
