#include "preprocess/segmentation.h"

#include <gtest/gtest.h>

namespace magneto::preprocess {
namespace {

Matrix Ramp(size_t rows, size_t cols) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t c = 0; c < cols; ++c) {
      m.At(i, c) = static_cast<float>(i);
    }
  }
  return m;
}

TEST(SegmentationTest, NonOverlappingWindows) {
  SegmentationConfig config;
  config.window_samples = 10;
  config.stride = 10;
  auto windows = Segment(Ramp(35, 3), config);
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows.value().size(), 3u);  // last 5 rows dropped
  EXPECT_FLOAT_EQ(windows.value()[0].At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(windows.value()[1].At(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(windows.value()[2].At(9, 0), 29.0f);
}

TEST(SegmentationTest, OverlappingWindows) {
  SegmentationConfig config;
  config.window_samples = 10;
  config.stride = 5;
  auto windows = Segment(Ramp(25, 1), config);
  ASSERT_TRUE(windows.ok());
  // starts at 0,5,10,15 -> 4 windows (start 20 would need rows to 29)
  ASSERT_EQ(windows.value().size(), 4u);
  EXPECT_FLOAT_EQ(windows.value()[3].At(0, 0), 15.0f);
}

TEST(SegmentationTest, ExactFit) {
  SegmentationConfig config;
  config.window_samples = 10;
  config.stride = 10;
  auto windows = Segment(Ramp(30, 1), config);
  ASSERT_TRUE(windows.ok());
  EXPECT_EQ(windows.value().size(), 3u);
}

TEST(SegmentationTest, TooShortRecordingYieldsNoWindows) {
  SegmentationConfig config;
  config.window_samples = 100;
  config.stride = 100;
  auto windows = Segment(Ramp(99, 2), config);
  ASSERT_TRUE(windows.ok());
  EXPECT_TRUE(windows.value().empty());
}

TEST(SegmentationTest, WindowContentsAreCopies) {
  SegmentationConfig config;
  config.window_samples = 5;
  config.stride = 5;
  Matrix data = Ramp(10, 2);
  auto windows = Segment(data, config);
  ASSERT_TRUE(windows.ok());
  data.At(0, 0) = 999.0f;
  EXPECT_FLOAT_EQ(windows.value()[0].At(0, 0), 0.0f);
}

TEST(SegmentationTest, RecordingOverload) {
  sensors::Recording rec;
  rec.samples = Ramp(240, sensors::kNumChannels);
  rec.sample_rate_hz = 120.0;
  SegmentationConfig config;  // defaults: 120-sample windows, no overlap
  auto windows = Segment(rec, config);
  ASSERT_TRUE(windows.ok());
  EXPECT_EQ(windows.value().size(), 2u);
  EXPECT_EQ(windows.value()[0].cols(), sensors::kNumChannels);
}

TEST(SegmentationTest, InvalidConfigRejected) {
  SegmentationConfig zero_window;
  zero_window.window_samples = 0;
  EXPECT_FALSE(Segment(Ramp(10, 1), zero_window).ok());

  SegmentationConfig zero_stride;
  zero_stride.window_samples = 5;
  zero_stride.stride = 0;
  EXPECT_FALSE(Segment(Ramp(10, 1), zero_stride).ok());
}

TEST(SegmentationTest, SerializationRoundTrip) {
  SegmentationConfig config;
  config.window_samples = 60;
  config.stride = 30;
  BinaryWriter w;
  config.Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = SegmentationConfig::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().window_samples, 60u);
  EXPECT_EQ(back.value().stride, 30u);
}

}  // namespace
}  // namespace magneto::preprocess
