#include "preprocess/spectral_features.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "preprocess/pipeline.h"
#include "sensors/signal_model.h"
#include "sensors/synthetic_generator.h"

namespace magneto::preprocess {
namespace {

using sensors::Channel;

TEST(SpectralFeatureExtractorTest, ProducesExactly27Features) {
  SpectralFeatureExtractor fx;
  Matrix window(120, sensors::kNumChannels);
  auto features = fx.Extract(window);
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features.value().size(), kNumSpectralFeatures);
}

TEST(SpectralFeatureExtractorTest, NamesMatchCountAndAreUnique) {
  const auto& names = SpectralFeatureExtractor::FeatureNames();
  EXPECT_EQ(names.size(), kNumSpectralFeatures);
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
  EXPECT_EQ(names[0], "acc_mag_dom_freq");
  EXPECT_EQ(names.back(), "lin_acc_z_dom_freq");
}

TEST(SpectralFeatureExtractorTest, InvalidInputsRejected) {
  SpectralFeatureExtractor fx;
  EXPECT_FALSE(fx.Extract(Matrix(120, 10)).ok());
  EXPECT_FALSE(fx.Extract(Matrix(3, sensors::kNumChannels)).ok());
}

TEST(SpectralFeatureExtractorTest, DominantFrequencyDetectsInjectedTone) {
  // 6 Hz tone on acc_x at 120 Hz sampling.
  Matrix window(120, sensors::kNumChannels);
  for (size_t i = 0; i < 120; ++i) {
    window.At(i, static_cast<size_t>(Channel::kAccX)) = static_cast<float>(
        std::sin(2.0 * M_PI * 6.0 * static_cast<double>(i) / 120.0));
  }
  SpectralFeatureExtractor fx(120.0);
  auto features = fx.Extract(window).value();
  // Feature 18 is acc_x_dom_freq (after the 3x6 magnitude block).
  EXPECT_NEAR(features[18], 6.0, 1.0);
  // acc magnitude is |sin| (full-wave rectified): dominant component at 2x.
  EXPECT_NEAR(features[0], 12.0, 1.5);
}

TEST(SpectralFeatureExtractorTest, SeparatesCadences) {
  // Walk (~1.9 Hz) vs E-scooter (~14 Hz deck vibration) should land in
  // different bands.
  sensors::SyntheticGenerator gen(3);
  sensors::ActivityLibrary lib = sensors::DefaultActivityLibrary();
  SpectralFeatureExtractor fx(120.0);

  auto mean_feature = [&](sensors::ActivityId id, size_t dim) {
    double acc = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      sensors::Recording rec = gen.Generate(lib[id], 1.0);
      acc += fx.Extract(rec.samples).value()[dim];
    }
    return acc / 5.0;
  };

  // acc_mag gait-band power (feature 3) dominates for Walk...
  EXPECT_GT(mean_feature(sensors::kWalk, 3),
            mean_feature(sensors::kEScooter, 3));
  // ...while vibration-band power (feature 5) dominates for E-scooter.
  EXPECT_GT(mean_feature(sensors::kEScooter, 5),
            mean_feature(sensors::kWalk, 5));
}

TEST(SpectralFeatureExtractorTest, AllFiniteOnRealisticData) {
  sensors::SyntheticGenerator gen(5);
  SpectralFeatureExtractor fx(120.0);
  for (const auto& [id, model] : sensors::DefaultActivityLibrary()) {
    sensors::Recording rec = gen.Generate(model, 1.0);
    auto features = fx.Extract(rec.samples).value();
    for (size_t j = 0; j < features.size(); ++j) {
      EXPECT_TRUE(std::isfinite(features[j]))
          << "activity " << id << " feature " << j;
    }
  }
}

TEST(PipelineFeatureModeTest, DimsPerMode) {
  EXPECT_EQ(FeatureDim(FeatureMode::kStatistical), 80u);
  EXPECT_EQ(FeatureDim(FeatureMode::kSpectral), 27u);
  EXPECT_EQ(FeatureDim(FeatureMode::kCombined), 107u);
}

class PipelineFeatureModeTest : public ::testing::TestWithParam<FeatureMode> {
};

TEST_P(PipelineFeatureModeTest, PipelineProducesModeDim) {
  PipelineConfig config;
  config.features = GetParam();
  Pipeline pipeline(config);
  sensors::SyntheticGenerator gen(7);
  auto corpus = gen.GenerateDataset(sensors::DefaultActivityLibrary(), 1, 3.0);
  auto data = pipeline.Fit(corpus);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value().dim(), FeatureDim(GetParam()));
  EXPECT_EQ(pipeline.feature_dim(), FeatureDim(GetParam()));

  // Round trip keeps the mode and the normaliser dimension.
  BinaryWriter w;
  pipeline.Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = Pipeline::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().config().features, GetParam());
  sensors::Recording rec = gen.Generate(
      sensors::DefaultActivityLibrary()[sensors::kRun], 2.0);
  auto a = pipeline.Process(rec);
  auto b = back.value().Process(rec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i], b.value()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, PipelineFeatureModeTest,
                         ::testing::Values(FeatureMode::kStatistical,
                                           FeatureMode::kSpectral,
                                           FeatureMode::kCombined));

TEST(PipelineFeatureModeTest, CombinedConcatenatesInOrder) {
  PipelineConfig stat_config;
  PipelineConfig comb_config;
  comb_config.features = FeatureMode::kCombined;
  // Without normalisation the combined vector's prefix equals the
  // statistical vector exactly.
  stat_config.normalization = NormalizationMethod::kNone;
  comb_config.normalization = NormalizationMethod::kNone;
  Pipeline stat(stat_config), comb(comb_config);
  sensors::SyntheticGenerator gen(9);
  sensors::Recording rec = gen.Generate(
      sensors::DefaultActivityLibrary()[sensors::kWalk], 1.0);
  auto s = stat.ProcessWindow(rec.samples).value();
  auto c = comb.ProcessWindow(rec.samples).value();
  ASSERT_EQ(c.size(), 107u);
  for (size_t j = 0; j < 80; ++j) {
    EXPECT_FLOAT_EQ(c[j], s[j]) << "feature " << j;
  }
}

}  // namespace
}  // namespace magneto::preprocess
