#include "preprocess/features.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sensors/signal_model.h"
#include "sensors/synthetic_generator.h"

namespace magneto::preprocess {
namespace {

using sensors::Channel;

Matrix ZeroWindow(size_t samples = 120) {
  return Matrix(samples, sensors::kNumChannels);
}

TEST(FeatureExtractorTest, ProducesExactly80Features) {
  FeatureExtractor fx;
  auto features = fx.Extract(ZeroWindow());
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features.value().size(), kNumFeatures);
  EXPECT_EQ(kNumFeatures, 80u);
}

TEST(FeatureExtractorTest, FeatureNamesMatchCount) {
  const auto& names = FeatureExtractor::FeatureNames();
  EXPECT_EQ(names.size(), kNumFeatures);
  EXPECT_EQ(names[0], "acc_x_mean");
  EXPECT_EQ(names[79], "speed_std");
  // Names are unique.
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(FeatureExtractorTest, WrongChannelCountRejected) {
  FeatureExtractor fx;
  EXPECT_FALSE(fx.Extract(Matrix(120, 10)).ok());
}

TEST(FeatureExtractorTest, TooFewSamplesRejected) {
  FeatureExtractor fx;
  EXPECT_FALSE(fx.Extract(Matrix(1, sensors::kNumChannels)).ok());
}

TEST(FeatureExtractorTest, ConstantWindowGivesConstantStats) {
  Matrix window = ZeroWindow();
  for (size_t i = 0; i < window.rows(); ++i) {
    window.At(i, static_cast<size_t>(Channel::kAccX)) = 2.0f;
  }
  FeatureExtractor fx;
  auto features = fx.Extract(window).value();
  EXPECT_FLOAT_EQ(features[0], 2.0f);  // acc_x_mean
  EXPECT_FLOAT_EQ(features[1], 0.0f);  // acc_x_std
  EXPECT_FLOAT_EQ(features[2], 2.0f);  // acc_x_min
  EXPECT_FLOAT_EQ(features[3], 2.0f);  // acc_x_max
  EXPECT_FLOAT_EQ(features[4], 0.0f);  // acc_x_zcr
}

TEST(FeatureExtractorTest, MagnitudeFeatureReflectsTriAxisNorm) {
  Matrix window = ZeroWindow();
  for (size_t i = 0; i < window.rows(); ++i) {
    window.At(i, static_cast<size_t>(Channel::kAccX)) = 3.0f;
    window.At(i, static_cast<size_t>(Channel::kAccY)) = 4.0f;
  }
  FeatureExtractor fx;
  auto features = fx.Extract(window).value();
  // acc_mag_mean is feature 45.
  EXPECT_NEAR(features[45], 5.0f, 1e-5);
}

TEST(FeatureExtractorTest, SpeedFeaturesTrackSpeedChannel) {
  Matrix window = ZeroWindow();
  for (size_t i = 0; i < window.rows(); ++i) {
    window.At(i, static_cast<size_t>(Channel::kSpeed)) =
        (i % 2 == 0) ? 10.0f : 14.0f;
  }
  FeatureExtractor fx;
  auto features = fx.Extract(window).value();
  EXPECT_NEAR(features[78], 12.0f, 1e-4);  // speed_mean
  EXPECT_NEAR(features[79], 2.0f, 1e-4);   // speed_std
}

TEST(FeatureExtractorTest, CorrelationFeatureDetectsLinkedAxes) {
  Matrix window = ZeroWindow();
  for (size_t i = 0; i < window.rows(); ++i) {
    const float v = std::sin(0.3f * static_cast<float>(i));
    window.At(i, static_cast<size_t>(Channel::kAccX)) = v;
    window.At(i, static_cast<size_t>(Channel::kAccY)) = v;   // identical
    window.At(i, static_cast<size_t>(Channel::kAccZ)) = -v;  // inverted
  }
  FeatureExtractor fx;
  auto features = fx.Extract(window).value();
  EXPECT_NEAR(features[69], 1.0, 1e-4);   // corr(x,y)
  EXPECT_NEAR(features[70], -1.0, 1e-4);  // corr(x,z)
}

TEST(FeatureExtractorTest, SeparatesActivitiesInFeatureSpace) {
  // The core requirement: windows of different activities land in
  // measurably different regions of the 80-d space.
  sensors::SyntheticGenerator gen(17);
  sensors::ActivityLibrary lib = sensors::DefaultActivityLibrary();
  FeatureExtractor fx;

  auto mean_feature = [&](sensors::ActivityId id, size_t dim) {
    double acc = 0.0;
    const int reps = 5;
    for (int rep = 0; rep < reps; ++rep) {
      sensors::Recording rec = gen.Generate(lib[id], 1.0);
      acc += fx.Extract(rec.samples).value()[dim];
    }
    return acc / reps;
  };

  // acc_mag_std (feature 46) orders Still < Walk < Run.
  const double still_std = mean_feature(sensors::kStill, 46);
  const double walk_std = mean_feature(sensors::kWalk, 46);
  const double run_std = mean_feature(sensors::kRun, 46);
  EXPECT_LT(still_std, walk_std);
  EXPECT_LT(walk_std, run_std);

  // speed_mean (feature 78) makes Drive stand apart from everything on foot.
  EXPECT_GT(mean_feature(sensors::kDrive, 78),
            mean_feature(sensors::kRun, 78) + 3.0);
}

TEST(FeatureExtractorTest, DeterministicOnSameInput) {
  sensors::SyntheticGenerator gen(23);
  sensors::Recording rec =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kWalk], 1.0);
  FeatureExtractor fx;
  auto a = fx.Extract(rec.samples).value();
  auto b = fx.Extract(rec.samples).value();
  EXPECT_EQ(a, b);
}

TEST(FeatureExtractorTest, AllFeaturesFiniteOnRealisticData) {
  sensors::SyntheticGenerator gen(29);
  sensors::ActivityLibrary lib = sensors::DefaultActivityLibrary();
  FeatureExtractor fx;
  for (const auto& [id, model] : lib) {
    sensors::Recording rec = gen.Generate(model, 1.0);
    auto features = fx.Extract(rec.samples).value();
    for (size_t j = 0; j < features.size(); ++j) {
      EXPECT_TRUE(std::isfinite(features[j]))
          << "activity " << id << " feature "
          << FeatureExtractor::FeatureNames()[j];
    }
  }
}

// Property sweep: the extractor accepts any window length >= 2 and stays
// 80-dimensional.
class FeatureWindowSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FeatureWindowSizeTest, SizeInvariant) {
  FeatureExtractor fx;
  auto features = fx.Extract(ZeroWindow(GetParam()));
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features.value().size(), kNumFeatures);
}

INSTANTIATE_TEST_SUITE_P(WindowSizes, FeatureWindowSizeTest,
                         ::testing::Values(2, 10, 60, 120, 240, 1000));

}  // namespace
}  // namespace magneto::preprocess
