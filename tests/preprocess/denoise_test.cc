#include "preprocess/denoise.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "common/random.h"

namespace magneto::preprocess {
namespace {

Matrix NoisySine(size_t n, double noise, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, 1);
  for (size_t i = 0; i < n; ++i) {
    m.At(i, 0) = static_cast<float>(
        std::sin(2.0 * M_PI * 0.01 * static_cast<double>(i)) +
        rng.Normal(0.0, noise));
  }
  return m;
}

double ColumnStd(const Matrix& m, size_t col) {
  std::vector<float> v(m.rows());
  for (size_t i = 0; i < m.rows(); ++i) v[i] = m.At(i, col);
  return magneto::stats::StdDev(v.data(), v.size());
}

TEST(DenoiseTest, NoneIsIdentity) {
  Matrix input = NoisySine(100, 0.5, 1);
  DenoiseConfig config;
  config.method = DenoiseMethod::kNone;
  auto out = Denoise(input, config);
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < input.rows(); ++i) {
    EXPECT_FLOAT_EQ(out.value().At(i, 0), input.At(i, 0));
  }
}

TEST(DenoiseTest, MovingAverageReducesNoise) {
  Matrix clean = NoisySine(500, 0.0, 1);
  Matrix noisy = NoisySine(500, 0.5, 1);
  DenoiseConfig config;
  config.method = DenoiseMethod::kMovingAverage;
  config.window = 7;
  auto out = Denoise(noisy, config);
  ASSERT_TRUE(out.ok());
  // Residual vs the clean signal shrinks after smoothing.
  double raw_err = 0.0, smooth_err = 0.0;
  for (size_t i = 0; i < clean.rows(); ++i) {
    raw_err += std::fabs(noisy.At(i, 0) - clean.At(i, 0));
    smooth_err += std::fabs(out.value().At(i, 0) - clean.At(i, 0));
  }
  EXPECT_LT(smooth_err, raw_err * 0.7);
}

TEST(DenoiseTest, MovingAveragePreservesConstant) {
  Matrix m(50, 2);
  m.Fill(3.5f);
  DenoiseConfig config;
  config.method = DenoiseMethod::kMovingAverage;
  config.window = 5;
  auto out = Denoise(m, config);
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < m.rows(); ++i) {
    EXPECT_NEAR(out.value().At(i, 0), 3.5f, 1e-5);
    EXPECT_NEAR(out.value().At(i, 1), 3.5f, 1e-5);
  }
}

TEST(DenoiseTest, MovingAverageMatchesBruteForce) {
  Matrix m(20, 1);
  for (size_t i = 0; i < 20; ++i) m.At(i, 0) = static_cast<float>(i * i % 13);
  DenoiseConfig config;
  config.method = DenoiseMethod::kMovingAverage;
  config.window = 5;
  auto out = Denoise(m, config);
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < 20; ++i) {
    const size_t lo = i >= 2 ? i - 2 : 0;
    const size_t hi = std::min<size_t>(20, i + 3);
    double sum = 0.0;
    for (size_t j = lo; j < hi; ++j) sum += m.At(j, 0);
    EXPECT_NEAR(out.value().At(i, 0), sum / (hi - lo), 1e-5) << "row " << i;
  }
}

TEST(DenoiseTest, MedianRemovesImpulses) {
  Matrix m(101, 1);
  m.Fill(1.0f);
  m.At(50, 0) = 100.0f;  // spike
  DenoiseConfig config;
  config.method = DenoiseMethod::kMedian;
  config.window = 5;
  auto out = Denoise(m, config);
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out.value().At(50, 0), 1.0f);
}

TEST(DenoiseTest, LowPassReducesVariance) {
  Matrix noisy = NoisySine(500, 0.5, 3);
  DenoiseConfig config;
  config.method = DenoiseMethod::kLowPass;
  config.alpha = 0.2;
  auto out = Denoise(noisy, config);
  ASSERT_TRUE(out.ok());
  EXPECT_LT(ColumnStd(out.value(), 0), ColumnStd(noisy, 0));
}

TEST(DenoiseTest, LowPassAlphaOneIsIdentity) {
  Matrix input = NoisySine(50, 0.3, 5);
  DenoiseConfig config;
  config.method = DenoiseMethod::kLowPass;
  config.alpha = 1.0;
  auto out = Denoise(input, config);
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < input.rows(); ++i) {
    EXPECT_NEAR(out.value().At(i, 0), input.At(i, 0), 1e-5);
  }
}

TEST(DenoiseTest, ChannelsAreIndependent) {
  Matrix m(30, 2);
  for (size_t i = 0; i < 30; ++i) {
    m.At(i, 0) = static_cast<float>(i);
    m.At(i, 1) = 7.0f;
  }
  DenoiseConfig config;
  config.method = DenoiseMethod::kMovingAverage;
  config.window = 3;
  auto out = Denoise(m, config);
  ASSERT_TRUE(out.ok());
  // Constant channel unchanged even though the other one varies.
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_NEAR(out.value().At(i, 1), 7.0f, 1e-6);
  }
}

TEST(DenoiseTest, InvalidConfigsRejected) {
  Matrix m(10, 1);
  DenoiseConfig even;
  even.method = DenoiseMethod::kMovingAverage;
  even.window = 4;
  EXPECT_FALSE(Denoise(m, even).ok());

  DenoiseConfig zero;
  zero.method = DenoiseMethod::kMedian;
  zero.window = 0;
  EXPECT_FALSE(Denoise(m, zero).ok());

  DenoiseConfig bad_alpha;
  bad_alpha.method = DenoiseMethod::kLowPass;
  bad_alpha.alpha = 0.0;
  EXPECT_FALSE(Denoise(m, bad_alpha).ok());
  bad_alpha.alpha = 1.5;
  EXPECT_FALSE(Denoise(m, bad_alpha).ok());
}

TEST(DenoiseTest, ConfigSerializationRoundTrip) {
  DenoiseConfig config;
  config.method = DenoiseMethod::kLowPass;
  config.window = 9;
  config.alpha = 0.42;
  BinaryWriter w;
  config.Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = DenoiseConfig::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().method, DenoiseMethod::kLowPass);
  EXPECT_EQ(back.value().window, 9u);
  EXPECT_DOUBLE_EQ(back.value().alpha, 0.42);
}

TEST(DenoiseTest, DeserializeRejectsBadMethod) {
  BinaryWriter w;
  w.WriteU8(99);
  w.WriteU64(5);
  w.WriteF64(0.5);
  BinaryReader r(w.buffer());
  EXPECT_FALSE(DenoiseConfig::Deserialize(&r).ok());
}

}  // namespace
}  // namespace magneto::preprocess
