#include "nn/workspace.h"

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nn/activation.h"
#include "nn/dropout.h"
#include "nn/gradient_check.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/quantized_linear.h"
#include "nn/sequential.h"

namespace magneto::nn {
namespace {

/// Bitwise equality — the workspace refactor must not change a single ULP
/// anywhere, so every comparison here is memcmp, not EXPECT_NEAR.
bool BitIdentical(const Matrix& a, const Matrix& b) {
  return a.SameShape(b) &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

Matrix RandomBatch(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  return m;
}

/// One of every differentiable layer type.
Sequential EveryLayerNet(uint64_t seed) {
  Rng rng(seed);
  Sequential net;
  net.Add(std::make_unique<Linear>(6, 8, &rng));
  net.Add(std::make_unique<LayerNorm>(8));
  net.Add(std::make_unique<Relu>());
  net.Add(std::make_unique<Linear>(8, 5, &rng));
  net.Add(std::make_unique<Tanh>());
  net.Add(std::make_unique<Linear>(5, 4, &rng));
  net.Add(std::make_unique<Sigmoid>());
  return net;
}

TEST(WorkspaceTest, RecordedAndPingPongPathsBitIdentical) {
  Sequential net = EveryLayerNet(1);
  Matrix x = RandomBatch(4, 6, 2);
  ForwardWorkspace recorded_ws;
  ForwardWorkspace inference_ws;
  // Inference math with activation recording on vs the pure ping-pong path:
  // same layers, same kernels, so the outputs must match bit for bit.
  const Matrix& recorded =
      net.Forward(x, &recorded_ws, /*training=*/false, /*record=*/true);
  const Matrix& inference = net.Forward(x, &inference_ws);
  EXPECT_TRUE(BitIdentical(recorded, inference));
}

TEST(WorkspaceTest, QuantizedLinearForwardBitIdenticalAcrossPaths) {
  Rng rng(3);
  Sequential net;
  net.Add(QuantizedLinear::FromLinear(Linear(6, 4, &rng)).value());
  net.Add(std::make_unique<Relu>());
  Matrix x = RandomBatch(3, 6, 4);
  ForwardWorkspace ws_a;
  ForwardWorkspace ws_b;
  const Matrix& recorded =
      net.Forward(x, &ws_a, /*training=*/false, /*record=*/true);
  const Matrix& inference = net.Forward(x, &ws_b);
  EXPECT_TRUE(BitIdentical(recorded, inference));
}

TEST(WorkspaceTest, RepeatedForwardsThroughOneWorkspaceBitIdentical) {
  Sequential net = EveryLayerNet(5);
  Matrix x = RandomBatch(4, 6, 6);
  ForwardWorkspace ws;
  Matrix first = net.Forward(x, &ws);
  for (int i = 0; i < 3; ++i) {
    // Buffer reuse (no fresh zero-filled matrices) must not leak stale
    // values into the result.
    EXPECT_TRUE(BitIdentical(first, net.Forward(x, &ws)));
  }
}

TEST(WorkspaceTest, TwoWorkspacesProduceIdenticalResults) {
  Sequential net = EveryLayerNet(7);
  Matrix x = RandomBatch(2, 6, 8);
  ForwardWorkspace ws_a;
  ForwardWorkspace ws_b;
  Matrix ya = net.Forward(x, &ws_a);
  Matrix yb = net.Forward(x, &ws_b);
  EXPECT_TRUE(BitIdentical(ya, yb));
}

TEST(WorkspaceTest, SteadyStateInferenceDoesNotAllocate) {
  Sequential net = EveryLayerNet(9);
  Matrix x = RandomBatch(8, 6, 10);
  ForwardWorkspace ws;
  // Warm up: buffers grow to their high-water shapes.
  net.Forward(x, &ws);
  net.Forward(x, &ws);
  const uint64_t before = Matrix::AllocationCount();
  for (int i = 0; i < 10; ++i) net.Forward(x, &ws);
  EXPECT_EQ(Matrix::AllocationCount(), before)
      << "steady-state inference forwards must reuse workspace buffers";
}

TEST(WorkspaceTest, DropoutMaskMatchesReferenceStream) {
  const double p = 0.4;
  const uint64_t seed = 1234;
  Dropout dropout(p, seed);
  Matrix x(2, 50);
  x.Fill(1.0f);
  LayerState state;
  Matrix y;
  dropout.Forward(x, /*training=*/true, &state, &y);
  // The mask stream is defined: one Bernoulli(p) draw per element in
  // row-major order from Rng(seed), survivors scaled by 1/(1-p).
  Rng reference(seed);
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p));
  for (size_t i = 0; i < y.size(); ++i) {
    const float expected = reference.Bernoulli(p) ? 0.0f : keep_scale;
    ASSERT_EQ(y.data()[i], expected) << "element " << i;
  }
}

TEST(WorkspaceTest, DropoutStreamIsPerWorkspace) {
  Rng rng(11);
  Sequential net = BuildMlp(6, {32, 4}, &rng, /*dropout_p=*/0.5);
  Matrix x(1, 6);
  x.Fill(1.0f);
  ForwardWorkspace ws_a;
  ForwardWorkspace ws_b;
  // Fresh workspaces replay the stream from the layer's seed: identical.
  Matrix first_a = net.Forward(x, &ws_a, /*training=*/true);
  Matrix first_b = net.Forward(x, &ws_b, /*training=*/true);
  EXPECT_TRUE(BitIdentical(first_a, first_b));
  // Within one workspace the stream advances: a second training forward
  // draws a different mask (overwhelmingly likely at 32 units, p=0.5).
  Matrix second_a = net.Forward(x, &ws_a, /*training=*/true);
  EXPECT_FALSE(BitIdentical(first_a, second_a));
}

TEST(WorkspaceTest, WorkspaceMovedToDifferentNetworkReseedsDropout) {
  Rng rng_a(21);
  Rng rng_b(22);
  Sequential net_a = BuildMlp(6, {32, 4}, &rng_a, /*dropout_p=*/0.5);
  Sequential net_b = BuildMlp(6, {32, 4}, &rng_b, /*dropout_p=*/0.5);
  Matrix x(1, 6);
  x.Fill(1.0f);
  ForwardWorkspace reused;
  net_a.Forward(x, &reused, /*training=*/true);
  // The reused workspace carries net_a's advanced stream; the seed check
  // must reset it so net_b sees the same masks a fresh workspace would.
  Matrix via_reused = net_b.Forward(x, &reused, /*training=*/true);
  ForwardWorkspace fresh;
  Matrix via_fresh = net_b.Forward(x, &fresh, /*training=*/true);
  EXPECT_TRUE(BitIdentical(via_reused, via_fresh));
}

TEST(WorkspaceTest, InferenceModeRecordSupportsBackward) {
  // The EWC Fisher pattern: training=false (dropout off) + record=true
  // (activations kept) must produce the same gradients as a training
  // forward on a dropout-free net.
  Sequential net = EveryLayerNet(13);
  Sequential twin = EveryLayerNet(13);
  Matrix x = RandomBatch(3, 6, 14);
  Matrix g(3, 4);
  g.Fill(0.5f);

  ForwardWorkspace ws;
  net.ZeroGrad();
  net.Forward(x, &ws, /*training=*/false, /*record=*/true);
  net.Backward(g, &ws);

  ForwardWorkspace twin_ws;
  twin.ZeroGrad();
  twin.Forward(x, &twin_ws, /*training=*/true);
  twin.Backward(g, &twin_ws);

  auto grads = net.Grads();
  auto twin_grads = twin.Grads();
  ASSERT_EQ(grads.size(), twin_grads.size());
  for (size_t i = 0; i < grads.size(); ++i) {
    EXPECT_TRUE(BitIdentical(*grads[i], *twin_grads[i])) << "grad " << i;
  }
}

TEST(WorkspaceTest, GradientCheckThroughWorkspacePath) {
  Rng rng(15);
  Sequential net;
  net.Add(std::make_unique<Linear>(4, 6, &rng));
  net.Add(std::make_unique<LayerNorm>(6));
  net.Add(std::make_unique<Tanh>());
  net.Add(std::make_unique<Linear>(6, 3, &rng));
  Matrix x = RandomBatch(3, 4, 16);
  Matrix target = RandomBatch(3, 3, 17);
  ForwardWorkspace ws;
  auto loss_fn = [&]() {
    const Matrix& out = net.Forward(x, &ws, /*training=*/true);
    auto res = DistillationMse(out, target);
    net.Backward(res.grad, &ws);
    return res.loss;
  };
  auto check = CheckParameterGradients(&net, loss_fn, 1e-3, 10);
  EXPECT_TRUE(check.Passed(5e-2)) << "rel err " << check.max_rel_error;
}

TEST(WorkspaceDeathTest, BackwardWithoutRecordedForwardAborts) {
  Sequential net = EveryLayerNet(19);
  Matrix x = RandomBatch(2, 6, 20);
  ForwardWorkspace ws;
  net.Forward(x, &ws);  // inference path records nothing
  Matrix g(2, 4);
  EXPECT_DEATH(net.Backward(g, &ws), "Check failed");
}

TEST(WorkspaceDeathTest, BackwardWithForeignWorkspaceAborts) {
  Sequential net = EveryLayerNet(23);
  Sequential other = net.Clone();
  Matrix x = RandomBatch(2, 6, 24);
  ForwardWorkspace ws;
  net.Forward(x, &ws, /*training=*/true);
  Matrix g(2, 4);
  EXPECT_DEATH(other.Backward(g, &ws), "Check failed");
}

TEST(WorkspaceConcurrencyTest, ConcurrentConstForwardIsDeterministic) {
  // The point of the whole refactor: one immutable network, N threads, no
  // locks — every thread brings its own workspace and every result is
  // bit-identical to the single-threaded baseline.
  Sequential owned = EveryLayerNet(29);
  const Sequential& net = owned;
  Matrix x = RandomBatch(8, 6, 30);
  ForwardWorkspace baseline_ws;
  const Matrix baseline = net.Forward(x, &baseline_ws);

  constexpr size_t kThreads = 8;
  constexpr size_t kItersPerThread = 50;
  std::vector<int> ok(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      ForwardWorkspace ws;
      int good = 0;
      for (size_t i = 0; i < kItersPerThread; ++i) {
        if (BitIdentical(baseline, net.Forward(x, &ws))) ++good;
      }
      ok[t] = good;
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(ok[t], static_cast<int>(kItersPerThread)) << "thread " << t;
  }
}

}  // namespace
}  // namespace magneto::nn
