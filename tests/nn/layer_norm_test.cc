#include "nn/layer_norm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/activation.h"
#include "nn/gradient_check.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/sequential.h"

namespace magneto::nn {
namespace {

TEST(LayerNormTest, ForwardStandardisesEachRow) {
  LayerNorm ln(4);
  Matrix x(2, 4, {1, 2, 3, 4, 10, 10, 10, 10});
  Matrix y;
  ln.Forward(x, /*training=*/false, /*state=*/nullptr, &y);
  // Row 0: mean 2.5, population std sqrt(1.25).
  double mean = 0.0, var = 0.0;
  for (size_t j = 0; j < 4; ++j) mean += y.At(0, j);
  mean /= 4.0;
  for (size_t j = 0; j < 4; ++j) {
    var += (y.At(0, j) - mean) * (y.At(0, j) - mean);
  }
  var /= 4.0;
  EXPECT_NEAR(mean, 0.0, 1e-5);
  EXPECT_NEAR(var, 1.0, 1e-3);
  // Constant row maps to ~0 (epsilon guards the division).
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(y.At(1, j), 0.0, 1e-3);
  }
}

TEST(LayerNormTest, AffineParametersApply) {
  LayerNorm ln(2);
  ln.gamma() = Matrix(1, 2, {2.0f, 3.0f});
  ln.beta() = Matrix(1, 2, {1.0f, -1.0f});
  Matrix x(1, 2, {-1, 1});  // xhat = {-1, 1}
  Matrix y;
  ln.Forward(x, /*training=*/false, /*state=*/nullptr, &y);
  EXPECT_NEAR(y.At(0, 0), 2.0f * -1.0f + 1.0f, 1e-4);
  EXPECT_NEAR(y.At(0, 1), 3.0f * 1.0f - 1.0f, 1e-4);
}

TEST(LayerNormTest, ParameterGradientsMatchFiniteDifference) {
  Rng rng(1);
  Sequential net;
  net.Add(std::make_unique<Linear>(5, 6, &rng));
  net.Add(std::make_unique<LayerNorm>(6));
  net.Add(std::make_unique<Linear>(6, 3, &rng));

  Matrix x(4, 5);
  for (size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  Matrix target(4, 3);
  for (size_t i = 0; i < target.size(); ++i) {
    target.data()[i] = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  ForwardWorkspace ws;
  auto loss_fn = [&]() {
    const Matrix& out = net.Forward(x, &ws, /*training=*/true);
    auto res = DistillationMse(out, target);
    net.Backward(res.grad, &ws);
    return res.loss;
  };
  auto check = CheckParameterGradients(&net, loss_fn, 1e-3, 10);
  EXPECT_TRUE(check.Passed(5e-2)) << "rel err " << check.max_rel_error;
}

TEST(LayerNormTest, InputGradientMatchesFiniteDifference) {
  LayerNorm ln(6);
  Rng rng(2);
  ln.gamma() = Matrix(1, 6);
  for (size_t j = 0; j < 6; ++j) {
    ln.gamma().At(0, j) = static_cast<float>(rng.Uniform(0.5, 1.5));
  }
  Matrix x(3, 6);
  for (size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  Matrix target(3, 6);
  LayerState state;
  auto check = CheckInputGradient(
      x,
      [&](const Matrix& input, Matrix* grad) {
        Matrix out;
        ln.Forward(input, /*training=*/true, &state, &out);
        auto res = DistillationMse(out, target);
        ln.ZeroGrad();
        ln.Backward(res.grad, input, out, &state, grad);
        return res.loss;
      },
      1e-3, 18);
  EXPECT_TRUE(check.Passed(5e-2)) << "rel err " << check.max_rel_error;
}

TEST(LayerNormTest, SerializationRoundTrip) {
  LayerNorm ln(3, 1e-4);
  ln.gamma() = Matrix(1, 3, {1.5f, 0.5f, 2.0f});
  ln.beta() = Matrix(1, 3, {0.1f, -0.2f, 0.3f});
  BinaryWriter w;
  ln.Serialize(&w);
  BinaryReader r(w.buffer());
  ASSERT_EQ(r.ReadU8().value(), kLayerNormTag);
  auto back = LayerNorm::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  Matrix x(2, 3, {1, 2, 3, -1, 0, 1});
  Matrix y1, y2;
  ln.Forward(x, /*training=*/false, /*state=*/nullptr, &y1);
  back.value()->Forward(x, /*training=*/false, /*state=*/nullptr, &y2);
  for (size_t i = 0; i < y1.size(); ++i) {
    EXPECT_FLOAT_EQ(y1.data()[i], y2.data()[i]);
  }
}

TEST(LayerNormTest, SequentialRoundTripWithLayerNorm) {
  Rng rng(3);
  Sequential net;
  net.Add(std::make_unique<Linear>(4, 8, &rng));
  net.Add(std::make_unique<LayerNorm>(8));
  net.Add(std::make_unique<Relu>());
  net.Add(std::make_unique<Linear>(8, 2, &rng));
  BinaryWriter w;
  net.Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = Sequential::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().num_layers(), 4u);
  Matrix x(2, 4, {1, 2, 3, 4, -1, 0, 1, 2});
  ForwardWorkspace ws;
  Matrix y1 = net.Forward(x, &ws);
  Matrix y2 = back.value().Forward(x, &ws);
  for (size_t i = 0; i < y1.size(); ++i) {
    EXPECT_FLOAT_EQ(y1.data()[i], y2.data()[i]);
  }
}

TEST(LayerNormTest, CloneIsDeep) {
  LayerNorm ln(2);
  auto clone = ln.Clone();
  ln.gamma().At(0, 0) = 42.0f;
  auto* cloned = static_cast<LayerNorm*>(clone.get());
  EXPECT_FLOAT_EQ(cloned->gamma().At(0, 0), 1.0f);
}

TEST(LayerNormTest, GradAccumulationAndZero) {
  LayerNorm ln(3);
  Matrix x(1, 3, {1, 2, 3});
  LayerState state;
  Matrix y;
  Matrix gx;
  Matrix g(1, 3, {1, 1, 1});
  ln.Forward(x, /*training=*/true, &state, &y);
  ln.Backward(g, x, y, &state, &gx);
  ln.Forward(x, /*training=*/true, &state, &y);
  ln.Backward(g, x, y, &state, &gx);
  EXPECT_GT(ln.Grads()[1]->AbsMax(), 0.0f);  // beta grad = 2 per dim
  EXPECT_FLOAT_EQ(ln.Grads()[1]->At(0, 0), 2.0f);
  ln.ZeroGrad();
  EXPECT_FLOAT_EQ(ln.Grads()[0]->AbsMax(), 0.0f);
}

TEST(LayerNormDeathTest, ZeroDimAborts) {
  EXPECT_DEATH(LayerNorm(0), "Check failed");
}

}  // namespace
}  // namespace magneto::nn
