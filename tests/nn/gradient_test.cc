#include "nn/gradient_check.h"

#include <gtest/gtest.h>

#include "nn/activation.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/sequential.h"

namespace magneto::nn {
namespace {

/// End-to-end parameter gradient checks: backprop through the full network
/// against central differences, for each loss MAGNETO uses.

Matrix RandomBatch(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  return m;
}

TEST(NetworkGradientTest, MlpWithSoftmaxCrossEntropy) {
  Rng rng(1);
  Sequential net = BuildMlp(5, {7, 3}, &rng);
  Matrix x = RandomBatch(4, 5, 2);
  const std::vector<int> labels{0, 1, 2, 1};
  ForwardWorkspace ws;
  auto loss_fn = [&]() {
    const Matrix& logits = net.Forward(x, &ws, /*training=*/true);
    auto res = SoftmaxCrossEntropy(logits, labels);
    net.Backward(res.grad, &ws);
    return res.loss;
  };
  auto check = CheckParameterGradients(&net, loss_fn, 1e-2, 12);
  EXPECT_GT(check.checked, 20u);
  EXPECT_TRUE(check.Passed(5e-2)) << "rel err " << check.max_rel_error;
}

TEST(NetworkGradientTest, SiameseContrastiveThroughSharedWeights) {
  // The Siamese trick: one forward over the stacked pair batch. The
  // parameter gradient must match finite differences of the pair loss.
  // Finite differences require a locally smooth loss, so this test uses a
  // Tanh network (no ReLU kinks) and a margin far beyond the embedding scale
  // (every negative pair stays strictly inside the active hinge region).
  Rng rng(3);
  Sequential net;
  net.Add(std::make_unique<Linear>(4, 6, &rng));
  net.Add(std::make_unique<Tanh>());
  net.Add(std::make_unique<Linear>(6, 3, &rng));
  Matrix a = RandomBatch(3, 4, 4);
  Matrix b = RandomBatch(3, 4, 5);
  const std::vector<uint8_t> same{1, 0, 1};
  ForwardWorkspace ws;
  auto loss_fn = [&]() {
    Matrix stacked = VStack(a, b);
    const Matrix& emb = net.Forward(stacked, &ws, /*training=*/true);
    Matrix emb_a = emb.RowSlice(0, 3);
    Matrix emb_b = emb.RowSlice(3, 6);
    auto res = ContrastiveLoss(emb_a, emb_b, same, 10.0);
    net.Backward(VStack(res.grad_a, res.grad_b), &ws);
    return res.loss;
  };
  auto check = CheckParameterGradients(&net, loss_fn, 1e-3, 10);
  EXPECT_TRUE(check.Passed(5e-2)) << "rel err " << check.max_rel_error;
}

TEST(NetworkGradientTest, JointContrastivePlusDistillation) {
  // The incremental-update objective: contrastive on pairs plus lambda * MSE
  // distillation toward a frozen teacher, accumulated in one step.
  Rng rng(7);
  Sequential net = BuildMlp(4, {5, 2}, &rng);
  Rng teacher_rng(8);
  Sequential teacher = BuildMlp(4, {5, 2}, &teacher_rng);

  Matrix a = RandomBatch(2, 4, 9);
  Matrix b = RandomBatch(2, 4, 10);
  Matrix distill_x = RandomBatch(3, 4, 11);
  ForwardWorkspace teacher_ws;
  Matrix targets = teacher.Forward(distill_x, &teacher_ws);
  const std::vector<uint8_t> same{1, 0};
  const double lambda = 0.7;

  ForwardWorkspace ws;
  auto loss_fn = [&]() {
    Matrix stacked = VStack(a, b);
    const Matrix& emb = net.Forward(stacked, &ws, /*training=*/true);
    auto contrastive = ContrastiveLoss(emb.RowSlice(0, 2), emb.RowSlice(2, 4),
                                       same, 1.0);
    net.Backward(VStack(contrastive.grad_a, contrastive.grad_b), &ws);

    const Matrix& student = net.Forward(distill_x, &ws, /*training=*/true);
    auto distill = DistillationMse(student, targets);
    distill.grad.Scale(static_cast<float>(lambda));
    net.Backward(distill.grad, &ws);

    return contrastive.loss + lambda * distill.loss;
  };
  auto check = CheckParameterGradients(&net, loss_fn, 1e-2, 8);
  EXPECT_TRUE(check.Passed(6e-2)) << "rel err " << check.max_rel_error;
}

TEST(NetworkGradientTest, SupConThroughNetwork) {
  Rng rng(13);
  Sequential net = BuildMlp(4, {6, 3}, &rng);
  Matrix x = RandomBatch(4, 4, 14);
  const std::vector<int> labels{0, 0, 1, 1};
  ForwardWorkspace ws;
  auto loss_fn = [&]() {
    const Matrix& emb = net.Forward(x, &ws, /*training=*/true);
    auto res = SupConLoss(emb, labels, 0.5);
    net.Backward(res.grad, &ws);
    return res.loss;
  };
  auto check = CheckParameterGradients(&net, loss_fn, 1e-2, 8);
  EXPECT_TRUE(check.Passed(6e-2)) << "rel err " << check.max_rel_error;
}

TEST(NetworkGradientTest, TanhNetwork) {
  // A second activation exercises a different backward path.
  Rng rng(15);
  Sequential net;
  net.Add(std::make_unique<Linear>(3, 5, &rng));
  net.Add(std::make_unique<Tanh>());
  net.Add(std::make_unique<Linear>(5, 2, &rng));
  Matrix x = RandomBatch(3, 3, 16);
  Matrix target = RandomBatch(3, 2, 17);
  ForwardWorkspace ws;
  auto loss_fn = [&]() {
    const Matrix& out = net.Forward(x, &ws, /*training=*/true);
    auto res = DistillationMse(out, target);
    net.Backward(res.grad, &ws);
    return res.loss;
  };
  auto check = CheckParameterGradients(&net, loss_fn, 1e-2, 10);
  EXPECT_TRUE(check.Passed(5e-2)) << "rel err " << check.max_rel_error;
}

}  // namespace
}  // namespace magneto::nn
