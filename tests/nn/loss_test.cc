#include "nn/loss.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/gradient_check.h"

namespace magneto::nn {
namespace {

TEST(SoftmaxCrossEntropyTest, PerfectPredictionHasLowLoss) {
  Matrix logits(1, 3, {10.0f, -10.0f, -10.0f});
  auto res = SoftmaxCrossEntropy(logits, {0});
  EXPECT_LT(res.loss, 1e-6);
}

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogC) {
  Matrix logits(2, 4);
  auto res = SoftmaxCrossEntropy(logits, {1, 3});
  EXPECT_NEAR(res.loss, std::log(4.0), 1e-5);
}

TEST(SoftmaxCrossEntropyTest, GradientIsSoftmaxMinusOnehot) {
  Matrix logits(1, 2, {0.0f, 0.0f});
  auto res = SoftmaxCrossEntropy(logits, {0});
  EXPECT_NEAR(res.grad.At(0, 0), -0.5, 1e-6);
  EXPECT_NEAR(res.grad.At(0, 1), 0.5, 1e-6);
}

TEST(SoftmaxCrossEntropyTest, GradientMatchesFiniteDifference) {
  Matrix logits(3, 4, {0.3f, -0.2f, 0.8f, 0.1f, -0.4f, 0.5f, 0.2f, -0.1f,
                       0.7f, 0.0f, -0.6f, 0.4f});
  const std::vector<int> labels{2, 1, 0};
  auto check = CheckInputGradient(
      logits,
      [&](const Matrix& input, Matrix* grad) {
        auto res = SoftmaxCrossEntropy(input, labels);
        *grad = res.grad;
        return res.loss;
      },
      1e-3, 12);
  EXPECT_TRUE(check.Passed(5e-2)) << "rel err " << check.max_rel_error;
}

TEST(ContrastiveLossTest, IdenticalPositivePairHasZeroLoss) {
  Matrix a(1, 3, {1, 2, 3});
  Matrix b = a;
  auto res = ContrastiveLoss(a, b, {1}, 1.0);
  EXPECT_DOUBLE_EQ(res.loss, 0.0);
  EXPECT_FLOAT_EQ(res.grad_a.AbsMax(), 0.0f);
}

TEST(ContrastiveLossTest, FarNegativePairHasZeroLoss) {
  Matrix a(1, 2, {0, 0});
  Matrix b(1, 2, {10, 0});
  auto res = ContrastiveLoss(a, b, {0}, 1.0);
  EXPECT_DOUBLE_EQ(res.loss, 0.0);
  EXPECT_FLOAT_EQ(res.grad_a.AbsMax(), 0.0f);
}

TEST(ContrastiveLossTest, ClosePositivePairPenalty) {
  Matrix a(1, 2, {0, 0});
  Matrix b(1, 2, {3, 4});  // d = 5
  auto res = ContrastiveLoss(a, b, {1}, 1.0);
  EXPECT_NEAR(res.loss, 0.5 * 25.0, 1e-5);
  // Gradient pulls a toward b.
  EXPECT_LT(res.grad_a.At(0, 0), 0.0f);
  EXPECT_GT(res.grad_b.At(0, 0), 0.0f);
}

TEST(ContrastiveLossTest, CloseNegativePairPenalty) {
  Matrix a(1, 2, {0, 0});
  Matrix b(1, 2, {0.6f, 0});  // d = 0.6 < margin 1
  auto res = ContrastiveLoss(a, b, {0}, 1.0);
  EXPECT_NEAR(res.loss, 0.5 * 0.16, 1e-5);
  // The descent step -grad moves a away from b (b sits at +x of a), so the
  // gradient itself points toward b: positive for a, negative for b.
  EXPECT_GT(res.grad_a.At(0, 0), 0.0f);
  EXPECT_LT(res.grad_b.At(0, 0), 0.0f);
}

TEST(ContrastiveLossTest, BatchAveraging) {
  Matrix a(2, 2, {0, 0, 0, 0});
  Matrix b(2, 2, {3, 4, 3, 4});
  auto res = ContrastiveLoss(a, b, {1, 1}, 1.0);
  EXPECT_NEAR(res.loss, 0.5 * 25.0, 1e-4);  // mean over identical pairs
}

TEST(ContrastiveLossTest, GradientMatchesFiniteDifferencePositives) {
  Matrix a(2, 3, {0.1f, -0.2f, 0.3f, 0.5f, 0.0f, -0.4f});
  Matrix b(2, 3, {-0.1f, 0.4f, 0.2f, 0.3f, -0.2f, 0.1f});
  const std::vector<uint8_t> same{1, 0};
  auto check = CheckInputGradient(
      a,
      [&](const Matrix& input, Matrix* grad) {
        auto res = ContrastiveLoss(input, b, same, 1.0);
        *grad = res.grad_a;
        return res.loss;
      },
      1e-3, 6);
  EXPECT_TRUE(check.Passed(5e-2)) << "rel err " << check.max_rel_error;
}

TEST(SupConLossTest, ZeroWhenNoPositives) {
  Matrix emb(2, 3, {1, 0, 0, 0, 1, 0});
  auto res = SupConLoss(emb, {0, 1}, 0.1);
  EXPECT_DOUBLE_EQ(res.loss, 0.0);
  EXPECT_FLOAT_EQ(res.grad.AbsMax(), 0.0f);
}

TEST(SupConLossTest, ClusteredEmbeddingsScoreBetterThanMixed) {
  // Two tight, well separated clusters vs interleaved points.
  Matrix good(4, 2, {1, 0, 0.99f, 0.05f, -1, 0, -0.99f, -0.05f});
  Matrix bad(4, 2, {1, 0, -1, 0, 0.99f, 0.05f, -0.99f, -0.05f});
  const std::vector<int> labels{0, 0, 1, 1};
  auto res_good = SupConLoss(good, labels, 0.1);
  auto res_bad = SupConLoss(bad, labels, 0.1);
  EXPECT_LT(res_good.loss, res_bad.loss);
}

TEST(SupConLossTest, GradientMatchesFiniteDifference) {
  Matrix emb(4, 3, {0.5f, -0.2f, 0.8f, 0.4f, -0.1f, 0.9f, -0.6f, 0.3f, 0.2f,
                    -0.5f, 0.4f, 0.1f});
  const std::vector<int> labels{0, 0, 1, 1};
  auto check = CheckInputGradient(
      emb,
      [&](const Matrix& input, Matrix* grad) {
        auto res = SupConLoss(input, labels, 0.5);
        *grad = res.grad;
        return res.loss;
      },
      1e-3, 12);
  EXPECT_TRUE(check.Passed(5e-2)) << "rel err " << check.max_rel_error;
}

TEST(DistillationMseTest, ZeroWhenStudentMatchesTeacher) {
  Matrix s(2, 3, {1, 2, 3, 4, 5, 6});
  auto res = DistillationMse(s, s);
  EXPECT_DOUBLE_EQ(res.loss, 0.0);
  EXPECT_FLOAT_EQ(res.grad.AbsMax(), 0.0f);
}

TEST(DistillationMseTest, LossAndGradient) {
  Matrix s(1, 2, {1, 1});
  Matrix t(1, 2, {0, 0});
  auto res = DistillationMse(s, t);
  EXPECT_NEAR(res.loss, 2.0, 1e-6);  // ||s - t||^2 / batch
  EXPECT_NEAR(res.grad.At(0, 0), 2.0, 1e-6);
}

TEST(DistillationMseTest, GradientMatchesFiniteDifference) {
  Matrix s(2, 4, {0.1f, 0.2f, -0.3f, 0.4f, -0.5f, 0.6f, 0.7f, -0.8f});
  Matrix t(2, 4, {0.0f, 0.1f, 0.1f, 0.3f, -0.2f, 0.5f, 0.9f, -0.6f});
  auto check = CheckInputGradient(
      s,
      [&](const Matrix& input, Matrix* grad) {
        auto res = DistillationMse(input, t);
        *grad = res.grad;
        return res.loss;
      },
      1e-3, 8);
  EXPECT_TRUE(check.Passed(5e-2)) << "rel err " << check.max_rel_error;
}

TEST(DistillationCosineTest, AlignedDirectionsGiveZero) {
  Matrix s(1, 2, {2, 0});
  Matrix t(1, 2, {5, 0});  // same direction, different scale
  auto res = DistillationCosine(s, t);
  EXPECT_NEAR(res.loss, 0.0, 1e-6);
}

TEST(DistillationCosineTest, OppositeDirectionsGiveTwo) {
  Matrix s(1, 2, {1, 0});
  Matrix t(1, 2, {-1, 0});
  auto res = DistillationCosine(s, t);
  EXPECT_NEAR(res.loss, 2.0, 1e-6);
}

TEST(DistillationCosineTest, GradientMatchesFiniteDifference) {
  Matrix s(2, 3, {0.5f, -0.3f, 0.8f, 0.2f, 0.9f, -0.4f});
  Matrix t(2, 3, {0.4f, -0.1f, 0.7f, -0.3f, 0.8f, 0.1f});
  auto check = CheckInputGradient(
      s,
      [&](const Matrix& input, Matrix* grad) {
        auto res = DistillationCosine(input, t);
        *grad = res.grad;
        return res.loss;
      },
      1e-3, 6);
  EXPECT_TRUE(check.Passed(5e-2)) << "rel err " << check.max_rel_error;
}

}  // namespace
}  // namespace magneto::nn
