#include "nn/linear.h"

#include <gtest/gtest.h>

namespace magneto::nn {
namespace {

TEST(LinearTest, ForwardComputesAffineMap) {
  Linear layer(2, 3);
  // W = [[1,2,3],[4,5,6]], b = [0.5, -0.5, 1]
  layer.weight() = Matrix(2, 3, {1, 2, 3, 4, 5, 6});
  layer.bias() = Matrix(1, 3, {0.5f, -0.5f, 1.0f});
  Matrix x(1, 2, {1, 2});
  Matrix y;
  layer.Forward(x, /*training=*/false, /*state=*/nullptr, &y);
  EXPECT_FLOAT_EQ(y.At(0, 0), 1 + 8 + 0.5f);
  EXPECT_FLOAT_EQ(y.At(0, 1), 2 + 10 - 0.5f);
  EXPECT_FLOAT_EQ(y.At(0, 2), 3 + 12 + 1.0f);
}

TEST(LinearTest, ForwardBatches) {
  Linear layer(2, 2);
  layer.weight() = Matrix(2, 2, {1, 0, 0, 1});  // identity
  Matrix x(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix y;
  layer.Forward(x, /*training=*/false, /*state=*/nullptr, &y);
  EXPECT_EQ(y.rows(), 3u);
  EXPECT_FLOAT_EQ(y.At(2, 1), 6.0f);
}

TEST(LinearTest, BackwardShapesAndGradients) {
  Linear layer(2, 2);
  layer.weight() = Matrix(2, 2, {1, 2, 3, 4});
  Matrix x(1, 2, {1, 1});
  LayerState state;
  Matrix y;
  layer.Forward(x, /*training=*/true, &state, &y);
  Matrix grad_out(1, 2, {1, 0});
  Matrix grad_in;
  layer.Backward(grad_out, x, y, &state, &grad_in);
  // dL/dx = grad_out * W^T = [1*1+0*2, 1*3+0*4] = [1, 3]
  EXPECT_FLOAT_EQ(grad_in.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(grad_in.At(0, 1), 3.0f);
  // dL/dW = x^T grad_out = [[1,0],[1,0]]
  EXPECT_FLOAT_EQ(layer.Grads()[0]->At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(layer.Grads()[0]->At(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(layer.Grads()[0]->At(1, 0), 1.0f);
  // dL/db = grad_out col-sum
  EXPECT_FLOAT_EQ(layer.Grads()[1]->At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(layer.Grads()[1]->At(0, 1), 0.0f);
}

TEST(LinearTest, GradientsAccumulateAcrossBackwardCalls) {
  Linear layer(1, 1);
  layer.weight() = Matrix(1, 1, {2});
  Matrix x(1, 1, {3});
  LayerState state;
  Matrix y;
  Matrix grad_in;
  layer.Forward(x, /*training=*/true, &state, &y);
  layer.Backward(Matrix(1, 1, {1}), x, y, &state, &grad_in);
  layer.Forward(x, /*training=*/true, &state, &y);
  layer.Backward(Matrix(1, 1, {1}), x, y, &state, &grad_in);
  EXPECT_FLOAT_EQ(layer.Grads()[0]->At(0, 0), 6.0f);  // 3 + 3
  layer.ZeroGrad();
  EXPECT_FLOAT_EQ(layer.Grads()[0]->At(0, 0), 0.0f);
}

TEST(LinearTest, HeInitialisationIsBoundedAndNonZero) {
  Rng rng(1);
  Linear layer(100, 50, &rng);
  const double limit = std::sqrt(6.0 / 100.0);
  bool any_nonzero = false;
  for (size_t i = 0; i < layer.weight().size(); ++i) {
    const float w = layer.weight().data()[i];
    EXPECT_LE(std::fabs(w), limit + 1e-6);
    any_nonzero = any_nonzero || w != 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
  // Bias starts at zero.
  for (size_t i = 0; i < layer.bias().size(); ++i) {
    EXPECT_FLOAT_EQ(layer.bias().data()[i], 0.0f);
  }
}

TEST(LinearTest, CloneCopiesParametersDeeply) {
  Rng rng(2);
  Linear layer(3, 3, &rng);
  auto clone = layer.Clone();
  auto* cloned = static_cast<Linear*>(clone.get());
  EXPECT_FLOAT_EQ(cloned->weight().At(1, 1), layer.weight().At(1, 1));
  layer.weight().At(1, 1) += 5.0f;
  EXPECT_NE(cloned->weight().At(1, 1), layer.weight().At(1, 1));
}

TEST(LinearTest, SerializationRoundTrip) {
  Rng rng(3);
  Linear layer(4, 2, &rng);
  layer.bias() = Matrix(1, 2, {1.5f, -2.5f});
  BinaryWriter w;
  layer.Serialize(&w);
  BinaryReader r(w.buffer());
  ASSERT_EQ(r.ReadU8().value(), static_cast<uint8_t>(LayerType::kLinear));
  auto back = Linear::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value()->in_dim(), 4u);
  EXPECT_EQ(back.value()->out_dim(), 2u);
  for (size_t i = 0; i < layer.weight().size(); ++i) {
    EXPECT_FLOAT_EQ(back.value()->weight().data()[i],
                    layer.weight().data()[i]);
  }
  EXPECT_FLOAT_EQ(back.value()->bias().At(0, 1), -2.5f);
}

TEST(LinearTest, DeserializeRejectsPayloadMismatch) {
  BinaryWriter w;
  w.WriteU64(2);
  w.WriteU64(2);
  w.WriteF32Vector({1.0f});  // should be 4 weights
  w.WriteF32Vector({0.0f, 0.0f});
  BinaryReader r(w.buffer());
  EXPECT_FALSE(Linear::Deserialize(&r).ok());
}

TEST(LinearTest, NameDescribesShape) {
  Linear layer(80, 128);
  EXPECT_EQ(layer.name(), "Linear(80->128)");
  EXPECT_EQ(layer.output_dim(80), 128u);
}

}  // namespace
}  // namespace magneto::nn
