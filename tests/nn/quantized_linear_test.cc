#include "nn/quantized_linear.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/sequential.h"

namespace magneto::nn {
namespace {

Linear RandomLinear(size_t in, size_t out, uint64_t seed) {
  Rng rng(seed);
  return Linear(in, out, &rng);
}

TEST(QuantizedMatrixTest, RoundTripErrorBounded) {
  Rng rng(1);
  Matrix w(20, 10);
  for (size_t i = 0; i < w.size(); ++i) {
    w.data()[i] = static_cast<float>(rng.Normal(0.0, 0.5));
  }
  QuantizedMatrix q = QuantizedMatrix::Quantize(w);
  Matrix back = q.Dequantize();
  // Symmetric int8: error per weight <= scale/2 = max|col| / 254.
  for (size_t j = 0; j < w.cols(); ++j) {
    float max_abs = 0.0f;
    for (size_t i = 0; i < w.rows(); ++i) {
      max_abs = std::max(max_abs, std::fabs(w.At(i, j)));
    }
    for (size_t i = 0; i < w.rows(); ++i) {
      EXPECT_LE(std::fabs(back.At(i, j) - w.At(i, j)),
                max_abs / 254.0f + 1e-6f);
    }
  }
}

TEST(QuantizedMatrixTest, ZeroMatrixSafe) {
  Matrix w(3, 3);
  QuantizedMatrix q = QuantizedMatrix::Quantize(w);
  Matrix back = q.Dequantize();
  EXPECT_FLOAT_EQ(back.AbsMax(), 0.0f);
}

TEST(QuantizedMatrixTest, PayloadIsRoughlyQuarter) {
  Matrix w(100, 100);
  QuantizedMatrix q = QuantizedMatrix::Quantize(w);
  EXPECT_EQ(q.data.size(), 10000u);
  EXPECT_LT(q.PayloadBytes(), 100u * 100u * sizeof(float) / 3);
}

TEST(QuantizedLinearTest, ForwardTracksFp32Layer) {
  Linear fp32 = RandomLinear(16, 8, 2);
  QuantizedLinear q(fp32);
  Rng rng(3);
  Matrix x(4, 16);
  for (size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  Matrix y_fp, y_q;
  fp32.Forward(x, /*training=*/false, /*state=*/nullptr, &y_fp);
  q.Forward(x, /*training=*/false, /*state=*/nullptr, &y_q);
  ASSERT_TRUE(y_fp.SameShape(y_q));
  const float scale = y_fp.AbsMax();
  for (size_t i = 0; i < y_fp.size(); ++i) {
    EXPECT_NEAR(y_q.data()[i], y_fp.data()[i], 0.02f * scale + 1e-4f);
  }
}

TEST(QuantizedLinearTest, MaxWeightErrorSmall) {
  Linear fp32 = RandomLinear(32, 16, 4);
  QuantizedLinear q(fp32);
  EXPECT_LT(q.MaxWeightError(fp32), fp32.weight().AbsMax() / 100.0f);
}

TEST(QuantizedLinearTest, SerializationRoundTrip) {
  Linear fp32 = RandomLinear(6, 4, 5);
  QuantizedLinear q(fp32);
  BinaryWriter w;
  q.Serialize(&w);
  BinaryReader r(w.buffer());
  ASSERT_EQ(r.ReadU8().value(), kQuantizedLinearTag);
  auto back = QuantizedLinear::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  Matrix x(2, 6);
  x.Fill(0.5f);
  Matrix y1, y2;
  q.Forward(x, /*training=*/false, /*state=*/nullptr, &y1);
  back.value()->Forward(x, /*training=*/false, /*state=*/nullptr, &y2);
  for (size_t i = 0; i < y1.size(); ++i) {
    EXPECT_FLOAT_EQ(y1.data()[i], y2.data()[i]);
  }
}

TEST(QuantizedLinearTest, SequentialDeserializesQuantizedTag) {
  Rng rng(6);
  Sequential net;
  net.Add(std::make_unique<QuantizedLinear>(RandomLinear(5, 3, 7)));
  BinaryWriter w;
  net.Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = Sequential::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_layers(), 1u);
  EXPECT_EQ(back.value().InputDim(), 5u);
}

TEST(QuantizedLinearTest, CloneIsIndependentCopy) {
  QuantizedLinear q(RandomLinear(4, 4, 8));
  auto clone = q.Clone();
  Matrix x(1, 4);
  x.Fill(1.0f);
  Matrix y1, y2;
  q.Forward(x, /*training=*/false, /*state=*/nullptr, &y1);
  clone->Forward(x, /*training=*/false, /*state=*/nullptr, &y2);
  for (size_t i = 0; i < y1.size(); ++i) {
    EXPECT_FLOAT_EQ(y1.data()[i], y2.data()[i]);
  }
}

TEST(QuantizedLinearDeathTest, BackwardAborts) {
  QuantizedLinear q(RandomLinear(4, 4, 9));
  Matrix x(1, 4);
  Matrix y;
  q.Forward(x, /*training=*/true, /*state=*/nullptr, &y);
  Matrix grad_in;
  EXPECT_DEATH(q.Backward(Matrix(1, 4), x, y, nullptr, &grad_in),
               "inference-only");
}

TEST(QuantizedLinearTest, DeserializeRejectsSizeMismatch) {
  BinaryWriter w;
  w.WriteU64(4);
  w.WriteU64(4);
  w.WriteI8Vector(std::vector<int8_t>(7));  // should be 16
  w.WriteF32Vector(std::vector<float>(4));
  w.WriteF32Vector(std::vector<float>(4));
  BinaryReader r(w.buffer());
  EXPECT_FALSE(QuantizedLinear::Deserialize(&r).ok());
}

}  // namespace
}  // namespace magneto::nn
