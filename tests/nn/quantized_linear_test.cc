#include "nn/quantized_linear.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/qgemm.h"
#include "nn/sequential.h"

namespace magneto::nn {
namespace {

Linear RandomLinear(size_t in, size_t out, uint64_t seed) {
  Rng rng(seed);
  return Linear(in, out, &rng);
}

QuantizedMatrix MustQuantize(const Matrix& w) {
  auto q = QuantizedMatrix::Quantize(w);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

std::unique_ptr<QuantizedLinear> MustFromLinear(const Linear& source) {
  auto q = QuantizedLinear::FromLinear(source);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed,
                    double stddev = 1.0) {
  Rng rng(seed);
  Matrix x(rows, cols);
  for (size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return x;
}

TEST(QuantizedMatrixTest, RoundTripErrorBounded) {
  Matrix w = RandomMatrix(20, 10, 1, 0.5);
  QuantizedMatrix q = MustQuantize(w);
  Matrix back = q.Dequantize();
  // Symmetric int8: error per weight <= scale/2 = max|col| / 254.
  for (size_t j = 0; j < w.cols(); ++j) {
    float max_abs = 0.0f;
    for (size_t i = 0; i < w.rows(); ++i) {
      max_abs = std::max(max_abs, std::fabs(w.At(i, j)));
    }
    for (size_t i = 0; i < w.rows(); ++i) {
      EXPECT_LE(std::fabs(back.At(i, j) - w.At(i, j)),
                max_abs / 254.0f + 1e-6f);
    }
  }
}

TEST(QuantizedMatrixTest, ZeroMatrixSafe) {
  Matrix w(3, 3);
  QuantizedMatrix q = MustQuantize(w);
  Matrix back = q.Dequantize();
  EXPECT_FLOAT_EQ(back.AbsMax(), 0.0f);
}

TEST(QuantizedMatrixTest, PayloadIsRoughlyQuarter) {
  Matrix w(100, 100);
  QuantizedMatrix q = MustQuantize(w);
  EXPECT_EQ(q.data.size(), 10000u);
  EXPECT_LT(q.PayloadBytes(), 100u * 100u * sizeof(float) / 3);
}

TEST(QuantizedMatrixTest, RejectsNonFiniteWeights) {
  for (float bad : {std::numeric_limits<float>::quiet_NaN(),
                    std::numeric_limits<float>::infinity(),
                    -std::numeric_limits<float>::infinity()}) {
    Matrix w = RandomMatrix(4, 4, 2);
    w.At(1, 2) = bad;
    auto q = QuantizedMatrix::Quantize(w);
    EXPECT_FALSE(q.ok());
    EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(QuantizedLinearTest, FromLinearRejectsNonFiniteWeights) {
  Linear fp32 = RandomLinear(4, 3, 11);
  fp32.weight().At(0, 0) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(QuantizedLinear::FromLinear(fp32).ok());
}

TEST(QuantizedLinearTest, ForwardTracksFp32Layer) {
  Linear fp32 = RandomLinear(16, 8, 2);
  auto q = MustFromLinear(fp32);
  Matrix x = RandomMatrix(4, 16, 3);
  Matrix y_fp, y_q;
  fp32.Forward(x, /*training=*/false, /*state=*/nullptr, &y_fp);
  q->Forward(x, /*training=*/false, /*state=*/nullptr, &y_q);
  ASSERT_TRUE(y_fp.SameShape(y_q));
  // Both the weights and (dynamically) the activations are int8 now, so the
  // tolerance covers two quantization stages.
  const float scale = y_fp.AbsMax();
  for (size_t i = 0; i < y_fp.size(); ++i) {
    EXPECT_NEAR(y_q.data()[i], y_fp.data()[i], 0.03f * scale + 1e-3f);
  }
}

// The determinism contract: the int8 kernel path produces identical bytes at
// every thread count (exact integer accumulation + fixed scale-fold
// sequence). The kernel-vs-serial-reference bit comparison lives in
// qgemm_test; here we also pin the fp32-dequant mode within tolerance.
TEST(QuantizedLinearTest, KernelBitIdenticalAcrossThreads) {
  Linear fp32 = RandomLinear(96, 40, 12);
  auto q = MustFromLinear(fp32);
  Matrix x = RandomMatrix(17, 96, 13, 2.0);

  const size_t saved_threads = ParallelThreads();
  SetQGemmEnabled(true);
  SetParallelThreads(1);
  Matrix y_anchor;
  q->Forward(x, /*training=*/false, /*state=*/nullptr, &y_anchor);
  for (size_t threads : {size_t{2}, size_t{5}, size_t{8}}) {
    SetParallelThreads(threads);
    Matrix y;
    q->Forward(x, /*training=*/false, /*state=*/nullptr, &y);
    ASSERT_TRUE(y.SameShape(y_anchor));
    for (size_t i = 0; i < y.size(); ++i) {
      ASSERT_EQ(y.data()[i], y_anchor.data()[i])
          << "mismatch at " << i << " with " << threads << " threads";
    }
  }
  SetParallelThreads(saved_threads);

  // MAGNETO_QGEMM=off: serial fp32-dequant reference. No activation
  // quantization there, so the int8 path must stay within the per-row
  // quantization tolerance of it.
  SetQGemmEnabled(false);
  Matrix y_ref;
  q->Forward(x, /*training=*/false, /*state=*/nullptr, &y_ref);
  SetQGemmEnabled(true);
  ASSERT_TRUE(y_ref.SameShape(y_anchor));
  const float scale = y_ref.AbsMax();
  for (size_t i = 0; i < y_ref.size(); ++i) {
    EXPECT_NEAR(y_anchor.data()[i], y_ref.data()[i], 0.02f * scale + 1e-3f);
  }
}

TEST(QuantizedLinearTest, MaxWeightErrorSmall) {
  Linear fp32 = RandomLinear(32, 16, 4);
  auto q = MustFromLinear(fp32);
  EXPECT_LT(q->MaxWeightError(fp32), fp32.weight().AbsMax() / 100.0f);
}

TEST(QuantizedLinearTest, SerializationRoundTrip) {
  Linear fp32 = RandomLinear(6, 4, 5);
  auto q = MustFromLinear(fp32);
  BinaryWriter w;
  q->Serialize(&w);
  BinaryReader r(w.buffer());
  ASSERT_EQ(r.ReadU8().value(), kQuantizedLinearTag);
  auto back = QuantizedLinear::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  Matrix x(2, 6);
  x.Fill(0.5f);
  Matrix y1, y2;
  q->Forward(x, /*training=*/false, /*state=*/nullptr, &y1);
  back.value()->Forward(x, /*training=*/false, /*state=*/nullptr, &y2);
  for (size_t i = 0; i < y1.size(); ++i) {
    EXPECT_FLOAT_EQ(y1.data()[i], y2.data()[i]);
  }
}

TEST(QuantizedLinearTest, SequentialDeserializesQuantizedTag) {
  Sequential net;
  net.Add(MustFromLinear(RandomLinear(5, 3, 7)));
  BinaryWriter w;
  net.Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = Sequential::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_layers(), 1u);
  EXPECT_EQ(back.value().InputDim(), 5u);
}

TEST(QuantizedLinearTest, CloneIsIndependentCopy) {
  auto q = MustFromLinear(RandomLinear(4, 4, 8));
  auto clone = q->Clone();
  Matrix x(1, 4);
  x.Fill(1.0f);
  Matrix y1, y2;
  q->Forward(x, /*training=*/false, /*state=*/nullptr, &y1);
  clone->Forward(x, /*training=*/false, /*state=*/nullptr, &y2);
  for (size_t i = 0; i < y1.size(); ++i) {
    EXPECT_FLOAT_EQ(y1.data()[i], y2.data()[i]);
  }
}

TEST(QuantizedLinearDeathTest, BackwardAborts) {
  auto q = MustFromLinear(RandomLinear(4, 4, 9));
  Matrix x(1, 4);
  Matrix y;
  q->Forward(x, /*training=*/true, /*state=*/nullptr, &y);
  Matrix grad_in;
  EXPECT_DEATH(q->Backward(Matrix(1, 4), x, y, nullptr, &grad_in),
               "inference-only");
}

TEST(QuantizedLinearTest, DeserializeRejectsSizeMismatch) {
  BinaryWriter w;
  w.WriteU64(4);
  w.WriteU64(4);
  w.WriteI8Vector(std::vector<int8_t>(7));  // should be 16
  w.WriteF32Vector(std::vector<float>(4));
  w.WriteF32Vector(std::vector<float>(4));
  BinaryReader r(w.buffer());
  EXPECT_FALSE(QuantizedLinear::Deserialize(&r).ok());
}

// The allocate-before-validate regression: a corrupt length field must be
// rejected by comparing against the count the validated dims imply, before
// any allocation happens. The claimed count here is far beyond the actual
// buffer, and far beyond what 4x4 allows.
TEST(QuantizedLinearTest, DeserializeRejectsHostileLengthBeforeAllocating) {
  BinaryWriter w;
  w.WriteU64(4);
  w.WriteU64(4);
  w.WriteU64(uint64_t{1} << 40);  // weight element count: hostile
  BinaryReader r(w.buffer());
  auto result = QuantizedLinear::Deserialize(&r);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().ToString().find("expected"), std::string::npos);
}

TEST(QuantizedLinearTest, DeserializeRejectsBadScales) {
  const std::vector<float> bad_scales = {
      0.0f, -1.0f, std::numeric_limits<float>::quiet_NaN(),
      std::numeric_limits<float>::infinity()};
  for (float bad : bad_scales) {
    BinaryWriter w;
    w.WriteU64(4);
    w.WriteU64(4);
    w.WriteI8Vector(std::vector<int8_t>(16, 1));
    std::vector<float> scales(4, 0.5f);
    scales[2] = bad;
    w.WriteF32Vector(scales);
    w.WriteF32Vector(std::vector<float>(4));
    BinaryReader r(w.buffer());
    auto result = QuantizedLinear::Deserialize(&r);
    ASSERT_FALSE(result.ok()) << "scale " << bad << " accepted";
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  }
}

TEST(QuantizedLinearTest, DeserializeRejectsNonFiniteBias) {
  BinaryWriter w;
  w.WriteU64(4);
  w.WriteU64(4);
  w.WriteI8Vector(std::vector<int8_t>(16, 1));
  w.WriteF32Vector(std::vector<float>(4, 0.5f));
  std::vector<float> bias(4, 0.0f);
  bias[1] = std::numeric_limits<float>::quiet_NaN();
  w.WriteF32Vector(bias);
  BinaryReader r(w.buffer());
  EXPECT_FALSE(QuantizedLinear::Deserialize(&r).ok());
}

// Every truncation point of a valid payload must yield a status, not a
// crash or an oversized allocation.
TEST(QuantizedLinearTest, DeserializeSurvivesEveryTruncation) {
  auto q = MustFromLinear(RandomLinear(6, 5, 21));
  BinaryWriter w;
  q->Serialize(&w);
  const std::string& full = w.buffer();
  const size_t payload = full.size() - 1;  // skip the tag byte
  for (size_t len = 0; len < payload; ++len) {
    BinaryReader r(full.data() + 1, len);
    EXPECT_FALSE(QuantizedLinear::Deserialize(&r).ok())
        << "truncated to " << len << " accepted";
  }
}

}  // namespace
}  // namespace magneto::nn
