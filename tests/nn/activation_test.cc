#include "nn/activation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/dropout.h"

namespace magneto::nn {
namespace {

TEST(ReluTest, ForwardClampsNegatives) {
  Relu relu;
  Matrix x(1, 4, {-2, -0.5f, 0, 3});
  Matrix y;
  relu.Forward(x, /*training=*/false, /*state=*/nullptr, &y);
  EXPECT_FLOAT_EQ(y.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.At(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(y.At(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(y.At(0, 3), 3.0f);
}

TEST(ReluTest, BackwardGatesOnInputSign) {
  Relu relu;
  Matrix x(1, 3, {-1, 0, 2});
  Matrix y;
  relu.Forward(x, /*training=*/true, /*state=*/nullptr, &y);
  Matrix g(1, 3, {5, 5, 5});
  Matrix gx;
  relu.Backward(g, x, y, /*state=*/nullptr, &gx);
  EXPECT_FLOAT_EQ(gx.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(gx.At(0, 1), 0.0f);  // zero input blocks gradient
  EXPECT_FLOAT_EQ(gx.At(0, 2), 5.0f);
}

TEST(TanhTest, ForwardAndBackward) {
  Tanh tanh_layer;
  Matrix x(1, 2, {0.0f, 1.0f});
  Matrix y;
  tanh_layer.Forward(x, /*training=*/false, /*state=*/nullptr, &y);
  EXPECT_FLOAT_EQ(y.At(0, 0), 0.0f);
  EXPECT_NEAR(y.At(0, 1), std::tanh(1.0), 1e-6);
  Matrix g(1, 2, {1, 1});
  Matrix gx;
  tanh_layer.Backward(g, x, y, /*state=*/nullptr, &gx);
  EXPECT_NEAR(gx.At(0, 0), 1.0, 1e-6);  // 1 - tanh(0)^2
  EXPECT_NEAR(gx.At(0, 1), 1.0 - std::tanh(1.0) * std::tanh(1.0), 1e-6);
}

TEST(SigmoidTest, ForwardAndBackward) {
  Sigmoid sig;
  Matrix x(1, 2, {0.0f, 100.0f});
  Matrix y;
  sig.Forward(x, /*training=*/false, /*state=*/nullptr, &y);
  EXPECT_NEAR(y.At(0, 0), 0.5, 1e-6);
  EXPECT_NEAR(y.At(0, 1), 1.0, 1e-6);  // saturates without overflow
  Matrix g(1, 2, {1, 1});
  Matrix gx;
  sig.Backward(g, x, y, /*state=*/nullptr, &gx);
  EXPECT_NEAR(gx.At(0, 0), 0.25, 1e-6);
  EXPECT_NEAR(gx.At(0, 1), 0.0, 1e-6);
}

TEST(DropoutTest, InferenceIsIdentity) {
  Dropout dropout(0.5, 1);
  Matrix x(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix y;
  dropout.Forward(x, /*training=*/false, /*state=*/nullptr, &y);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
  }
}

TEST(DropoutTest, TrainingZeroesAndRescales) {
  Dropout dropout(0.5, 7);
  Matrix x(1, 1000);
  x.Fill(1.0f);
  LayerState state;
  Matrix y;
  dropout.Forward(x, /*training=*/true, &state, &y);
  size_t zeros = 0;
  for (size_t i = 0; i < y.size(); ++i) {
    if (y.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y.data()[i], 2.0f);  // 1 / (1 - 0.5)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.size(), 0.5, 0.06);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Dropout dropout(0.3, 11);
  Matrix x(1, 100);
  x.Fill(1.0f);
  LayerState state;
  Matrix y;
  dropout.Forward(x, /*training=*/true, &state, &y);
  Matrix g(1, 100);
  g.Fill(1.0f);
  Matrix gx;
  dropout.Backward(g, x, y, &state, &gx);
  for (size_t i = 0; i < y.size(); ++i) {
    // Gradient flows exactly where the forward pass kept the unit.
    EXPECT_FLOAT_EQ(gx.data()[i], y.data()[i]);
  }
}

TEST(DropoutTest, ZeroProbabilityIsIdentityEvenInTraining) {
  Dropout dropout(0.0, 3);
  Matrix x(1, 10, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  LayerState state;
  Matrix y;
  dropout.Forward(x, /*training=*/true, &state, &y);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
  }
}

TEST(DropoutTest, SerializationRoundTrip) {
  Dropout dropout(0.25, 99);
  BinaryWriter w;
  dropout.Serialize(&w);
  BinaryReader r(w.buffer());
  ASSERT_EQ(r.ReadU8().value(), static_cast<uint8_t>(LayerType::kDropout));
  auto back = Dropout::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back.value()->p(), 0.25);
}

}  // namespace
}  // namespace magneto::nn
