#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace magneto::nn {
namespace {

/// Quadratic bowl f(p) = 0.5 * ||p - target||^2; gradient = p - target.
struct Bowl {
  explicit Bowl(const std::vector<float>& target_values)
      : param(1, target_values.size()),
        grad(1, target_values.size()),
        target(1, target_values.size(), target_values) {}

  void ComputeGrad() {
    grad = param;
    grad.SubInPlace(target);
  }

  double Loss() const {
    Matrix diff = param;
    diff.SubInPlace(target);
    return 0.5 * diff.SumOfSquares();
  }

  Matrix param;
  Matrix grad;
  Matrix target;
};

TEST(SgdTest, ConvergesOnQuadratic) {
  Bowl bowl({3.0f, -2.0f, 0.5f});
  Sgd::Options options;
  options.learning_rate = 0.1;
  Sgd sgd({&bowl.param}, {&bowl.grad}, options);
  for (int i = 0; i < 200; ++i) {
    sgd.ZeroGrad();
    bowl.ComputeGrad();
    sgd.Step();
  }
  EXPECT_LT(bowl.Loss(), 1e-8);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  Bowl plain({10.0f});
  Bowl with_momentum({10.0f});
  Sgd::Options slow;
  slow.learning_rate = 0.01;
  Sgd sgd_plain({&plain.param}, {&plain.grad}, slow);
  Sgd::Options fast = slow;
  fast.momentum = 0.9;
  Sgd sgd_momentum({&with_momentum.param}, {&with_momentum.grad}, fast);
  for (int i = 0; i < 50; ++i) {
    plain.ComputeGrad();
    sgd_plain.Step();
    with_momentum.ComputeGrad();
    sgd_momentum.Step();
  }
  EXPECT_LT(with_momentum.Loss(), plain.Loss());
}

TEST(SgdTest, WeightDecayShrinksParameters) {
  Matrix p(1, 1, {1.0f});
  Matrix g(1, 1, {0.0f});  // no gradient, only decay
  Sgd::Options options;
  options.learning_rate = 0.1;
  options.weight_decay = 0.5;
  Sgd sgd({&p}, {&g}, options);
  sgd.Step();
  EXPECT_NEAR(p.At(0, 0), 1.0f * (1.0f - 0.1f * 0.5f), 1e-6);
}

TEST(SgdTest, StepScalesWithLearningRate) {
  Matrix p(1, 1, {0.0f});
  Matrix g(1, 1, {1.0f});
  Sgd::Options options;
  options.learning_rate = 0.25;
  Sgd sgd({&p}, {&g}, options);
  sgd.Step();
  EXPECT_FLOAT_EQ(p.At(0, 0), -0.25f);
  sgd.set_learning_rate(0.5);
  sgd.Step();
  EXPECT_FLOAT_EQ(p.At(0, 0), -0.75f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Bowl bowl({5.0f, -7.0f});
  Adam::Options options;
  options.learning_rate = 0.1;
  Adam adam({&bowl.param}, {&bowl.grad}, options);
  for (int i = 0; i < 500; ++i) {
    adam.ZeroGrad();
    bowl.ComputeGrad();
    adam.Step();
  }
  EXPECT_LT(bowl.Loss(), 1e-4);
}

TEST(AdamTest, FirstStepIsApproximatelyLearningRate) {
  // With bias correction, the first Adam step has magnitude ~lr regardless of
  // gradient scale.
  for (float scale : {0.001f, 1.0f, 1000.0f}) {
    Matrix p(1, 1, {0.0f});
    Matrix g(1, 1, {scale});
    Adam::Options options;
    options.learning_rate = 0.1;
    Adam adam({&p}, {&g}, options);
    adam.Step();
    EXPECT_NEAR(p.At(0, 0), -0.1f, 1e-3) << "gradient scale " << scale;
  }
}

TEST(AdamTest, HandlesSparseGradients) {
  // Adam keeps moving (from moment estimates) even when a step's gradient is
  // zero; this just checks no NaN/instability appears.
  Matrix p(1, 2, {1.0f, 1.0f});
  Matrix g(1, 2);
  Adam adam({&p}, {&g}, Adam::Options{});
  for (int i = 0; i < 10; ++i) {
    g.Fill(i % 2 == 0 ? 1.0f : 0.0f);
    adam.Step();
  }
  EXPECT_TRUE(std::isfinite(p.At(0, 0)));
  EXPECT_LT(p.At(0, 0), 1.0f);
}

TEST(OptimizerTest, ZeroGradClearsBuffers) {
  Matrix p(2, 2);
  Matrix g(2, 2);
  g.Fill(3.0f);
  Sgd sgd({&p}, {&g}, Sgd::Options{});
  sgd.ZeroGrad();
  EXPECT_FLOAT_EQ(g.AbsMax(), 0.0f);
}

TEST(OptimizerDeathTest, MismatchedShapesAbort) {
  Matrix p(2, 2);
  Matrix g(2, 3);
  EXPECT_DEATH(Sgd({&p}, {&g}, Sgd::Options{}), "Check failed");
}

}  // namespace
}  // namespace magneto::nn
