#include "nn/sequential.h"

#include <gtest/gtest.h>

#include "nn/activation.h"
#include "nn/linear.h"
#include "preprocess/features.h"

namespace magneto::nn {
namespace {

Sequential SmallNet(uint64_t seed) {
  Rng rng(seed);
  return BuildMlp(4, {8, 3}, &rng);
}

TEST(SequentialTest, BuildMlpLayerLayout) {
  Rng rng(1);
  Sequential net = BuildMlp(10, {20, 5}, &rng);
  // Linear, ReLU, Linear.
  ASSERT_EQ(net.num_layers(), 3u);
  EXPECT_EQ(net.layer(0).type(), LayerType::kLinear);
  EXPECT_EQ(net.layer(1).type(), LayerType::kRelu);
  EXPECT_EQ(net.layer(2).type(), LayerType::kLinear);
}

TEST(SequentialTest, BuildMlpWithDropout) {
  Rng rng(1);
  Sequential net = BuildMlp(10, {20, 20, 5}, &rng, 0.1);
  // Linear, ReLU, Dropout, Linear, ReLU, Dropout, Linear.
  ASSERT_EQ(net.num_layers(), 7u);
  EXPECT_EQ(net.layer(2).type(), LayerType::kDropout);
}

TEST(SequentialTest, PaperBackboneShape) {
  Rng rng(1);
  Sequential net = BuildPaperBackbone(&rng);
  size_t dim = preprocess::kNumFeatures;
  for (size_t i = 0; i < net.num_layers(); ++i) {
    dim = net.layer(i).output_dim(dim);
  }
  EXPECT_EQ(dim, 128u);  // paper embedding dim
  // 80*1024+1024 + 1024*512+512 + 512*128+128 + 128*64+64 + 64*128+128
  EXPECT_EQ(net.NumParameters(),
            80u * 1024 + 1024 + 1024 * 512 + 512 + 512 * 128 + 128 +
                128 * 64 + 64 + 64 * 128 + 128);
}

TEST(SequentialTest, ForwardProducesEmbedding) {
  Sequential net = SmallNet(2);
  Matrix x(5, 4);
  x.Fill(0.5f);
  ForwardWorkspace ws;
  const Matrix& y = net.Forward(x, &ws);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 3u);
}

TEST(SequentialTest, CloneIsIndependent) {
  Sequential net = SmallNet(3);
  Sequential clone = net.Clone();
  Matrix x(1, 4, {1, 2, 3, 4});
  ForwardWorkspace ws;
  Matrix y1 = net.Forward(x, &ws);
  Matrix y2 = clone.Forward(x, &ws);
  for (size_t i = 0; i < y1.size(); ++i) {
    EXPECT_FLOAT_EQ(y1.data()[i], y2.data()[i]);
  }
  // Mutating the original must not affect the clone.
  net.Params()[0]->Fill(0.0f);
  Matrix y3 = clone.Forward(x, &ws);
  for (size_t i = 0; i < y2.size(); ++i) {
    EXPECT_FLOAT_EQ(y3.data()[i], y2.data()[i]);
  }
}

TEST(SequentialTest, ParamsAndGradsAreParallel) {
  Sequential net = SmallNet(4);
  auto params = net.Params();
  auto grads = net.Grads();
  ASSERT_EQ(params.size(), grads.size());
  ASSERT_EQ(params.size(), 4u);  // 2 Linear layers x (W, b)
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_TRUE(params[i]->SameShape(*grads[i]));
  }
}

TEST(SequentialTest, BackwardFillsAllGradients) {
  Sequential net = SmallNet(5);
  Matrix x(2, 4);
  x.Fill(1.0f);
  ForwardWorkspace ws;
  const Matrix& y = net.Forward(x, &ws, /*training=*/true);
  Matrix g(y.rows(), y.cols());
  g.Fill(1.0f);
  net.Backward(g, &ws);
  bool any_nonzero = false;
  for (Matrix* grad : net.Grads()) {
    any_nonzero = any_nonzero || grad->AbsMax() > 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
  net.ZeroGrad();
  for (Matrix* grad : net.Grads()) {
    EXPECT_FLOAT_EQ(grad->AbsMax(), 0.0f);
  }
}

TEST(SequentialTest, SerializationRoundTripPreservesOutputs) {
  Rng rng(6);
  Sequential net = BuildMlp(6, {10, 4}, &rng, 0.2);
  BinaryWriter w;
  net.Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = Sequential::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().num_layers(), net.num_layers());

  Matrix x(3, 6);
  for (size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(i) * 0.1f;
  }
  // Inference mode: dropout inactive, outputs must match exactly.
  ForwardWorkspace ws;
  Matrix y1 = net.Forward(x, &ws);
  Matrix y2 = back.value().Forward(x, &ws);
  for (size_t i = 0; i < y1.size(); ++i) {
    EXPECT_FLOAT_EQ(y1.data()[i], y2.data()[i]);
  }
}

TEST(SequentialTest, DeserializeRejectsUnknownTag) {
  BinaryWriter w;
  w.WriteU64(1);
  w.WriteU8(200);  // bogus layer tag
  BinaryReader r(w.buffer());
  EXPECT_FALSE(Sequential::Deserialize(&r).ok());
}

TEST(SequentialTest, SummaryListsLayers) {
  Sequential net = SmallNet(7);
  const std::string summary = net.Summary();
  EXPECT_NE(summary.find("Linear(4->8)"), std::string::npos);
  EXPECT_NE(summary.find("ReLU"), std::string::npos);
  EXPECT_NE(summary.find("Linear(8->3)"), std::string::npos);
}

}  // namespace
}  // namespace magneto::nn
