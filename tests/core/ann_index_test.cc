#include "core/ann_index.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"

namespace magneto::core {
namespace {

/// `clusters` Gaussian blobs of `per_cluster` points in `dim` dimensions,
/// centers far apart relative to the blob radius.
Matrix MakeBlobs(size_t clusters, size_t per_cluster, size_t dim,
                 uint64_t seed, double spread = 0.05) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (size_t c = 0; c < clusters; ++c) {
    for (size_t j = 0; j < dim; ++j) {
      centers.At(c, j) = static_cast<float>(rng.Uniform(-1.0, 1.0));
    }
  }
  Matrix data(clusters * per_cluster, dim);
  for (size_t c = 0; c < clusters; ++c) {
    for (size_t i = 0; i < per_cluster; ++i) {
      for (size_t j = 0; j < dim; ++j) {
        data.At(c * per_cluster + i, j) =
            centers.At(c, j) + static_cast<float>(rng.Normal(0.0, spread));
      }
    }
  }
  return data;
}

uint32_t ExactNearest(const Matrix& data, const float* q) {
  uint32_t best = 0;
  float best_d = SquaredL2(q, data.RowPtr(0), data.cols());
  for (size_t i = 1; i < data.rows(); ++i) {
    const float d = SquaredL2(q, data.RowPtr(i), data.cols());
    if (d < best_d) {
      best_d = d;
      best = static_cast<uint32_t>(i);
    }
  }
  return best;
}

TEST(AnnIndexTest, BuildRejectsEmptyInput) {
  AnnOptions options;
  EXPECT_FALSE(AnnIndex::Build(Matrix(), options).ok());
  EXPECT_FALSE(AnnIndex::Build(Matrix(0, 4), options).ok());
}

TEST(AnnIndexTest, AutoNlistIsAboutSqrtN) {
  Matrix data = MakeBlobs(10, 40, 8, /*seed=*/1);
  AnnOptions options;
  auto index = AnnIndex::Build(data, options).value();
  EXPECT_EQ(index.num_vectors(), 400u);
  EXPECT_EQ(index.num_lists(), 20u);  // sqrt(400)
  EXPECT_GT(index.MemoryBytes(), 0u);
}

TEST(AnnIndexTest, FullProbeCoversEveryVectorExactlyOnce) {
  Matrix data = MakeBlobs(8, 25, 6, /*seed=*/2);
  AnnOptions options;
  options.nlist = 16;
  options.nprobe = 16;  // probe everything
  auto index = AnnIndex::Build(data, options).value();
  AnnIndex::Scratch scratch;
  std::vector<uint32_t> candidates;
  index.AppendCandidates(data.RowPtr(0), &scratch, &candidates);
  ASSERT_EQ(candidates.size(), data.rows());
  std::sort(candidates.begin(), candidates.end());
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(candidates[i], static_cast<uint32_t>(i));
  }
}

TEST(AnnIndexTest, CandidatesContainTrueNearestOnClusteredData) {
  const size_t clusters = 20;
  Matrix data = MakeBlobs(clusters, 30, 8, /*seed=*/3);
  AnnOptions options;
  options.nlist = clusters;
  options.nprobe = 4;
  auto index = AnnIndex::Build(data, options).value();

  Rng rng(7);
  AnnIndex::Scratch scratch;
  std::vector<uint32_t> candidates;
  size_t hits = 0;
  const size_t trials = 100;
  for (size_t t = 0; t < trials; ++t) {
    // Perturb a stored point: its cluster is the true neighbourhood.
    const size_t i = rng.Index(data.rows());
    std::vector<float> q(data.RowPtr(i), data.RowPtr(i) + data.cols());
    for (float& v : q) v += static_cast<float>(rng.Normal(0.0, 0.02));
    candidates.clear();
    index.AppendCandidates(q.data(), &scratch, &candidates);
    const uint32_t truth = ExactNearest(data, q.data());
    if (std::find(candidates.begin(), candidates.end(), truth) !=
        candidates.end()) {
      ++hits;
    }
  }
  // Well-separated blobs: the probed cells should almost always contain the
  // true nearest neighbour.
  EXPECT_GE(hits, trials * 95 / 100);
}

TEST(AnnIndexTest, DeterministicAcrossThreadCounts) {
  Matrix data = MakeBlobs(12, 40, 10, /*seed=*/4);
  AnnOptions options;
  options.nprobe = 3;

  std::vector<std::vector<uint32_t>> per_thread_results;
  for (size_t threads : {1u, 4u, 8u}) {
    SetParallelThreads(threads);
    auto index = AnnIndex::Build(data, options).value();
    AnnIndex::Scratch scratch;
    std::vector<uint32_t> flat;
    for (size_t i = 0; i < data.rows(); i += 17) {
      index.AppendCandidates(data.RowPtr(i), &scratch, &flat);
      flat.push_back(0xffffffffu);  // query separator
    }
    per_thread_results.push_back(std::move(flat));
  }
  SetParallelThreads(0);
  EXPECT_EQ(per_thread_results[0], per_thread_results[1]);
  EXPECT_EQ(per_thread_results[0], per_thread_results[2]);
}

TEST(AnnIndexTest, RebuildIsBitIdentical) {
  Matrix data = MakeBlobs(10, 30, 8, /*seed=*/5);
  AnnOptions options;
  auto a = AnnIndex::Build(data, options).value();
  auto b = AnnIndex::Build(data, options).value();
  AnnIndex::Scratch scratch;
  std::vector<uint32_t> ca, cb;
  for (size_t i = 0; i < data.rows(); i += 11) {
    a.AppendCandidates(data.RowPtr(i), &scratch, &ca);
    b.AppendCandidates(data.RowPtr(i), &scratch, &cb);
  }
  EXPECT_EQ(ca, cb);
}

TEST(AnnIndexTest, PqShortlistBoundsCandidatesAndKeepsTrueNearest) {
  const size_t clusters = 10;
  Matrix data = MakeBlobs(clusters, 60, 16, /*seed=*/6);
  AnnOptions options;
  options.nlist = clusters;
  options.nprobe = 3;
  options.use_pq = true;
  options.pq_subspaces = 4;
  options.pq_centroids = 16;
  options.pq_shortlist = 24;
  auto index = AnnIndex::Build(data, options).value();

  Rng rng(8);
  AnnIndex::Scratch scratch;
  std::vector<uint32_t> candidates;
  size_t hits = 0;
  const size_t trials = 60;
  for (size_t t = 0; t < trials; ++t) {
    const size_t i = rng.Index(data.rows());
    std::vector<float> q(data.RowPtr(i), data.RowPtr(i) + data.cols());
    for (float& v : q) v += static_cast<float>(rng.Normal(0.0, 0.01));
    candidates.clear();
    index.AppendCandidates(q.data(), &scratch, &candidates);
    EXPECT_LE(candidates.size(), options.pq_shortlist);
    EXPECT_GE(candidates.size(), 1u);
    const uint32_t truth = ExactNearest(data, q.data());
    if (std::find(candidates.begin(), candidates.end(), truth) !=
        candidates.end()) {
      ++hits;
    }
  }
  // ADC pre-ranking is approximate but must keep the true neighbour in the
  // shortlist essentially always on separated blobs.
  EXPECT_GE(hits, trials * 90 / 100);
}

TEST(AnnIndexTest, NonFiniteVectorsDoNotPoisonProbing) {
  Matrix data = MakeBlobs(6, 20, 4, /*seed=*/9);
  data.At(3, 0) = std::numeric_limits<float>::quiet_NaN();
  data.At(17, 1) = std::numeric_limits<float>::infinity();
  AnnOptions options;
  options.nprobe = 2;
  auto index = AnnIndex::Build(data, options).value();
  AnnIndex::Scratch scratch;
  std::vector<uint32_t> candidates;
  std::vector<float> q(4, std::numeric_limits<float>::quiet_NaN());
  index.AppendCandidates(q.data(), &scratch, &candidates);
  EXPECT_GE(candidates.size(), 1u);  // sanitized distances still rank lists
}

TEST(AnnIndexTest, ConcurrentSearchWithPerThreadScratch) {
  // The index is immutable after Build: concurrent AppendCandidates with
  // distinct scratches must agree with the serial answers (run under TSan
  // via check.sh's ANN leg).
  Matrix data = MakeBlobs(8, 30, 8, /*seed=*/10);
  AnnOptions options;
  options.nprobe = 2;
  auto index = AnnIndex::Build(data, options).value();

  std::vector<std::vector<uint32_t>> expected(8);
  AnnIndex::Scratch scratch;
  for (size_t i = 0; i < 8; ++i) {
    index.AppendCandidates(data.RowPtr(i * 19), &scratch, &expected[i]);
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      AnnIndex::Scratch local;
      std::vector<uint32_t> out;
      for (int rep = 0; rep < 50; ++rep) {
        const size_t i = static_cast<size_t>(rep) % 8;
        out.clear();
        index.AppendCandidates(data.RowPtr(i * 19), &local, &out);
        if (out != expected[i]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace magneto::core
