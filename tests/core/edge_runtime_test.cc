#include "core/edge_runtime.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "sensors/user_profile.h"
#include "testing/test_helpers.h"

namespace magneto::core {
namespace {

IncrementalOptions FastUpdateOptions() {
  IncrementalOptions options;
  options.train.epochs = 12;
  options.train.batch_size = 32;
  options.train.learning_rate = 1e-3;
  options.train.distill_weight = 1.0;
  options.train.seed = 7;
  return options;
}

EdgeRuntime MakeRuntime(uint64_t seed) {
  ModelBundle bundle = testing::SmallPretrainedBundle(seed);
  SupportSet support = std::move(bundle.support);
  EdgeModel model = std::move(bundle).ToEdgeModel();
  return EdgeRuntime(std::move(model), std::move(support),
                     FastUpdateOptions());
}

/// Feeds a whole recording frame by frame, returning emitted predictions.
std::vector<NamedPrediction> Stream(EdgeRuntime* runtime,
                                    const sensors::Recording& rec) {
  std::vector<NamedPrediction> out;
  for (size_t i = 0; i < rec.num_samples(); ++i) {
    sensors::Frame frame;
    for (size_t c = 0; c < sensors::kNumChannels; ++c) {
      frame[c] = rec.samples.At(i, c);
    }
    auto pred = runtime->PushFrame(frame);
    EXPECT_TRUE(pred.ok()) << pred.status();
    if (pred.ok() && pred.value().has_value()) {
      out.push_back(*pred.value());
    }
  }
  return out;
}

TEST(EdgeRuntimeTest, EmitsPredictionPerCompletedWindow) {
  EdgeRuntime runtime = MakeRuntime(401);
  sensors::SyntheticGenerator gen(1);
  sensors::Recording rec =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kStill], 3.0);
  auto preds = Stream(&runtime, rec);
  EXPECT_EQ(preds.size(), 3u);  // 360 frames / 120-sample windows
  EXPECT_EQ(runtime.stats().frames, 360u);
  EXPECT_EQ(runtime.stats().windows, 3u);
  EXPECT_EQ(runtime.stats().predictions, 3u);
  ASSERT_TRUE(runtime.last_prediction().has_value());
  EXPECT_EQ(runtime.last_prediction()->prediction.activity,
            preds.back().prediction.activity);
}

TEST(EdgeRuntimeTest, NoPredictionBeforeFirstFullWindow) {
  EdgeRuntime runtime = MakeRuntime(402);
  sensors::Frame frame{};
  for (int i = 0; i < 119; ++i) {
    auto pred = runtime.PushFrame(frame);
    ASSERT_TRUE(pred.ok());
    EXPECT_FALSE(pred.value().has_value());
  }
  auto pred = runtime.PushFrame(frame);
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(pred.value().has_value());
}

TEST(EdgeRuntimeTest, RecordingModeBuffersInsteadOfPredicting) {
  EdgeRuntime runtime = MakeRuntime(403);
  ASSERT_TRUE(runtime.StartRecording().ok());
  EXPECT_EQ(runtime.mode(), RuntimeMode::kRecording);
  sensors::Frame frame{};
  for (int i = 0; i < 240; ++i) {
    auto pred = runtime.PushFrame(frame);
    ASSERT_TRUE(pred.ok());
    EXPECT_FALSE(pred.value().has_value());
  }
  EXPECT_EQ(runtime.stats().predictions, 0u);
  EXPECT_NEAR(runtime.recorded_seconds(), 2.0, 1e-9);
  runtime.CancelRecording();
  EXPECT_EQ(runtime.mode(), RuntimeMode::kInference);
  EXPECT_NEAR(runtime.recorded_seconds(), 0.0, 1e-9);
}

TEST(EdgeRuntimeTest, DoubleStartRecordingFails) {
  EdgeRuntime runtime = MakeRuntime(404);
  ASSERT_TRUE(runtime.StartRecording().ok());
  EXPECT_EQ(runtime.StartRecording().code(), StatusCode::kFailedPrecondition);
}

TEST(EdgeRuntimeTest, FinishWithoutRecordingFails) {
  EdgeRuntime runtime = MakeRuntime(405);
  EXPECT_EQ(runtime.FinishRecordingAndLearn("X").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(runtime.FinishRecordingAndCalibrate("Walk").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(EdgeRuntimeTest, FullDemoLoopLearnsNewActivity) {
  // Figure 3 end-to-end: infer -> record gesture -> learn -> infer gesture.
  EdgeRuntime runtime = MakeRuntime(406);
  sensors::SyntheticGenerator gen(2);
  sensors::SignalModel gesture = sensors::MakeGestureModel(50);

  // (a/b) inference on a base activity works.
  sensors::Recording still =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kStill], 2.0);
  EXPECT_EQ(Stream(&runtime, still).size(), 2u);

  // (c) record ~25 s of the new gesture.
  ASSERT_TRUE(runtime.StartRecording().ok());
  sensors::Recording capture = gen.Generate(gesture, 25.0);
  EXPECT_TRUE(Stream(&runtime, capture).empty());

  // (d) on-device update.
  auto report = runtime.FinishRecordingAndLearn("Gesture Hi");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(runtime.mode(), RuntimeMode::kInference);
  EXPECT_EQ(runtime.stats().updates, 1u);

  // (e) the new activity is now recognised in the live stream.
  sensors::Recording fresh = gen.Generate(gesture, 6.0);
  auto preds = Stream(&runtime, fresh);
  ASSERT_EQ(preds.size(), 6u);
  size_t hits = 0;
  for (const auto& p : preds) {
    if (p.name == "Gesture Hi") ++hits;
  }
  EXPECT_GT(hits, 3u);
}

TEST(EdgeRuntimeTest, CalibrationViaRuntime) {
  EdgeRuntime runtime = MakeRuntime(407);
  sensors::UserProfile user(5, 0.7);
  sensors::SignalModel personal_walk =
      user.Personalize(sensors::DefaultActivityLibrary()[sensors::kWalk]);
  sensors::SyntheticGenerator gen(3);

  ASSERT_TRUE(runtime.StartRecording().ok());
  Stream(&runtime, gen.Generate(personal_walk, 20.0));
  auto report = runtime.FinishRecordingAndCalibrate("Walk");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().activity, sensors::kWalk);
  // Registry unchanged: calibration adds no class.
  EXPECT_EQ(runtime.model().registry().size(), 5u);
}

TEST(EdgeRuntimeTest, CalibrateUnknownNameFails) {
  EdgeRuntime runtime = MakeRuntime(408);
  ASSERT_TRUE(runtime.StartRecording().ok());
  sensors::Frame frame{};
  for (int i = 0; i < 240; ++i) {
    ASSERT_TRUE(runtime.PushFrame(frame).ok());
  }
  EXPECT_EQ(runtime.FinishRecordingAndCalibrate("NoSuch").status().code(),
            StatusCode::kNotFound);
}

TEST(EdgeRuntimeTest, OverlappingStrideEmitsMorePredictions) {
  ModelBundle bundle = testing::SmallPretrainedBundle(409);
  // Rebuild the pipeline with 50% overlap but reuse the fitted normaliser by
  // deserialising a modified config is intrusive; instead check the stride
  // plumbing on the default runtime: stride == window -> each frame belongs
  // to exactly one window.
  SupportSet support = std::move(bundle.support);
  EdgeModel model = std::move(bundle).ToEdgeModel();
  EdgeRuntime runtime(std::move(model), std::move(support),
                      FastUpdateOptions());
  sensors::Frame frame{};
  size_t emitted = 0;
  for (int i = 0; i < 600; ++i) {
    auto pred = runtime.PushFrame(frame);
    ASSERT_TRUE(pred.ok());
    if (pred.value().has_value()) ++emitted;
  }
  EXPECT_EQ(emitted, 5u);
}

TEST(EdgeRuntimeTest, GappedStrideSkipsFrames) {
  // stride > window: windows are sampled with gaps (duty-cycled sensing, a
  // real power-saving mode). With window 120 and stride 240, a 600-frame
  // stream yields windows at frames [0,120) and [240,360) and [480,600).
  ModelBundle bundle = testing::SmallPretrainedBundle(410);
  // Rewire the segmentation stride via serialization round trip of a
  // modified pipeline is heavyweight; instead build a runtime whose pipeline
  // was fitted with the gapped config from scratch.
  core::CloudConfig config = testing::SmallCloudConfig();
  config.pipeline.segmentation.window_samples = 120;
  config.pipeline.segmentation.stride = 240;
  core::CloudInitializer cloud(config);
  auto gapped = cloud.Initialize(testing::SmallCorpus(411),
                                 sensors::ActivityRegistry::BaseActivities());
  ASSERT_TRUE(gapped.ok());
  SupportSet support = std::move(gapped.value().support);
  EdgeModel model = std::move(gapped).value().ToEdgeModel();
  EdgeRuntime runtime(std::move(model), std::move(support),
                      FastUpdateOptions());

  sensors::Frame frame{};
  size_t emitted = 0;
  for (int i = 0; i < 600; ++i) {
    auto pred = runtime.PushFrame(frame);
    ASSERT_TRUE(pred.ok());
    if (pred.value().has_value()) ++emitted;
  }
  EXPECT_EQ(emitted, 3u);
}

TEST(EdgeRuntimeCheckpointTest, SaveAndRestoreRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "magneto_runtime_ckpt.magneto";
  EdgeRuntime runtime = MakeRuntime(420);
  sensors::SyntheticGenerator gen(9);
  sensors::Recording rec =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kWalk], 2.0);

  ASSERT_TRUE(runtime.SaveCheckpoint(path).ok());
  auto restored = EdgeRuntime::FromCheckpoint(path, FastUpdateOptions());
  ASSERT_TRUE(restored.ok()) << restored.status();

  // The restored runtime must predict exactly like the one that saved.
  auto original_preds = Stream(&runtime, rec);
  auto restored_preds = Stream(&restored.value(), rec);
  ASSERT_EQ(original_preds.size(), restored_preds.size());
  for (size_t i = 0; i < original_preds.size(); ++i) {
    EXPECT_EQ(original_preds[i].name, restored_preds[i].name);
    EXPECT_NEAR(original_preds[i].prediction.distance,
                restored_preds[i].prediction.distance, 1e-6);
  }
  std::remove(path.c_str());
}

TEST(EdgeRuntimeCheckpointTest, SecondSaveRotatesLastKnownGood) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "magneto_runtime_rotate.magneto";
  const std::string lkg = EdgeRuntime::LastKnownGoodPath(path);
  EXPECT_EQ(lkg, path + ".lkg");

  EdgeRuntime runtime = MakeRuntime(421);
  ASSERT_TRUE(runtime.SaveCheckpoint(path).ok());
  EXPECT_FALSE(std::filesystem::exists(lkg));  // nothing to rotate yet
  ASSERT_TRUE(runtime.SaveCheckpoint(path).ok());
  EXPECT_TRUE(std::filesystem::exists(lkg));
  EXPECT_TRUE(ModelBundle::LoadFromFile(lkg).ok());
  std::remove(path.c_str());
  std::remove(lkg.c_str());
}

TEST(EdgeRuntimeCheckpointTest, CorruptPrimaryFallsBackToLastKnownGood) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "magneto_runtime_fallback.magneto";
  const std::string lkg = EdgeRuntime::LastKnownGoodPath(path);
  EdgeRuntime runtime = MakeRuntime(422);
  ASSERT_TRUE(runtime.SaveCheckpoint(path).ok());
  ASSERT_TRUE(runtime.SaveCheckpoint(path).ok());  // populates the .lkg copy

  // Smash the primary the way an interrupted non-atomic writer would have.
  ASSERT_TRUE(WriteFile(path, "MGTO\x02partial garbage").ok());
  auto restored = EdgeRuntime::FromCheckpoint(path, FastUpdateOptions());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value().model().registry().size(), 5u);
  std::remove(path.c_str());
  std::remove(lkg.c_str());
}

TEST(EdgeRuntimeCheckpointTest, MissingBothCheckpointsFails) {
  auto restored = EdgeRuntime::FromCheckpoint(
      "/no/such/dir/runtime_ckpt.magneto", FastUpdateOptions());
  EXPECT_FALSE(restored.ok());
}

TEST(EdgeRuntimeCheckpointTest, AutoCheckpointSkipsRolledBackUpdate) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "magneto_runtime_rollback.magneto";
  const std::string lkg = EdgeRuntime::LastKnownGoodPath(path);
  std::remove(path.c_str());
  std::remove(lkg.c_str());

  ModelBundle bundle = testing::SmallPretrainedBundle(430);
  SupportSet support = std::move(bundle.support);
  EdgeModel model = std::move(bundle).ToEdgeModel();
  IncrementalOptions options = FastUpdateOptions();
  options.failure_hook = [](UpdateStep step) {
    if (step == UpdateStep::kTrain) return Status::Internal("injected");
    return Status::Ok();
  };
  EdgeRuntime runtime(std::move(model), std::move(support), options);

  ASSERT_TRUE(runtime.SaveCheckpoint(path).ok());
  runtime.EnableAutoCheckpoint(path);

  ASSERT_TRUE(runtime.StartRecording().ok());
  sensors::SyntheticGenerator gen(12);
  Stream(&runtime, gen.Generate(sensors::MakeGestureModel(60), 25.0));
  auto report = runtime.FinishRecordingAndLearn("Gesture Hi");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(runtime.stats().updates, 0u);

  // The rollback wrote nothing: no rotation happened and the checkpoint on
  // disk still boots the pre-update model.
  EXPECT_FALSE(std::filesystem::exists(lkg));
  auto restored = EdgeRuntime::FromCheckpoint(path, FastUpdateOptions());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored.value().model().registry().size(), 5u);
  EXPECT_FALSE(restored.value().model().registry().IdOf("Gesture Hi").ok());
  std::remove(path.c_str());
}

TEST(EdgeRuntimeCheckpointTest, AutoCheckpointPersistsCommittedUpdate) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "magneto_runtime_commit.magneto";
  const std::string lkg = EdgeRuntime::LastKnownGoodPath(path);
  std::remove(path.c_str());
  std::remove(lkg.c_str());

  EdgeRuntime runtime = MakeRuntime(431);
  ASSERT_TRUE(runtime.SaveCheckpoint(path).ok());
  runtime.EnableAutoCheckpoint(path);

  ASSERT_TRUE(runtime.StartRecording().ok());
  sensors::SyntheticGenerator gen(13);
  Stream(&runtime, gen.Generate(sensors::MakeGestureModel(61), 25.0));
  auto report = runtime.FinishRecordingAndLearn("Gesture Hi");
  ASSERT_TRUE(report.ok()) << report.status();

  // Commit point persisted the new model and rotated the pre-update one.
  auto restored = EdgeRuntime::FromCheckpoint(path, FastUpdateOptions());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_TRUE(restored.value().model().registry().IdOf("Gesture Hi").ok());
  ASSERT_TRUE(std::filesystem::exists(lkg));
  auto previous = ModelBundle::LoadFromFile(lkg);
  ASSERT_TRUE(previous.ok()) << previous.status();
  EXPECT_EQ(previous.value().registry.size(), 5u);
  std::remove(path.c_str());
  std::remove(lkg.c_str());
}

}  // namespace
}  // namespace magneto::core
