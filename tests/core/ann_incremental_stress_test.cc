// Incremental-learning stress at hundred-class scale (ISSUE 10, satellite 5):
// sequential `LearnNewActivity` transactions against a large procedural
// vocabulary with the ANN prototype index enabled. After every commit the
// ANN path must agree with an exact scan of the same classifier, and a
// rollback injected at any update step must leave predictions byte-identical
// with the index still serving.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/incremental_learner.h"
#include "testing/test_helpers.h"

namespace magneto::core {
namespace {

struct VocabDeployment {
  EdgeModel model;
  SupportSet support;
};

/// Small pretrained bundle grown to `num_classes` extra procedural classes:
/// their windows go through the frozen pipeline into the support set and the
/// prototypes are rebuilt once — no per-class training, which keeps a
/// 200-class deployment inside a unit-test budget.
VocabDeployment DeployLargeVocabulary(size_t num_classes) {
  ModelBundle bundle = testing::SmallPretrainedBundle(401);
  SupportSet support = std::move(bundle.support);
  EdgeModel model = std::move(bundle).ToEdgeModel();

  sensors::LargeVocabularyOptions vocab;
  vocab.num_classes = num_classes;
  vocab.overlap = 0.2;
  vocab.seed = 5;
  sensors::SyntheticGenerator gen(6);
  auto corpus = gen.GenerateVocabularyDataset(vocab, /*per_class=*/1,
                                              /*duration_s=*/2.0);
  auto features = model.pipeline().ProcessLabeled(corpus).value();
  Rng rng(7);
  for (const auto& [id, count] : features.ClassCounts()) {
    MAGNETO_CHECK(
        support.SetClass(id, features.FilterByClass(id), nullptr, &rng).ok());
  }
  MAGNETO_CHECK(model.RebuildPrototypes(support).ok());
  return {std::move(model), std::move(support)};
}

/// Full-probe configuration: the candidate pool covers every prototype, so
/// ANN-vs-exact parity is deterministic and any mismatch is an index
/// consistency bug (stale row, missing class), not an approximation.
AnnOptions FullProbeAnn() {
  AnnOptions options;
  options.min_index_size = 1;
  options.nlist = 8;
  options.nprobe = 8;
  return options;
}

/// Probe features from a stable slice of the same vocabulary (class i never
/// depends on num_classes) plus a held-out generator seed.
sensors::FeatureDataset ProbeFeatures(const EdgeModel& model) {
  sensors::LargeVocabularyOptions vocab;
  vocab.num_classes = 25;
  vocab.overlap = 0.2;
  vocab.seed = 5;
  sensors::SyntheticGenerator gen(9);
  auto corpus = gen.GenerateVocabularyDataset(vocab, 1, 1.0);
  return model.pipeline().ProcessLabeled(corpus).value();
}

std::vector<Prediction> PredictAll(const NcmClassifier& classifier,
                                   const Matrix& embeddings) {
  NcmClassifier::Scratch scratch;
  std::vector<Prediction> out;
  out.reserve(embeddings.rows());
  for (size_t i = 0; i < embeddings.rows(); ++i) {
    out.push_back(classifier
                      .Classify(embeddings.RowPtr(i), embeddings.cols(),
                                &scratch)
                      .value());
  }
  return out;
}

IncrementalOptions OneEpochOptions() {
  IncrementalOptions options;
  options.train.epochs = 1;
  options.train.batch_size = 32;
  options.train.learning_rate = 5e-4;
  options.train.distill_weight = 1.0;
  options.train.seed = 17;
  options.seed = 18;
  return options;
}

std::vector<sensors::Recording> GestureRecordings(uint64_t seed) {
  sensors::SyntheticGenerator gen(seed);
  return {gen.Generate(sensors::MakeGestureModel(seed), 25.0)};
}

TEST(AnnIncrementalStressTest, ParityAfterEverySequentialCommit) {
  VocabDeployment dep = DeployLargeVocabulary(200);
  ASSERT_TRUE(dep.model.EnableAnn(FullProbeAnn()).ok());
  ASSERT_TRUE(dep.model.classifier().ann_active());
  ASSERT_GE(dep.model.classifier().num_classes(), 200u);

  sensors::FeatureDataset probes = ProbeFeatures(dep.model);
  IncrementalLearner learner(OneEpochOptions());
  const char* names[] = {"Gesture A", "Gesture B", "Gesture C"};
  for (int u = 0; u < 3; ++u) {
    auto report = learner.LearnNewActivity(&dep.model, &dep.support, names[u],
                                           GestureRecordings(20 + u));
    ASSERT_TRUE(report.ok()) << report.status();
    // The committed classifier kept its index through the transaction swap.
    ASSERT_TRUE(dep.model.classifier().ann_active());
    EXPECT_TRUE(dep.model.classifier().HasClass(report.value().activity));

    // ANN vs exact over the same (just-updated) backbone and prototypes.
    Matrix embeddings = dep.model.Embed(probes.ToMatrix());
    NcmClassifier exact = dep.model.classifier();
    exact.DisableAnn();
    EXPECT_FALSE(exact.ann_active());
    auto ann_preds = PredictAll(dep.model.classifier(), embeddings);
    auto exact_preds = PredictAll(exact, embeddings);
    ASSERT_EQ(ann_preds.size(), exact_preds.size());
    for (size_t i = 0; i < ann_preds.size(); ++i) {
      EXPECT_EQ(ann_preds[i].activity, exact_preds[i].activity)
          << "update " << u << ", probe " << i;
      EXPECT_DOUBLE_EQ(ann_preds[i].distance, exact_preds[i].distance)
          << "update " << u << ", probe " << i;
    }
  }
}

TEST(AnnIncrementalStressTest, RollbackAtEveryStepKeepsIndexConsistent) {
  VocabDeployment dep = DeployLargeVocabulary(120);
  ASSERT_TRUE(dep.model.EnableAnn(FullProbeAnn()).ok());
  ASSERT_TRUE(dep.model.classifier().ann_active());

  sensors::FeatureDataset probes = ProbeFeatures(dep.model);
  Matrix embeddings = dep.model.Embed(probes.ToMatrix());
  const auto before = PredictAll(dep.model.classifier(), embeddings);

  for (UpdateStep step : {UpdateStep::kPreprocess, UpdateStep::kTrain,
                          UpdateStep::kSupportSet, UpdateStep::kPrototypes}) {
    IncrementalOptions options = OneEpochOptions();
    options.failure_hook = [step](UpdateStep s) {
      return s == step ? Status::Internal("injected") : Status::Ok();
    };
    IncrementalLearner learner(options);
    auto res = learner.LearnNewActivity(&dep.model, &dep.support,
                                        "Doomed Gesture",
                                        GestureRecordings(30));
    EXPECT_FALSE(res.ok())
        << "step " << static_cast<int>(step) << " did not fail";
    // The live model is untouched: index still serving, predictions
    // byte-identical to before the attempt.
    ASSERT_TRUE(dep.model.classifier().ann_active());
    Matrix after_emb = dep.model.Embed(probes.ToMatrix());
    auto after = PredictAll(dep.model.classifier(), after_emb);
    ASSERT_EQ(after.size(), before.size());
    for (size_t i = 0; i < after.size(); ++i) {
      EXPECT_EQ(std::memcmp(&after[i], &before[i], sizeof(Prediction)), 0)
          << "step " << static_cast<int>(step) << ", probe " << i;
    }
  }

  // After all those aborted attempts a clean commit still goes through and
  // the rebuilt index serves the new class.
  IncrementalLearner learner(OneEpochOptions());
  auto report = learner.LearnNewActivity(&dep.model, &dep.support,
                                         "Doomed Gesture",
                                         GestureRecordings(30));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(dep.model.classifier().ann_active());
  EXPECT_TRUE(dep.model.classifier().HasClass(report.value().activity));
}

}  // namespace
}  // namespace magneto::core
