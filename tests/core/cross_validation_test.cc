#include "core/cross_validation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "testing/test_helpers.h"

namespace magneto::core {
namespace {

TEST(CrossValidationTest, ThreeFoldRunsAndAggregates) {
  auto corpus = testing::SmallCorpus(1, /*per_class=*/3, /*seconds=*/4.0);
  auto report = CrossValidateCloud(testing::SmallCloudConfig(), corpus,
                                   sensors::ActivityRegistry::BaseActivities(),
                                   /*folds=*/3, /*seed=*/7);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report.value().folds.size(), 3u);
  for (const FoldResult& fold : report.value().folds) {
    EXPECT_GT(fold.train_windows, 0u);
    EXPECT_GT(fold.test_windows, 0u);
    EXPECT_GE(fold.accuracy, 0.0);
    EXPECT_LE(fold.accuracy, 1.0);
  }
  // Clean synthetic task: CV accuracy must be far above chance (0.2).
  EXPECT_GT(report.value().mean_accuracy, 0.6);
  EXPECT_GE(report.value().stddev_accuracy, 0.0);
  EXPECT_LE(report.value().stddev_accuracy, 0.5);
}

TEST(CrossValidationTest, DeterministicInSeed) {
  auto corpus = testing::SmallCorpus(2, 3, 4.0);
  auto a = CrossValidateCloud(testing::SmallCloudConfig(), corpus,
                              sensors::ActivityRegistry::BaseActivities(), 3,
                              11);
  auto b = CrossValidateCloud(testing::SmallCloudConfig(), corpus,
                              sensors::ActivityRegistry::BaseActivities(), 3,
                              11);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a.value().folds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.value().folds[i].accuracy,
                     b.value().folds[i].accuracy);
  }
}

TEST(CrossValidationTest, InputValidation) {
  auto corpus = testing::SmallCorpus(3, 1, 4.0);
  const auto registry = sensors::ActivityRegistry::BaseActivities();
  const auto config = testing::SmallCloudConfig();
  EXPECT_FALSE(CrossValidateCloud(config, corpus, registry, 1, 1).ok());
  EXPECT_FALSE(
      CrossValidateCloud(config, corpus, registry, corpus.size() + 1, 1)
          .ok());
  EXPECT_FALSE(CrossValidateCloud(config, {}, registry, 2, 1).ok());
}

TEST(CrossValidationTest, FoldsPartitionTheCorpus) {
  // Sum of test windows across folds == windows of the whole corpus.
  auto corpus = testing::SmallCorpus(4, 2, 4.0);
  auto report = CrossValidateCloud(testing::SmallCloudConfig(), corpus,
                                   sensors::ActivityRegistry::BaseActivities(),
                                   2, 13);
  ASSERT_TRUE(report.ok());
  size_t total_test = 0;
  for (const FoldResult& fold : report.value().folds) {
    total_test += fold.test_windows;
  }
  // 4 s recordings -> 4 windows each; 10 recordings.
  EXPECT_EQ(total_test, 40u);
}

TEST(CrossValidationTest, FoldsAreStratifiedPerLabel) {
  // Give every class a distinct recording duration. Stratified dealing puts
  // exactly one of each class's two recordings into each of two folds, so
  // both folds must carry the identical per-class window mix — i.e. equal
  // test_windows. Dealing over a globally shuffled order (the old behaviour)
  // breaks this for almost every seed.
  sensors::SyntheticGenerator gen(9);
  const auto library = sensors::DefaultActivityLibrary();
  std::vector<sensors::LabeledRecording> corpus;
  for (sensors::ActivityId id = 0; id < 5; ++id) {
    const double seconds = 4.0 + 2.0 * static_cast<double>(id);
    for (int rep = 0; rep < 2; ++rep) {
      corpus.push_back({gen.Generate(library.at(id), seconds), id});
    }
  }
  for (uint64_t seed : {1u, 7u, 23u}) {
    auto report = CrossValidateCloud(
        testing::SmallCloudConfig(), corpus,
        sensors::ActivityRegistry::BaseActivities(), 2, seed);
    ASSERT_TRUE(report.ok()) << report.status();
    ASSERT_EQ(report.value().folds.size(), 2u);
    // 4+6+8+10+12 seconds of test data per fold, one window per second.
    EXPECT_EQ(report.value().folds[0].test_windows, 40u) << "seed " << seed;
    EXPECT_EQ(report.value().folds[1].test_windows, 40u) << "seed " << seed;
  }
}

TEST(CrossValidationTest, StddevIsSampleStddev) {
  auto corpus = testing::SmallCorpus(5, 3, 4.0);
  auto report = CrossValidateCloud(testing::SmallCloudConfig(), corpus,
                                   sensors::ActivityRegistry::BaseActivities(),
                                   3, 17);
  ASSERT_TRUE(report.ok()) << report.status();
  double mean = 0.0;
  for (const FoldResult& fold : report.value().folds) mean += fold.accuracy;
  mean /= 3.0;
  double var = 0.0;
  for (const FoldResult& fold : report.value().folds) {
    var += (fold.accuracy - mean) * (fold.accuracy - mean);
  }
  // Bessel-corrected (n-1) denominator, not the population n.
  EXPECT_DOUBLE_EQ(report.value().stddev_accuracy, std::sqrt(var / 2.0));
}

}  // namespace
}  // namespace magneto::core
