#include "core/activity_journal.h"

#include <gtest/gtest.h>

#include "core/edge_runtime.h"
#include "testing/test_helpers.h"

namespace magneto::core {
namespace {

NamedPrediction Pred(sensors::ActivityId id, const std::string& name) {
  NamedPrediction p;
  p.prediction.activity = id;
  p.prediction.confidence = 0.9;
  p.name = name;
  return p;
}

TEST(ActivityJournalTest, AccumulatesSecondsPerActivity) {
  ActivityJournal journal(1.0);
  for (int i = 0; i < 30; ++i) journal.Record(Pred(4, "Walk"));
  for (int i = 0; i < 10; ++i) journal.Record(Pred(3, "Still"));
  EXPECT_DOUBLE_EQ(journal.TotalSeconds(4), 30.0);
  EXPECT_DOUBLE_EQ(journal.TotalSeconds(3), 10.0);
  EXPECT_DOUBLE_EQ(journal.TotalSeconds(99), 0.0);
  EXPECT_DOUBLE_EQ(journal.elapsed_seconds(), 40.0);
}

TEST(ActivityJournalTest, WindowSecondsScaleTotals) {
  ActivityJournal journal(0.5);
  for (int i = 0; i < 8; ++i) journal.Record(Pred(0, "Drive"));
  EXPECT_DOUBLE_EQ(journal.TotalSeconds(0), 4.0);
}

TEST(ActivityJournalTest, BoutsMergeConsecutiveWindows) {
  ActivityJournal journal(1.0);
  for (int i = 0; i < 5; ++i) journal.Record(Pred(4, "Walk"));
  for (int i = 0; i < 3; ++i) journal.Record(Pred(2, "Run"));
  for (int i = 0; i < 2; ++i) journal.Record(Pred(4, "Walk"));
  ASSERT_EQ(journal.bouts().size(), 3u);
  EXPECT_EQ(journal.bouts()[0].name, "Walk");
  EXPECT_DOUBLE_EQ(journal.bouts()[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(journal.bouts()[0].duration_s, 5.0);
  EXPECT_EQ(journal.bouts()[1].name, "Run");
  EXPECT_DOUBLE_EQ(journal.bouts()[1].start_s, 5.0);
  EXPECT_DOUBLE_EQ(journal.bouts()[2].start_s, 8.0);
  EXPECT_DOUBLE_EQ(journal.bouts()[2].duration_s, 2.0);
}

TEST(ActivityJournalTest, TotalsSortedDescending) {
  ActivityJournal journal(1.0);
  journal.Record(Pred(0, "Drive"));
  for (int i = 0; i < 5; ++i) journal.Record(Pred(4, "Walk"));
  for (int i = 0; i < 3; ++i) journal.Record(Pred(2, "Run"));
  auto totals = journal.Totals();
  ASSERT_EQ(totals.size(), 3u);
  EXPECT_EQ(totals[0].first, "Walk");
  EXPECT_EQ(totals[1].first, "Run");
  EXPECT_EQ(totals[2].first, "Drive");
}

TEST(ActivityJournalTest, SummaryMentionsEveryActivity) {
  ActivityJournal journal(1.0);
  for (int i = 0; i < 60; ++i) journal.Record(Pred(4, "Walk"));
  for (int i = 0; i < 60; ++i) journal.Record(Pred(3, "Still"));
  const std::string summary = journal.Summary();
  EXPECT_NE(summary.find("Walk"), std::string::npos);
  EXPECT_NE(summary.find("Still"), std::string::npos);
  EXPECT_NE(summary.find("50.0%"), std::string::npos);
  EXPECT_NE(summary.find("1 bout(s)"), std::string::npos);
}

TEST(ActivityJournalTest, ResetClearsEverything) {
  ActivityJournal journal(1.0);
  journal.Record(Pred(4, "Walk"));
  journal.Reset();
  EXPECT_DOUBLE_EQ(journal.elapsed_seconds(), 0.0);
  EXPECT_TRUE(journal.bouts().empty());
  EXPECT_TRUE(journal.Totals().empty());
}

TEST(ActivityJournalDeathTest, NonPositiveWindowAborts) {
  EXPECT_DEATH(ActivityJournal(0.0), "Check failed");
}

TEST(ActivityJournalTest, RuntimeIntegration) {
  ModelBundle bundle = testing::SmallPretrainedBundle(910);
  SupportSet support = std::move(bundle.support);
  EdgeModel model = std::move(bundle).ToEdgeModel();
  EdgeRuntime runtime(std::move(model), std::move(support), {});
  EXPECT_EQ(runtime.journal(), nullptr);
  runtime.EnableJournal();
  ASSERT_NE(runtime.journal(), nullptr);

  sensors::SyntheticGenerator gen(1);
  sensors::Recording rec =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kStill], 4.0);
  for (size_t i = 0; i < rec.num_samples(); ++i) {
    sensors::Frame frame;
    for (size_t c = 0; c < sensors::kNumChannels; ++c) {
      frame[c] = rec.samples.At(i, c);
    }
    ASSERT_TRUE(runtime.PushFrame(frame).ok());
  }
  // 4 one-second windows recorded into the ledger.
  EXPECT_NEAR(runtime.journal()->elapsed_seconds(), 4.0, 1e-9);
  EXPECT_GT(runtime.journal()->TotalSeconds(sensors::kStill), 2.0);
}

TEST(DriftMonitorRuntimeTest, RuntimeIntegration) {
  ModelBundle bundle = testing::SmallPretrainedBundle(911);
  SupportSet support = std::move(bundle.support);
  EdgeModel model = std::move(bundle).ToEdgeModel();
  EdgeRuntime runtime(std::move(model), std::move(support), {});
  EXPECT_FALSE(runtime.Drifting());
  runtime.EnableDriftMonitoring({.window = 3, .min_confidence = 0.0,
                                 .distance_factor = 2.0},
                                /*baseline_distance=*/1e-6);
  // Any real stream sits far above a near-zero baseline -> alarms once the
  // window fills.
  sensors::SyntheticGenerator gen(2);
  sensors::Recording rec =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kWalk], 4.0);
  for (size_t i = 0; i < rec.num_samples(); ++i) {
    sensors::Frame frame;
    for (size_t c = 0; c < sensors::kNumChannels; ++c) {
      frame[c] = rec.samples.At(i, c);
    }
    ASSERT_TRUE(runtime.PushFrame(frame).ok());
  }
  EXPECT_TRUE(runtime.Drifting());
  runtime.DisableDriftMonitoring();
  EXPECT_FALSE(runtime.Drifting());
}

}  // namespace
}  // namespace magneto::core
