#include "core/drift_monitor.h"

#include <gtest/gtest.h>

namespace magneto::core {
namespace {

Prediction Pred(double confidence, double distance) {
  Prediction p;
  p.activity = 0;
  p.confidence = confidence;
  p.distance = distance;
  return p;
}

TEST(DriftMonitorTest, NoAlarmBeforeFullWindow) {
  DriftMonitor monitor({.window = 10, .min_confidence = 0.9});
  for (int i = 0; i < 9; ++i) {
    EXPECT_FALSE(monitor.Observe(Pred(0.1, 1.0)));  // terrible but young
  }
  EXPECT_TRUE(monitor.Observe(Pred(0.1, 1.0)));  // evidence complete
}

TEST(DriftMonitorTest, HealthyStreamNeverAlarms) {
  DriftMonitor monitor({.window = 5, .min_confidence = 0.5});
  monitor.SetBaselineDistance(1.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(monitor.Observe(Pred(0.9, 1.0))) << "at " << i;
  }
  EXPECT_FALSE(monitor.drifting());
  EXPECT_NEAR(monitor.rolling_confidence(), 0.9, 1e-9);
}

TEST(DriftMonitorTest, LowConfidenceTriggersAlarm) {
  DriftMonitor monitor({.window = 5, .min_confidence = 0.55});
  for (int i = 0; i < 5; ++i) monitor.Observe(Pred(0.9, 1.0));
  EXPECT_FALSE(monitor.drifting());
  // Confidence collapses.
  bool alarmed = false;
  for (int i = 0; i < 5; ++i) alarmed = monitor.Observe(Pred(0.3, 1.0));
  EXPECT_TRUE(alarmed);
}

TEST(DriftMonitorTest, DistanceGrowthTriggersAlarm) {
  DriftMonitor monitor(
      {.window = 5, .min_confidence = 0.0, .distance_factor = 2.0});
  monitor.SetBaselineDistance(1.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(monitor.Observe(Pred(0.9, 1.5)));  // below 2x baseline
  }
  for (int i = 0; i < 5; ++i) monitor.Observe(Pred(0.9, 3.0));
  EXPECT_TRUE(monitor.drifting());
  EXPECT_NEAR(monitor.rolling_distance(), 3.0, 1e-9);
}

TEST(DriftMonitorTest, NoDistanceAlarmWithoutBaseline) {
  DriftMonitor monitor({.window = 3, .min_confidence = 0.0});
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(monitor.Observe(Pred(0.9, 1000.0)));
  }
}

TEST(DriftMonitorTest, RecoversWhenStreamImproves) {
  DriftMonitor monitor({.window = 4, .min_confidence = 0.5});
  for (int i = 0; i < 4; ++i) monitor.Observe(Pred(0.2, 1.0));
  EXPECT_TRUE(monitor.drifting());
  for (int i = 0; i < 4; ++i) monitor.Observe(Pred(0.95, 1.0));
  EXPECT_FALSE(monitor.drifting());
}

TEST(DriftMonitorTest, ResetClearsEvidence) {
  DriftMonitor monitor({.window = 3, .min_confidence = 0.5});
  for (int i = 0; i < 3; ++i) monitor.Observe(Pred(0.1, 1.0));
  EXPECT_TRUE(monitor.drifting());
  monitor.Reset();
  EXPECT_FALSE(monitor.drifting());
  EXPECT_FALSE(monitor.Observe(Pred(0.1, 1.0)));  // window must refill
}

TEST(DriftMonitorDeathTest, ZeroWindowAborts) {
  EXPECT_DEATH(DriftMonitor({.window = 0}), "Check failed");
}

}  // namespace
}  // namespace magneto::core
