#include "core/model_bundle.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <limits>

#include <gtest/gtest.h>

#include "common/random.h"
#include "testing/test_helpers.h"

namespace magneto::core {
namespace {

// Wire layout shared by v1 and v2: magic(4) | version u32 | body length u64 |
// body | CRC u32. v2's CRC covers version+length+body; v1's covered the body
// only.
constexpr size_t kHeaderBytes = 16;
constexpr size_t kFooterBytes = 4;

/// Rebuilds a bundle image with an arbitrary version/body and a *valid* v2
/// CRC, so version/length error paths can be exercised on well-formed input.
std::string BuildImage(uint32_t version, uint64_t declared_body_size,
                       const std::string& body) {
  BinaryWriter out;
  out.WriteBytes("MGTO", 4);
  out.WriteU32(version);
  out.WriteU64(declared_body_size);
  out.WriteBytes(body.data(), body.size());
  out.WriteU32(Crc32(out.buffer().data() + 4, out.size() - 4));
  return out.TakeBuffer();
}

class ModelBundleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bundle_ = new ModelBundle(testing::SmallPretrainedBundle(202));
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }
  static ModelBundle* bundle_;
};

ModelBundle* ModelBundleTest::bundle_ = nullptr;

TEST_F(ModelBundleTest, RoundTripPreservesEverything) {
  const std::string bytes = bundle_->SerializeToString();
  auto back = ModelBundle::FromString(bytes);
  ASSERT_TRUE(back.ok());

  EXPECT_EQ(back.value().registry.size(), bundle_->registry.size());
  EXPECT_EQ(back.value().support.TotalSize(), bundle_->support.TotalSize());
  EXPECT_EQ(back.value().classifier.num_classes(),
            bundle_->classifier.num_classes());
  EXPECT_EQ(back.value().backbone.NumParameters(),
            bundle_->backbone.NumParameters());

  // The round-tripped model must predict identically.
  sensors::SyntheticGenerator gen(5);
  sensors::Recording rec =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kWalk], 1.0);
  EdgeModel m1(bundle_->pipeline, bundle_->backbone.Clone(),
               bundle_->classifier, bundle_->registry);
  EdgeModel m2 = std::move(back).value().ToEdgeModel();
  auto p1 = m1.InferWindow(rec.samples);
  auto p2 = m2.InferWindow(rec.samples);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1.value().prediction.activity, p2.value().prediction.activity);
  EXPECT_NEAR(p1.value().prediction.distance, p2.value().prediction.distance,
              1e-6);
}

TEST_F(ModelBundleTest, RejectsBadMagic) {
  std::string bytes = bundle_->SerializeToString();
  bytes[0] = 'X';
  auto res = ModelBundle::FromString(bytes);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCorruption);
}

TEST_F(ModelBundleTest, RejectsFlippedPayloadBit) {
  std::string bytes = bundle_->SerializeToString();
  bytes[bytes.size() / 2] ^= 0x40;  // corrupt the body
  auto res = ModelBundle::FromString(bytes);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCorruption);
}

TEST_F(ModelBundleTest, RejectsTruncation) {
  std::string bytes = bundle_->SerializeToString();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(ModelBundle::FromString(bytes).ok());
  EXPECT_FALSE(ModelBundle::FromString("MG").ok());
  EXPECT_FALSE(ModelBundle::FromString("").ok());
}

TEST_F(ModelBundleTest, RejectsUnsupportedVersion) {
  std::string bytes = bundle_->SerializeToString();
  bytes[4] = 99;  // version field follows the 4-byte magic
  EXPECT_FALSE(ModelBundle::FromString(bytes).ok());
}

TEST_F(ModelBundleTest, RejectsTrailingGarbageInsideBody) {
  // Extend the declared body and append bytes: the parser must notice.
  std::string bytes = bundle_->SerializeToString();
  bytes.insert(bytes.size() - 4, std::string(8, '\0'));
  // (length field now disagrees with the actual structure)
  EXPECT_FALSE(ModelBundle::FromString(bytes).ok());
}

TEST_F(ModelBundleTest, FileRoundTrip) {
  const std::string path =
      std::filesystem::temp_directory_path() / "magneto_bundle_test.magneto";
  ASSERT_TRUE(bundle_->SaveToFile(path).ok());
  auto back = ModelBundle::LoadFromFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().registry.size(), 5u);
  std::remove(path.c_str());
}

TEST_F(ModelBundleTest, LoadMissingFileFails) {
  EXPECT_EQ(ModelBundle::LoadFromFile("/no/such/file.magneto").status().code(),
            StatusCode::kIoError);
}

TEST_F(ModelBundleTest, OverflowingLengthHeaderRejected) {
  // Regression: the v1 bounds check used to be written as
  // `remaining < body_size + 4`, which wraps when body_size is near
  // UINT64_MAX and walks the reader far out of bounds. The subtraction-form
  // check must reject this cleanly (ASan-verified in scripts/check.sh).
  BinaryWriter w;
  w.WriteBytes("MGTO", 4);
  w.WriteU32(1);  // legacy version: length field locates the CRC
  w.WriteU64(std::numeric_limits<uint64_t>::max() - 2);
  w.WriteBytes("payloadpayload", 14);
  auto res = ModelBundle::FromString(w.TakeBuffer());
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCorruption);

  // Same trap at every other wrap-around boundary.
  for (uint64_t lie : {std::numeric_limits<uint64_t>::max(),
                       std::numeric_limits<uint64_t>::max() - 3,
                       uint64_t{1} << 63}) {
    BinaryWriter crafted;
    crafted.WriteBytes("MGTO", 4);
    crafted.WriteU32(1);
    crafted.WriteU64(lie);
    crafted.WriteBytes("xxxxxxxx", 8);
    EXPECT_EQ(ModelBundle::FromString(crafted.TakeBuffer()).status().code(),
              StatusCode::kCorruption);
  }
}

TEST_F(ModelBundleTest, V1ReadPathStillLoads) {
  // Reconstruct a v1 image (CRC over the body only) from the v2 bytes; the
  // legacy read path must keep accepting bundles written before the bump.
  const std::string v2 = bundle_->SerializeToString();
  const std::string body =
      v2.substr(kHeaderBytes, v2.size() - kHeaderBytes - kFooterBytes);
  BinaryWriter w;
  w.WriteBytes("MGTO", 4);
  w.WriteU32(1);
  w.WriteU64(body.size());
  w.WriteBytes(body.data(), body.size());
  w.WriteU32(Crc32(body.data(), body.size()));
  auto back = ModelBundle::FromString(w.TakeBuffer());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back.value().registry.size(), bundle_->registry.size());
  EXPECT_EQ(back.value().backbone.NumParameters(),
            bundle_->backbone.NumParameters());
}

TEST_F(ModelBundleTest, HeaderBitFlipReportsChecksumMismatch) {
  // v2's CRC covers the version and length fields, so header damage must
  // surface as a checksum error — not as a misleading "unsupported version"
  // or "truncated body".
  const std::string clean = bundle_->SerializeToString();
  for (size_t offset = 4; offset < kHeaderBytes; ++offset) {
    std::string bytes = clean;
    bytes[offset] ^= 0x04;
    auto res = ModelBundle::FromString(bytes);
    ASSERT_FALSE(res.ok()) << "header offset " << offset;
    EXPECT_EQ(res.status().code(), StatusCode::kCorruption);
    EXPECT_NE(res.status().message().find("checksum"), std::string::npos)
        << "offset " << offset << ": " << res.status().message();
  }
}

TEST_F(ModelBundleTest, VersionAndLengthErrorsFireOnWellFormedInput) {
  // With a freshly recomputed CRC, the specific error paths are reachable.
  const std::string v2 = bundle_->SerializeToString();
  const std::string body =
      v2.substr(kHeaderBytes, v2.size() - kHeaderBytes - kFooterBytes);

  auto bad_version = ModelBundle::FromString(BuildImage(99, body.size(), body));
  ASSERT_FALSE(bad_version.ok());
  EXPECT_NE(bad_version.status().message().find("unsupported bundle version"),
            std::string::npos)
      << bad_version.status().message();

  auto bad_length =
      ModelBundle::FromString(BuildImage(2, body.size() + 8, body));
  ASSERT_FALSE(bad_length.ok());
  EXPECT_NE(bad_length.status().message().find("truncated bundle body"),
            std::string::npos)
      << bad_length.status().message();
}

TEST_F(ModelBundleTest, FuzzEveryTruncationIsRejected) {
  // Every prefix of a valid image must parse as corruption — never crash,
  // never read out of bounds (the ASan leg of check.sh runs this test).
  const std::string bytes = bundle_->SerializeToString();
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto res = ModelBundle::FromString(bytes.substr(0, len));
    ASSERT_FALSE(res.ok()) << "truncated to " << len;
    ASSERT_EQ(res.status().code(), StatusCode::kCorruption) << len;
  }
}

TEST_F(ModelBundleTest, FuzzSeededBitFlipsAreRejected) {
  const std::string clean = bundle_->SerializeToString();
  Rng rng(0xB17F11F5);
  for (int trial = 0; trial < 512; ++trial) {
    std::string bytes = clean;
    const size_t offset = rng.Index(bytes.size());
    bytes[offset] ^= static_cast<char>(1u << rng.UniformInt(0, 7));
    auto res = ModelBundle::FromString(bytes);
    ASSERT_FALSE(res.ok()) << "flip at " << offset;
    ASSERT_EQ(res.status().code(), StatusCode::kCorruption) << offset;
  }
}

TEST_F(ModelBundleTest, SaveIsAtomicNoTempLeftBehind) {
  const std::string path =
      std::filesystem::temp_directory_path() / "magneto_bundle_atomic.magneto";
  ASSERT_TRUE(bundle_->SaveToFile(path).ok());
  EXPECT_FALSE(std::filesystem::exists(AtomicTempPath(path)));
  EXPECT_TRUE(ModelBundle::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST_F(ModelBundleTest, LoadWithFallbackPrefersPrimary) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string primary = dir / "magneto_fb_primary.magneto";
  const std::string fallback = dir / "magneto_fb_lkg.magneto";
  ASSERT_TRUE(bundle_->SaveToFile(primary).ok());
  ASSERT_TRUE(bundle_->SaveToFile(fallback).ok());
  bool used_fallback = true;
  auto res =
      ModelBundle::LoadFromFileWithFallback(primary, fallback, &used_fallback);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(used_fallback);
  std::remove(primary.c_str());
  std::remove(fallback.c_str());
}

TEST_F(ModelBundleTest, LoadWithFallbackRecoversFromCorruptPrimary) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string primary = dir / "magneto_fb_corrupt.magneto";
  const std::string fallback = dir / "magneto_fb_good.magneto";
  ASSERT_TRUE(WriteFile(primary, "MGTO garbage, not a bundle").ok());
  ASSERT_TRUE(bundle_->SaveToFile(fallback).ok());
  bool used_fallback = false;
  auto res =
      ModelBundle::LoadFromFileWithFallback(primary, fallback, &used_fallback);
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_TRUE(used_fallback);
  EXPECT_EQ(res.value().registry.size(), bundle_->registry.size());
  std::remove(primary.c_str());
  std::remove(fallback.c_str());
}

TEST_F(ModelBundleTest, LoadWithFallbackReportsBothFailures) {
  auto res = ModelBundle::LoadFromFileWithFallback(
      "/no/such/primary.magneto", "/no/such/fallback.magneto", nullptr);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.status().message().find("fallback"), std::string::npos);
}

TEST_F(ModelBundleTest, SerializedSizeIsStable) {
  EXPECT_EQ(bundle_->SerializedBytes(), bundle_->SerializeToString().size());
  // The small test bundle should be well under the paper's 5 MB budget.
  EXPECT_LT(bundle_->SerializedBytes(), 5u * 1024 * 1024);
}

TEST_F(ModelBundleTest, WireVersionDefaultsToV2AndIsPreserved) {
  EXPECT_EQ(bundle_->wire_version, kBundleWireV2);
  auto back = ModelBundle::FromString(bundle_->SerializeToString());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().wire_version, kBundleWireV2);
}

TEST_F(ModelBundleTest, V3QuantizedRoundTrip) {
  const std::string v2 = bundle_->SerializeToString();
  auto copy = ModelBundle::FromString(v2);
  ASSERT_TRUE(copy.ok());
  copy.value().wire_version = kBundleWireV3;
  ASSERT_TRUE(copy.value().classifier.QuantizePrototypes().ok());
  const std::string v3 = copy.value().SerializeToString();
  // Only the support set is int8 here (the backbone stays fp32 unless
  // compressed), but v3 must already be strictly smaller.
  EXPECT_LT(v3.size(), v2.size());

  auto back = ModelBundle::FromString(v3);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back.value().wire_version, kBundleWireV3);
  EXPECT_TRUE(back.value().classifier.quantized());
  EXPECT_EQ(back.value().support.TotalSize(), bundle_->support.TotalSize());
  EXPECT_EQ(back.value().registry.size(), bundle_->registry.size());

  // Save -> load -> save stability: re-quantizing dequantized rows and
  // prototypes is exact, so a loaded v3 bundle re-serializes byte-identical
  // (checkpoints of a quantized device cannot drift).
  EXPECT_EQ(back.value().SerializeToString(), v3);
}

TEST_F(ModelBundleTest, V3RejectsTruncationAndBitFlips) {
  auto copy = ModelBundle::FromString(bundle_->SerializeToString());
  ASSERT_TRUE(copy.ok());
  copy.value().wire_version = kBundleWireV3;
  ASSERT_TRUE(copy.value().classifier.QuantizePrototypes().ok());
  const std::string v3 = copy.value().SerializeToString();
  Rng rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    std::string bytes = v3.substr(0, rng.Index(v3.size()));
    EXPECT_FALSE(ModelBundle::FromString(bytes).ok());
  }
  size_t parsed_ok = 0;
  for (int trial = 0; trial < 120; ++trial) {
    std::string bytes = v3;
    bytes[rng.Index(bytes.size())] ^= static_cast<char>(1 + rng.Index(255));
    if (ModelBundle::FromString(bytes).ok()) ++parsed_ok;
  }
  EXPECT_LT(parsed_ok, 3u);  // CRC catches essentially everything
}

}  // namespace
}  // namespace magneto::core
