#include "core/model_bundle.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "testing/test_helpers.h"

namespace magneto::core {
namespace {

class ModelBundleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bundle_ = new ModelBundle(testing::SmallPretrainedBundle(202));
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }
  static ModelBundle* bundle_;
};

ModelBundle* ModelBundleTest::bundle_ = nullptr;

TEST_F(ModelBundleTest, RoundTripPreservesEverything) {
  const std::string bytes = bundle_->SerializeToString();
  auto back = ModelBundle::FromString(bytes);
  ASSERT_TRUE(back.ok());

  EXPECT_EQ(back.value().registry.size(), bundle_->registry.size());
  EXPECT_EQ(back.value().support.TotalSize(), bundle_->support.TotalSize());
  EXPECT_EQ(back.value().classifier.num_classes(),
            bundle_->classifier.num_classes());
  EXPECT_EQ(back.value().backbone.NumParameters(),
            bundle_->backbone.NumParameters());

  // The round-tripped model must predict identically.
  sensors::SyntheticGenerator gen(5);
  sensors::Recording rec =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kWalk], 1.0);
  EdgeModel m1(bundle_->pipeline, bundle_->backbone.Clone(),
               bundle_->classifier, bundle_->registry);
  EdgeModel m2 = std::move(back).value().ToEdgeModel();
  auto p1 = m1.InferWindow(rec.samples);
  auto p2 = m2.InferWindow(rec.samples);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1.value().prediction.activity, p2.value().prediction.activity);
  EXPECT_NEAR(p1.value().prediction.distance, p2.value().prediction.distance,
              1e-6);
}

TEST_F(ModelBundleTest, RejectsBadMagic) {
  std::string bytes = bundle_->SerializeToString();
  bytes[0] = 'X';
  auto res = ModelBundle::FromString(bytes);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCorruption);
}

TEST_F(ModelBundleTest, RejectsFlippedPayloadBit) {
  std::string bytes = bundle_->SerializeToString();
  bytes[bytes.size() / 2] ^= 0x40;  // corrupt the body
  auto res = ModelBundle::FromString(bytes);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCorruption);
}

TEST_F(ModelBundleTest, RejectsTruncation) {
  std::string bytes = bundle_->SerializeToString();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(ModelBundle::FromString(bytes).ok());
  EXPECT_FALSE(ModelBundle::FromString("MG").ok());
  EXPECT_FALSE(ModelBundle::FromString("").ok());
}

TEST_F(ModelBundleTest, RejectsUnsupportedVersion) {
  std::string bytes = bundle_->SerializeToString();
  bytes[4] = 99;  // version field follows the 4-byte magic
  EXPECT_FALSE(ModelBundle::FromString(bytes).ok());
}

TEST_F(ModelBundleTest, RejectsTrailingGarbageInsideBody) {
  // Extend the declared body and append bytes: the parser must notice.
  std::string bytes = bundle_->SerializeToString();
  bytes.insert(bytes.size() - 4, std::string(8, '\0'));
  // (length field now disagrees with the actual structure)
  EXPECT_FALSE(ModelBundle::FromString(bytes).ok());
}

TEST_F(ModelBundleTest, FileRoundTrip) {
  const std::string path =
      std::filesystem::temp_directory_path() / "magneto_bundle_test.magneto";
  ASSERT_TRUE(bundle_->SaveToFile(path).ok());
  auto back = ModelBundle::LoadFromFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().registry.size(), 5u);
  std::remove(path.c_str());
}

TEST_F(ModelBundleTest, LoadMissingFileFails) {
  EXPECT_EQ(ModelBundle::LoadFromFile("/no/such/file.magneto").status().code(),
            StatusCode::kIoError);
}

TEST_F(ModelBundleTest, SerializedSizeIsStable) {
  EXPECT_EQ(bundle_->SerializedBytes(), bundle_->SerializeToString().size());
  // The small test bundle should be well under the paper's 5 MB budget.
  EXPECT_LT(bundle_->SerializedBytes(), 5u * 1024 * 1024);
}

}  // namespace
}  // namespace magneto::core
