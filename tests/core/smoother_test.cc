#include "core/smoother.h"

#include <gtest/gtest.h>

namespace magneto::core {
namespace {

NamedPrediction Pred(sensors::ActivityId id, double confidence,
                     const std::string& name = "") {
  NamedPrediction p;
  p.prediction.activity = id;
  p.prediction.confidence = confidence;
  p.name = name.empty() ? "#" + std::to_string(id) : name;
  return p;
}

TEST(PredictionSmootherTest, SinglePredictionPassesThrough) {
  PredictionSmoother smoother({});
  NamedPrediction out = smoother.Push(Pred(3, 0.9, "Still"));
  EXPECT_EQ(out.prediction.activity, 3);
  EXPECT_EQ(out.name, "Still");
  EXPECT_DOUBLE_EQ(out.prediction.confidence, 1.0);  // 100% of vote mass
}

TEST(PredictionSmootherTest, SuppressesSingleOutlier) {
  PredictionSmoother smoother({.window = 5});
  for (int i = 0; i < 4; ++i) smoother.Push(Pred(0, 0.8, "Walk"));
  // One noisy window must not flip the output.
  NamedPrediction out = smoother.Push(Pred(1, 0.6, "Run"));
  EXPECT_EQ(out.prediction.activity, 0);
  EXPECT_EQ(out.name, "Walk");
  EXPECT_LT(out.prediction.confidence, 1.0);
}

TEST(PredictionSmootherTest, SwitchesAfterSustainedChange) {
  PredictionSmoother smoother({.window = 5});
  for (int i = 0; i < 5; ++i) smoother.Push(Pred(0, 0.8));
  // A real activity change wins once it dominates the window.
  NamedPrediction out = Pred(0, 0.0);
  for (int i = 0; i < 3; ++i) out = smoother.Push(Pred(1, 0.8));
  EXPECT_EQ(out.prediction.activity, 1);
}

TEST(PredictionSmootherTest, ConfidenceWeightingBreaksTies) {
  PredictionSmoother smoother({.window = 4});
  smoother.Push(Pred(0, 0.9));
  smoother.Push(Pred(0, 0.9));
  smoother.Push(Pred(1, 0.2));
  NamedPrediction out = smoother.Push(Pred(1, 0.2));
  // Two high-confidence votes beat two low-confidence ones.
  EXPECT_EQ(out.prediction.activity, 0);
}

TEST(PredictionSmootherTest, MinConfidenceFilterSkipsVotes) {
  PredictionSmoother smoother({.window = 3, .min_confidence = 0.5});
  smoother.Push(Pred(0, 0.9));
  // Low-confidence garbage does not enter the history.
  smoother.Push(Pred(1, 0.1));
  smoother.Push(Pred(1, 0.1));
  EXPECT_EQ(smoother.history_size(), 1u);
  NamedPrediction out = smoother.Push(Pred(1, 0.1));
  EXPECT_EQ(out.prediction.activity, 0);
}

TEST(PredictionSmootherTest, AllFilteredFallsBackToRaw) {
  PredictionSmoother smoother({.window = 3, .min_confidence = 0.99});
  NamedPrediction out = smoother.Push(Pred(7, 0.5, "Run"));
  // Nothing in history: the raw prediction is passed through.
  EXPECT_EQ(out.prediction.activity, 7);
}

TEST(PredictionSmootherTest, ResetClearsHistory) {
  PredictionSmoother smoother({.window = 5});
  for (int i = 0; i < 5; ++i) smoother.Push(Pred(0, 0.8));
  smoother.Reset();
  EXPECT_EQ(smoother.history_size(), 0u);
  NamedPrediction out = smoother.Push(Pred(1, 0.5));
  EXPECT_EQ(out.prediction.activity, 1);
}

TEST(PredictionSmootherTest, WindowBoundsHistory) {
  PredictionSmoother smoother({.window = 3});
  for (int i = 0; i < 10; ++i) smoother.Push(Pred(0, 0.8));
  EXPECT_EQ(smoother.history_size(), 3u);
  // Old votes age out: 3 new windows fully replace the history.
  smoother.Push(Pred(1, 0.8));
  smoother.Push(Pred(1, 0.8));
  NamedPrediction out = smoother.Push(Pred(1, 0.8));
  EXPECT_EQ(out.prediction.activity, 1);
  EXPECT_DOUBLE_EQ(out.prediction.confidence, 1.0);
}

TEST(PredictionSmootherTest, RejectedWindowsAgeOutStaleHistory) {
  // Regression: an activity change that arrives as a run of low-confidence
  // windows must not leave the pre-change winner in the history forever.
  // Before the tick-based expiry, rejected pushes never aged the history, so
  // the smoother reported "Walk" indefinitely here.
  PredictionSmoother smoother({.window = 3, .min_confidence = 0.5});
  for (int i = 0; i < 3; ++i) smoother.Push(Pred(0, 0.8, "Walk"));

  // The change to activity 1 comes in below the confidence bar. The stale
  // votes may coast for up to `window` pushes...
  NamedPrediction out = Pred(0, 0.0);
  for (int i = 0; i < 3; ++i) out = smoother.Push(Pred(1, 0.3, "Run"));
  // ...but by the (window+1)-th rejected window every stale vote has
  // expired and the raw prediction passes through.
  out = smoother.Push(Pred(1, 0.3, "Run"));
  EXPECT_EQ(smoother.history_size(), 0u);
  EXPECT_EQ(out.prediction.activity, 1);
  EXPECT_EQ(out.name, "Run");
}

TEST(PredictionSmootherTest, AcceptedPushesStillDisplaceByCount) {
  // The size cap is unchanged: with only accepted pushes the behaviour is
  // exactly the pre-fix sliding window.
  PredictionSmoother smoother({.window = 2});
  smoother.Push(Pred(0, 0.9));
  smoother.Push(Pred(1, 0.8));
  NamedPrediction out = smoother.Push(Pred(1, 0.8));
  EXPECT_EQ(smoother.history_size(), 2u);
  EXPECT_EQ(out.prediction.activity, 1);
}

TEST(PredictionSmootherDeathTest, ZeroWindowAborts) {
  EXPECT_DEATH(PredictionSmoother({.window = 0}), "Check failed");
}

}  // namespace
}  // namespace magneto::core
