#include "core/ncm_classifier.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace magneto::core {
namespace {

class IdentityEmbedder : public Embedder {
 public:
  Matrix Embed(const Matrix& features) override { return features; }
  size_t embedding_dim() const override { return 2; }
};

NcmClassifier TwoClassClassifier() {
  NcmClassifier ncm;
  // Prototypes at (0,0) and (10,0).
  MAGNETO_CHECK(
      ncm.SetPrototypeFromEmbeddings(0, Matrix(1, 2, {0, 0})).ok());
  MAGNETO_CHECK(
      ncm.SetPrototypeFromEmbeddings(1, Matrix(1, 2, {10, 0})).ok());
  return ncm;
}

TEST(NcmClassifierTest, PrototypeIsClassMean) {
  NcmClassifier ncm;
  Matrix embeddings(3, 2, {0, 0, 2, 4, 4, 2});
  ASSERT_TRUE(ncm.SetPrototypeFromEmbeddings(7, embeddings).ok());
  auto proto = ncm.Prototype(7);
  ASSERT_TRUE(proto.ok());
  EXPECT_FLOAT_EQ(proto.value()[0], 2.0f);
  EXPECT_FLOAT_EQ(proto.value()[1], 2.0f);
}

TEST(NcmClassifierTest, ClassifiesByNearestPrototype) {
  NcmClassifier ncm = TwoClassClassifier();
  const std::vector<float> near0{1.0f, 1.0f};
  auto pred = ncm.Classify(near0);
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred.value().activity, 0);
  EXPECT_NEAR(pred.value().distance, std::sqrt(2.0), 1e-5);

  const std::vector<float> near1{9.0f, -1.0f};
  EXPECT_EQ(ncm.Classify(near1).value().activity, 1);
}

TEST(NcmClassifierTest, ConfidenceReflectsMarginBetweenPrototypes) {
  NcmClassifier ncm = TwoClassClassifier();
  auto confident = ncm.Classify({0.0f, 0.0f}).value();
  auto borderline = ncm.Classify({5.0f, 0.0f}).value();
  EXPECT_GT(confident.confidence, 0.99);
  EXPECT_NEAR(borderline.confidence, 0.5, 1e-6);
  EXPECT_GE(confident.confidence, borderline.confidence);
}

TEST(NcmClassifierTest, DistancesSortedAscending) {
  NcmClassifier ncm = TwoClassClassifier();
  ASSERT_TRUE(
      ncm.SetPrototypeFromEmbeddings(2, Matrix(1, 2, {3, 0})).ok());
  const std::vector<float> q{1.0f, 0.0f};
  auto distances = ncm.Distances(q.data(), q.size()).value();
  ASSERT_EQ(distances.size(), 3u);
  EXPECT_EQ(distances[0].first, 0);
  EXPECT_EQ(distances[1].first, 2);
  EXPECT_EQ(distances[2].first, 1);
  EXPECT_LE(distances[0].second, distances[1].second);
  EXPECT_LE(distances[1].second, distances[2].second);
}

TEST(NcmClassifierTest, AddingClassNeedsNoRetraining) {
  // The property the paper builds on: a class is added by one prototype
  // insert, and existing decisions away from it are untouched.
  NcmClassifier ncm = TwoClassClassifier();
  const std::vector<float> q{1.0f, 1.0f};
  EXPECT_EQ(ncm.Classify(q).value().activity, 0);
  ASSERT_TRUE(
      ncm.SetPrototypeFromEmbeddings(5, Matrix(1, 2, {100, 100})).ok());
  EXPECT_EQ(ncm.num_classes(), 3u);
  EXPECT_EQ(ncm.Classify(q).value().activity, 0);  // unchanged
  EXPECT_EQ(ncm.Classify({99.0f, 99.0f}).value().activity, 5);
}

TEST(NcmClassifierTest, RemoveClass) {
  NcmClassifier ncm = TwoClassClassifier();
  ASSERT_TRUE(ncm.RemoveClass(1).ok());
  EXPECT_EQ(ncm.num_classes(), 1u);
  EXPECT_EQ(ncm.RemoveClass(1).code(), StatusCode::kNotFound);
  // Every query now lands on the remaining class.
  EXPECT_EQ(ncm.Classify({100.0f, 0.0f}).value().activity, 0);
}

TEST(NcmClassifierTest, DimMismatchRejected) {
  NcmClassifier ncm = TwoClassClassifier();
  EXPECT_EQ(ncm.Classify({1.0f}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(
      ncm.SetPrototypeFromEmbeddings(9, Matrix(1, 3, {1, 2, 3})).ok());
}

TEST(NcmClassifierTest, EmptyClassifierFailsClassification) {
  NcmClassifier ncm;
  EXPECT_EQ(ncm.Classify({1.0f, 2.0f}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(NcmClassifierTest, EmptyEmbeddingBatchRejected) {
  NcmClassifier ncm;
  EXPECT_FALSE(ncm.SetPrototypeFromEmbeddings(0, Matrix(0, 2)).ok());
}

TEST(NcmClassifierTest, FromSupportSetBuildsAllPrototypes) {
  SupportSet support(4, SelectionStrategy::kRandom);
  Rng rng(1);
  sensors::FeatureDataset c0, c1;
  for (int i = 0; i < 6; ++i) {
    c0.Append({0.0f + i * 0.01f, 0.0f}, 0);
    c1.Append({8.0f + i * 0.01f, 0.0f}, 1);
  }
  ASSERT_TRUE(support.SetClass(0, c0, nullptr, &rng).ok());
  ASSERT_TRUE(support.SetClass(1, c1, nullptr, &rng).ok());

  IdentityEmbedder embedder;
  auto ncm = NcmClassifier::FromSupportSet(support, &embedder);
  ASSERT_TRUE(ncm.ok());
  EXPECT_EQ(ncm.value().num_classes(), 2u);
  EXPECT_EQ(ncm.value().Classify({0.5f, 0.0f}).value().activity, 0);
  EXPECT_EQ(ncm.value().Classify({7.5f, 0.0f}).value().activity, 1);
}

TEST(NcmClassifierTest, FromEmptySupportSetFails) {
  SupportSet support(4, SelectionStrategy::kRandom);
  IdentityEmbedder embedder;
  EXPECT_FALSE(NcmClassifier::FromSupportSet(support, &embedder).ok());
  EXPECT_FALSE(NcmClassifier::FromSupportSet(support, nullptr).ok());
}

TEST(NcmClassifierTest, RejectionThresholdYieldsUnknown) {
  NcmClassifier ncm = TwoClassClassifier();
  const std::vector<float> far{100.0f, 100.0f};  // ~134 from both prototypes
  auto accepted = ncm.Classify(far).value();
  EXPECT_NE(accepted.activity, kUnknownActivity);

  auto rejected =
      ncm.ClassifyWithRejection(far.data(), far.size(), 50.0).value();
  EXPECT_EQ(rejected.activity, kUnknownActivity);
  EXPECT_TRUE(rejected.is_unknown());
  // Distance of the would-be winner is preserved for display.
  EXPECT_NEAR(rejected.distance, accepted.distance, 1e-9);

  // Close queries are unaffected by the threshold.
  const std::vector<float> near{0.5f, 0.0f};
  auto kept = ncm.ClassifyWithRejection(near.data(), near.size(), 50.0)
                  .value();
  EXPECT_EQ(kept.activity, 0);
}

TEST(NcmClassifierTest, SerializationRoundTrip) {
  NcmClassifier ncm = TwoClassClassifier();
  BinaryWriter w;
  ncm.Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = NcmClassifier::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_classes(), 2u);
  EXPECT_EQ(back.value().embedding_dim(), 2u);
  EXPECT_EQ(back.value().Classify({9.0f, 0.0f}).value().activity, 1);
}

TEST(NcmClassifierTest, DeserializeRejectsDimMismatch) {
  BinaryWriter w;
  w.WriteU64(3);  // dim 3
  w.WriteU64(1);  // one prototype
  w.WriteI64(0);
  w.WriteF32Vector({1.0f, 2.0f});  // but only 2 floats
  BinaryReader r(w.buffer());
  EXPECT_FALSE(NcmClassifier::Deserialize(&r).ok());
}

TEST(NcmClassifierTest, QuantizePrototypesEmptyFails) {
  NcmClassifier ncm;
  EXPECT_EQ(ncm.QuantizePrototypes().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(ncm.quantized());
}

TEST(NcmClassifierTest, QuantizedScanAgreesWithFp32) {
  NcmClassifier fp = TwoClassClassifier();
  NcmClassifier q = fp;
  ASSERT_TRUE(q.QuantizePrototypes().ok());
  EXPECT_TRUE(q.quantized());
  EXPECT_FALSE(fp.quantized());
  for (float x : {0.0f, 1.5f, 3.0f, 7.0f, 8.5f, 10.0f}) {
    const std::vector<float> probe{x, 0.4f};
    auto pf = fp.Classify(probe).value();
    auto pq = q.Classify(probe).value();
    EXPECT_EQ(pf.activity, pq.activity) << "probe x=" << x;
    EXPECT_NEAR(pf.distance, pq.distance, 0.05 * (pf.distance + 1.0));
  }
}

TEST(NcmClassifierTest, QuantizePrototypesIsIdempotent) {
  NcmClassifier ncm = TwoClassClassifier();
  ASSERT_TRUE(ncm.QuantizePrototypes().ok());
  const std::vector<float> p1 = ncm.Prototype(1).value();
  const double d1 = ncm.Classify({3.0f, 1.0f}).value().distance;
  // The max-|q| element of a quantized vector is exactly ±127, so a second
  // quantization of the dequantized prototype recovers the identical scale
  // and codes: nothing may move.
  ASSERT_TRUE(ncm.QuantizePrototypes().ok());
  const std::vector<float> p2 = ncm.Prototype(1).value();
  ASSERT_EQ(p1.size(), p2.size());
  for (size_t i = 0; i < p1.size(); ++i) EXPECT_EQ(p1[i], p2[i]);
  EXPECT_EQ(ncm.Classify({3.0f, 1.0f}).value().distance, d1);
}

TEST(NcmClassifierTest, QuantizedClassifierTracksUpdatesAndRemovals) {
  NcmClassifier ncm = TwoClassClassifier();
  ASSERT_TRUE(ncm.QuantizePrototypes().ok());
  // A prototype added after quantization joins the int8 scan.
  ASSERT_TRUE(
      ncm.SetPrototypeFromEmbeddings(2, Matrix(1, 2, {0, 10})).ok());
  EXPECT_EQ(ncm.Classify({0.2f, 9.5f}).value().activity, 2);
  ASSERT_TRUE(ncm.RemoveClass(2).ok());
  EXPECT_NE(ncm.Classify({0.2f, 9.5f}).value().activity, 2);
}

TEST(NcmClassifierTest, ScratchReuseIsByteIdentical) {
  // Mirror of the KnnClassifier scratch contract: a reused caller-provided
  // scratch — even one carrying stale capacity from a larger classifier —
  // must produce byte-identical predictions to the scratch-free overload.
  NcmClassifier small = TwoClassClassifier();
  NcmClassifier big;
  for (int c = 0; c < 12; ++c) {
    MAGNETO_CHECK(big.SetPrototypeFromEmbeddings(
                         c, Matrix(1, 2, {static_cast<float>(5 * c), 1.0f}))
                      .ok());
  }
  NcmClassifier::Scratch scratch;
  for (float x : {0.0f, 3.0f, 5.1f, 27.0f, 55.0f}) {
    const std::vector<float> q{x, 0.5f};
    Prediction big_pred = big.Classify(q.data(), q.size(), &scratch).value();
    Prediction big_ref = big.Classify(q).value();
    Prediction small_pred =
        small.Classify(q.data(), q.size(), &scratch).value();
    Prediction small_ref = small.Classify(q).value();
    EXPECT_EQ(std::memcmp(&big_pred, &big_ref, sizeof(Prediction)), 0)
        << "big, x=" << x;
    EXPECT_EQ(std::memcmp(&small_pred, &small_ref, sizeof(Prediction)), 0)
        << "small, x=" << x;
    Prediction rej_pred =
        big.ClassifyWithRejection(q.data(), q.size(), 2.0, &scratch).value();
    Prediction rej_ref =
        big.ClassifyWithRejection(q.data(), q.size(), 2.0).value();
    EXPECT_EQ(std::memcmp(&rej_pred, &rej_ref, sizeof(Prediction)), 0)
        << "reject, x=" << x;
  }
}

TEST(NcmClassifierTest, NonFinitePrototypeRanksLast) {
  // Regression: a NaN prototype distance used to reach std::sort's
  // comparator, which is UB (NaN breaks strict weak ordering). Sanitized to
  // +inf it sorts last and can never win.
  NcmClassifier ncm;
  ASSERT_TRUE(ncm.SetPrototypeFromEmbeddings(
                     0, Matrix(1, 2,
                               {std::numeric_limits<float>::quiet_NaN(), 0}))
                  .ok());
  ASSERT_TRUE(ncm.SetPrototypeFromEmbeddings(1, Matrix(1, 2, {5, 0})).ok());
  auto pred = ncm.Classify({5.0f, 0.0f}).value();
  EXPECT_EQ(pred.activity, 1);
  EXPECT_TRUE(std::isfinite(pred.distance));
  const std::vector<float> q{5.0f, 0.0f};
  auto all = ncm.Distances(q.data(), q.size()).value();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[1].first, 0);  // poisoned prototype sorted last
  EXPECT_TRUE(std::isinf(all[1].second));
}

// `classes` prototypes on a widely spaced 2-D grid.
NcmClassifier GridNcm(int classes) {
  NcmClassifier ncm;
  for (int c = 0; c < classes; ++c) {
    const float cx = static_cast<float>(c % 8) * 20.0f;
    const float cy = static_cast<float>(c / 8) * 20.0f;
    MAGNETO_CHECK(
        ncm.SetPrototypeFromEmbeddings(c, Matrix(1, 2, {cx, cy})).ok());
  }
  return ncm;
}

AnnOptions SmallAnn(size_t nlist, size_t nprobe) {
  AnnOptions options;
  options.min_index_size = 1;
  options.nlist = nlist;
  options.nprobe = nprobe;
  return options;
}

TEST(NcmClassifierTest, AnnFullProbeMatchesExactActivityAndDistance) {
  NcmClassifier exact = GridNcm(32);
  NcmClassifier ann = exact;
  ASSERT_TRUE(ann.EnableAnn(SmallAnn(8, 8)).ok());
  ASSERT_TRUE(ann.ann_active());
  EXPECT_TRUE(ann.ann_enabled());
  EXPECT_FALSE(exact.ann_active());

  Rng rng(11);
  for (int t = 0; t < 50; ++t) {
    const std::vector<float> q{static_cast<float>(rng.Uniform(-5.0, 150.0)),
                               static_cast<float>(rng.Uniform(-5.0, 70.0))};
    auto pe = exact.Classify(q).value();
    auto pa = ann.Classify(q).value();
    EXPECT_EQ(pe.activity, pa.activity) << "trial " << t;
    EXPECT_DOUBLE_EQ(pe.distance, pa.distance) << "trial " << t;
  }
}

TEST(NcmClassifierTest, AnnRebuildsOnEveryMutation) {
  NcmClassifier ncm = GridNcm(32);
  ASSERT_TRUE(ncm.EnableAnn(SmallAnn(8, 2)).ok());
  ASSERT_TRUE(ncm.ann_active());

  // New class lands in the index immediately.
  ASSERT_TRUE(
      ncm.SetPrototypeFromEmbeddings(500, Matrix(1, 2, {300, 300})).ok());
  EXPECT_EQ(ncm.Classify({299.0f, 301.0f}).value().activity, 500);

  // A removed class is gone from the candidate pool immediately.
  ASSERT_TRUE(ncm.RemoveClass(500).ok());
  EXPECT_NE(ncm.Classify({299.0f, 301.0f}).value().activity, 500);

  // Quantization re-trains the quantizer on the dequantized prototypes and
  // keeps serving.
  ASSERT_TRUE(ncm.QuantizePrototypes().ok());
  EXPECT_TRUE(ncm.ann_active());
  EXPECT_EQ(ncm.Classify({20.0f, 0.5f}).value().activity, 1);
}

TEST(NcmClassifierTest, AnnBelowThresholdFallsBackToExact) {
  NcmClassifier ncm = TwoClassClassifier();
  AnnOptions options;
  options.min_index_size = 100;  // 2 classes < threshold
  ASSERT_TRUE(ncm.EnableAnn(options).ok());
  EXPECT_TRUE(ncm.ann_enabled());
  EXPECT_FALSE(ncm.ann_active());
  NcmClassifier exact = TwoClassClassifier();
  for (float x : {0.0f, 4.9f, 5.1f, 10.0f}) {
    const std::vector<float> q{x, 0.0f};
    Prediction pa = ncm.Classify(q).value();
    Prediction pe = exact.Classify(q).value();
    EXPECT_EQ(std::memcmp(&pa, &pe, sizeof(Prediction)), 0) << "x=" << x;
  }
  ncm.DisableAnn();
  EXPECT_FALSE(ncm.ann_enabled());
}

TEST(NcmClassifierTest, AnnNotSerialized) {
  NcmClassifier ncm = GridNcm(32);
  ASSERT_TRUE(ncm.EnableAnn(SmallAnn(8, 2)).ok());
  ASSERT_TRUE(ncm.ann_active());
  BinaryWriter with_ann;
  ncm.Serialize(&with_ann);
  BinaryWriter without_ann;
  GridNcm(32).Serialize(&without_ann);
  EXPECT_EQ(with_ann.buffer(), without_ann.buffer());  // wire format unchanged
  BinaryReader reader(with_ann.buffer());
  auto back = NcmClassifier::Deserialize(&reader);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back.value().ann_enabled());  // deserialized = exact
}

TEST(NcmClassifierTest, DistancesAlwaysCoversEveryPrototype) {
  // `Distances` promises a distance to *every* prototype; ANN must not
  // truncate it.
  NcmClassifier ncm = GridNcm(32);
  ASSERT_TRUE(ncm.EnableAnn(SmallAnn(8, 1)).ok());
  const std::vector<float> q{0.0f, 0.0f};
  auto all = ncm.Distances(q.data(), q.size()).value();
  EXPECT_EQ(all.size(), 32u);
}

TEST(NcmClassifierTest, ConcurrentAnnClassifyWithPerThreadScratch) {
  // ANN classify is read-only over an immutable shared index: concurrent
  // calls with distinct scratches must agree with serial answers (run under
  // -DMAGNETO_SANITIZE=thread via check.sh's ANN leg).
  NcmClassifier ncm = GridNcm(32);
  ASSERT_TRUE(ncm.EnableAnn(SmallAnn(8, 3)).ok());
  ASSERT_TRUE(ncm.ann_active());
  std::vector<std::vector<float>> queries;
  for (int c = 0; c < 8; ++c) {
    queries.push_back({static_cast<float>(c % 8) * 20.0f + 0.5f,
                       static_cast<float>(c / 8) * 20.0f - 0.5f});
  }
  std::vector<Prediction> expected;
  for (const auto& q : queries) expected.push_back(ncm.Classify(q).value());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      NcmClassifier::Scratch scratch;
      for (int rep = 0; rep < 50; ++rep) {
        const size_t qi = static_cast<size_t>((t + rep) % queries.size());
        auto pred =
            ncm.Classify(queries[qi].data(), queries[qi].size(), &scratch);
        if (!pred.ok() ||
            std::memcmp(&pred.value(), &expected[qi], sizeof(Prediction)) !=
                0) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace magneto::core
