#include "core/ncm_classifier.h"

#include <gtest/gtest.h>

namespace magneto::core {
namespace {

class IdentityEmbedder : public Embedder {
 public:
  Matrix Embed(const Matrix& features) override { return features; }
  size_t embedding_dim() const override { return 2; }
};

NcmClassifier TwoClassClassifier() {
  NcmClassifier ncm;
  // Prototypes at (0,0) and (10,0).
  MAGNETO_CHECK(
      ncm.SetPrototypeFromEmbeddings(0, Matrix(1, 2, {0, 0})).ok());
  MAGNETO_CHECK(
      ncm.SetPrototypeFromEmbeddings(1, Matrix(1, 2, {10, 0})).ok());
  return ncm;
}

TEST(NcmClassifierTest, PrototypeIsClassMean) {
  NcmClassifier ncm;
  Matrix embeddings(3, 2, {0, 0, 2, 4, 4, 2});
  ASSERT_TRUE(ncm.SetPrototypeFromEmbeddings(7, embeddings).ok());
  auto proto = ncm.Prototype(7);
  ASSERT_TRUE(proto.ok());
  EXPECT_FLOAT_EQ(proto.value()[0], 2.0f);
  EXPECT_FLOAT_EQ(proto.value()[1], 2.0f);
}

TEST(NcmClassifierTest, ClassifiesByNearestPrototype) {
  NcmClassifier ncm = TwoClassClassifier();
  const std::vector<float> near0{1.0f, 1.0f};
  auto pred = ncm.Classify(near0);
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred.value().activity, 0);
  EXPECT_NEAR(pred.value().distance, std::sqrt(2.0), 1e-5);

  const std::vector<float> near1{9.0f, -1.0f};
  EXPECT_EQ(ncm.Classify(near1).value().activity, 1);
}

TEST(NcmClassifierTest, ConfidenceReflectsMarginBetweenPrototypes) {
  NcmClassifier ncm = TwoClassClassifier();
  auto confident = ncm.Classify({0.0f, 0.0f}).value();
  auto borderline = ncm.Classify({5.0f, 0.0f}).value();
  EXPECT_GT(confident.confidence, 0.99);
  EXPECT_NEAR(borderline.confidence, 0.5, 1e-6);
  EXPECT_GE(confident.confidence, borderline.confidence);
}

TEST(NcmClassifierTest, DistancesSortedAscending) {
  NcmClassifier ncm = TwoClassClassifier();
  ASSERT_TRUE(
      ncm.SetPrototypeFromEmbeddings(2, Matrix(1, 2, {3, 0})).ok());
  const std::vector<float> q{1.0f, 0.0f};
  auto distances = ncm.Distances(q.data(), q.size()).value();
  ASSERT_EQ(distances.size(), 3u);
  EXPECT_EQ(distances[0].first, 0);
  EXPECT_EQ(distances[1].first, 2);
  EXPECT_EQ(distances[2].first, 1);
  EXPECT_LE(distances[0].second, distances[1].second);
  EXPECT_LE(distances[1].second, distances[2].second);
}

TEST(NcmClassifierTest, AddingClassNeedsNoRetraining) {
  // The property the paper builds on: a class is added by one prototype
  // insert, and existing decisions away from it are untouched.
  NcmClassifier ncm = TwoClassClassifier();
  const std::vector<float> q{1.0f, 1.0f};
  EXPECT_EQ(ncm.Classify(q).value().activity, 0);
  ASSERT_TRUE(
      ncm.SetPrototypeFromEmbeddings(5, Matrix(1, 2, {100, 100})).ok());
  EXPECT_EQ(ncm.num_classes(), 3u);
  EXPECT_EQ(ncm.Classify(q).value().activity, 0);  // unchanged
  EXPECT_EQ(ncm.Classify({99.0f, 99.0f}).value().activity, 5);
}

TEST(NcmClassifierTest, RemoveClass) {
  NcmClassifier ncm = TwoClassClassifier();
  ASSERT_TRUE(ncm.RemoveClass(1).ok());
  EXPECT_EQ(ncm.num_classes(), 1u);
  EXPECT_EQ(ncm.RemoveClass(1).code(), StatusCode::kNotFound);
  // Every query now lands on the remaining class.
  EXPECT_EQ(ncm.Classify({100.0f, 0.0f}).value().activity, 0);
}

TEST(NcmClassifierTest, DimMismatchRejected) {
  NcmClassifier ncm = TwoClassClassifier();
  EXPECT_EQ(ncm.Classify({1.0f}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(
      ncm.SetPrototypeFromEmbeddings(9, Matrix(1, 3, {1, 2, 3})).ok());
}

TEST(NcmClassifierTest, EmptyClassifierFailsClassification) {
  NcmClassifier ncm;
  EXPECT_EQ(ncm.Classify({1.0f, 2.0f}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(NcmClassifierTest, EmptyEmbeddingBatchRejected) {
  NcmClassifier ncm;
  EXPECT_FALSE(ncm.SetPrototypeFromEmbeddings(0, Matrix(0, 2)).ok());
}

TEST(NcmClassifierTest, FromSupportSetBuildsAllPrototypes) {
  SupportSet support(4, SelectionStrategy::kRandom);
  Rng rng(1);
  sensors::FeatureDataset c0, c1;
  for (int i = 0; i < 6; ++i) {
    c0.Append({0.0f + i * 0.01f, 0.0f}, 0);
    c1.Append({8.0f + i * 0.01f, 0.0f}, 1);
  }
  ASSERT_TRUE(support.SetClass(0, c0, nullptr, &rng).ok());
  ASSERT_TRUE(support.SetClass(1, c1, nullptr, &rng).ok());

  IdentityEmbedder embedder;
  auto ncm = NcmClassifier::FromSupportSet(support, &embedder);
  ASSERT_TRUE(ncm.ok());
  EXPECT_EQ(ncm.value().num_classes(), 2u);
  EXPECT_EQ(ncm.value().Classify({0.5f, 0.0f}).value().activity, 0);
  EXPECT_EQ(ncm.value().Classify({7.5f, 0.0f}).value().activity, 1);
}

TEST(NcmClassifierTest, FromEmptySupportSetFails) {
  SupportSet support(4, SelectionStrategy::kRandom);
  IdentityEmbedder embedder;
  EXPECT_FALSE(NcmClassifier::FromSupportSet(support, &embedder).ok());
  EXPECT_FALSE(NcmClassifier::FromSupportSet(support, nullptr).ok());
}

TEST(NcmClassifierTest, RejectionThresholdYieldsUnknown) {
  NcmClassifier ncm = TwoClassClassifier();
  const std::vector<float> far{100.0f, 100.0f};  // ~134 from both prototypes
  auto accepted = ncm.Classify(far).value();
  EXPECT_NE(accepted.activity, kUnknownActivity);

  auto rejected =
      ncm.ClassifyWithRejection(far.data(), far.size(), 50.0).value();
  EXPECT_EQ(rejected.activity, kUnknownActivity);
  EXPECT_TRUE(rejected.is_unknown());
  // Distance of the would-be winner is preserved for display.
  EXPECT_NEAR(rejected.distance, accepted.distance, 1e-9);

  // Close queries are unaffected by the threshold.
  const std::vector<float> near{0.5f, 0.0f};
  auto kept = ncm.ClassifyWithRejection(near.data(), near.size(), 50.0)
                  .value();
  EXPECT_EQ(kept.activity, 0);
}

TEST(NcmClassifierTest, SerializationRoundTrip) {
  NcmClassifier ncm = TwoClassClassifier();
  BinaryWriter w;
  ncm.Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = NcmClassifier::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_classes(), 2u);
  EXPECT_EQ(back.value().embedding_dim(), 2u);
  EXPECT_EQ(back.value().Classify({9.0f, 0.0f}).value().activity, 1);
}

TEST(NcmClassifierTest, DeserializeRejectsDimMismatch) {
  BinaryWriter w;
  w.WriteU64(3);  // dim 3
  w.WriteU64(1);  // one prototype
  w.WriteI64(0);
  w.WriteF32Vector({1.0f, 2.0f});  // but only 2 floats
  BinaryReader r(w.buffer());
  EXPECT_FALSE(NcmClassifier::Deserialize(&r).ok());
}

TEST(NcmClassifierTest, QuantizePrototypesEmptyFails) {
  NcmClassifier ncm;
  EXPECT_EQ(ncm.QuantizePrototypes().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(ncm.quantized());
}

TEST(NcmClassifierTest, QuantizedScanAgreesWithFp32) {
  NcmClassifier fp = TwoClassClassifier();
  NcmClassifier q = fp;
  ASSERT_TRUE(q.QuantizePrototypes().ok());
  EXPECT_TRUE(q.quantized());
  EXPECT_FALSE(fp.quantized());
  for (float x : {0.0f, 1.5f, 3.0f, 7.0f, 8.5f, 10.0f}) {
    const std::vector<float> probe{x, 0.4f};
    auto pf = fp.Classify(probe).value();
    auto pq = q.Classify(probe).value();
    EXPECT_EQ(pf.activity, pq.activity) << "probe x=" << x;
    EXPECT_NEAR(pf.distance, pq.distance, 0.05 * (pf.distance + 1.0));
  }
}

TEST(NcmClassifierTest, QuantizePrototypesIsIdempotent) {
  NcmClassifier ncm = TwoClassClassifier();
  ASSERT_TRUE(ncm.QuantizePrototypes().ok());
  const std::vector<float> p1 = ncm.Prototype(1).value();
  const double d1 = ncm.Classify({3.0f, 1.0f}).value().distance;
  // The max-|q| element of a quantized vector is exactly ±127, so a second
  // quantization of the dequantized prototype recovers the identical scale
  // and codes: nothing may move.
  ASSERT_TRUE(ncm.QuantizePrototypes().ok());
  const std::vector<float> p2 = ncm.Prototype(1).value();
  ASSERT_EQ(p1.size(), p2.size());
  for (size_t i = 0; i < p1.size(); ++i) EXPECT_EQ(p1[i], p2[i]);
  EXPECT_EQ(ncm.Classify({3.0f, 1.0f}).value().distance, d1);
}

TEST(NcmClassifierTest, QuantizedClassifierTracksUpdatesAndRemovals) {
  NcmClassifier ncm = TwoClassClassifier();
  ASSERT_TRUE(ncm.QuantizePrototypes().ok());
  // A prototype added after quantization joins the int8 scan.
  ASSERT_TRUE(
      ncm.SetPrototypeFromEmbeddings(2, Matrix(1, 2, {0, 10})).ok());
  EXPECT_EQ(ncm.Classify({0.2f, 9.5f}).value().activity, 2);
  ASSERT_TRUE(ncm.RemoveClass(2).ok());
  EXPECT_NE(ncm.Classify({0.2f, 9.5f}).value().activity, 2);
}

}  // namespace
}  // namespace magneto::core
