#include "core/incremental_learner.h"

#include <gtest/gtest.h>

#include "learn/metrics.h"
#include "sensors/user_profile.h"
#include "testing/test_helpers.h"

namespace magneto::core {
namespace {

IncrementalOptions FastUpdateOptions() {
  IncrementalOptions options;
  options.train.epochs = 6;
  options.train.batch_size = 32;
  options.train.learning_rate = 5e-4;
  options.train.distill_weight = 1.0;
  options.train.seed = 17;
  options.seed = 18;
  return options;
}

struct Deployment {
  EdgeModel model;
  SupportSet support;
};

Deployment Deploy(uint64_t seed) {
  ModelBundle bundle = testing::SmallPretrainedBundle(seed);
  SupportSet support = std::move(bundle.support);
  EdgeModel model = std::move(bundle).ToEdgeModel();
  return {std::move(model), std::move(support)};
}

std::vector<sensors::Recording> GestureRecordings(uint64_t seed,
                                                  double seconds = 25.0) {
  sensors::SyntheticGenerator gen(seed);
  return {gen.Generate(sensors::MakeGestureModel(seed), seconds)};
}

TEST(IncrementalLearnerTest, LearnNewActivityRegistersAndClassifies) {
  Deployment dep = Deploy(301);
  IncrementalLearner learner(FastUpdateOptions());
  auto report = learner.LearnNewActivity(&dep.model, &dep.support,
                                         "Gesture Hi",
                                         GestureRecordings(1));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().new_windows, 25u);
  EXPECT_TRUE(dep.model.registry().Contains(report.value().activity));
  EXPECT_EQ(dep.model.registry().NameOf(report.value().activity).value(),
            "Gesture Hi");
  EXPECT_TRUE(dep.support.HasClass(report.value().activity));
  EXPECT_TRUE(dep.model.classifier().HasClass(report.value().activity));

  // The model now recognises fresh gesture data.
  sensors::SyntheticGenerator gen(2);
  sensors::Recording fresh =
      gen.Generate(sensors::MakeGestureModel(1), 8.0);
  auto preds = dep.model.InferRecording(fresh);
  ASSERT_TRUE(preds.ok());
  size_t hits = 0;
  for (const auto& p : preds.value()) {
    if (p.prediction.activity == report.value().activity) ++hits;
  }
  EXPECT_GT(hits, preds.value().size() / 2)
      << "gesture recognised in " << hits << "/" << preds.value().size();
}

TEST(IncrementalLearnerTest, OldClassesSurviveTheUpdate) {
  Deployment dep = Deploy(302);
  // Baseline accuracy on held-out base-activity data.
  auto eval = dep.model.pipeline()
                  .ProcessLabeled(testing::SmallCorpus(999, 2, 4.0))
                  .value();
  auto measure = [&](EdgeModel* model) {
    learn::ConfusionMatrix cm;
    auto pairs = model->Predict(eval);
    EXPECT_TRUE(pairs.ok());
    for (const auto& [truth, pred] : pairs.value()) {
      cm.Add(truth, pred);
    }
    return cm.Accuracy();
  };
  const double before = measure(&dep.model);

  IncrementalLearner learner(FastUpdateOptions());
  ASSERT_TRUE(learner
                  .LearnNewActivity(&dep.model, &dep.support, "Gesture Hi",
                                    GestureRecordings(3))
                  .ok());
  const double after = measure(&dep.model);
  // The distillation term keeps old-class accuracy within a modest band.
  EXPECT_GT(after, before - 0.15)
      << "catastrophic forgetting: " << before << " -> " << after;
}

TEST(IncrementalLearnerTest, DuplicateNameRejected) {
  Deployment dep = Deploy(303);
  IncrementalLearner learner(FastUpdateOptions());
  auto res = learner.LearnNewActivity(&dep.model, &dep.support, "Walk",
                                      GestureRecordings(4));
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kAlreadyExists);
}

TEST(IncrementalLearnerTest, TooShortRecordingFailsAndRollsBack) {
  Deployment dep = Deploy(304);
  IncrementalLearner learner(FastUpdateOptions());
  sensors::SyntheticGenerator gen(5);
  std::vector<sensors::Recording> tiny{
      gen.Generate(sensors::MakeGestureModel(5), 0.5)};  // < one window
  auto res = learner.LearnNewActivity(&dep.model, &dep.support, "Gesture Hi",
                                      tiny);
  EXPECT_FALSE(res.ok());
  // The failed name must be free for a retry with a longer capture.
  EXPECT_FALSE(dep.model.registry().IdOf("Gesture Hi").ok());
  auto retry = learner.LearnNewActivity(&dep.model, &dep.support,
                                        "Gesture Hi", GestureRecordings(6));
  EXPECT_TRUE(retry.ok()) << retry.status();
}

TEST(IncrementalLearnerTest, NullArgumentsRejected) {
  Deployment dep = Deploy(305);
  IncrementalLearner learner(FastUpdateOptions());
  EXPECT_FALSE(learner
                   .LearnNewActivity(nullptr, &dep.support, "X",
                                     GestureRecordings(7))
                   .ok());
  EXPECT_FALSE(
      learner.LearnNewActivity(&dep.model, nullptr, "X", GestureRecordings(7))
          .ok());
}

TEST(IncrementalLearnerTest, CalibrationReplacesSupportData) {
  Deployment dep = Deploy(306);
  IncrementalLearner learner(FastUpdateOptions());

  // The user's personal walking style, strongly shifted from canonical.
  sensors::UserProfile user(77, 0.8);
  sensors::SignalModel personal_walk =
      user.Personalize(sensors::DefaultActivityLibrary()[sensors::kWalk]);
  sensors::SyntheticGenerator gen(8);
  std::vector<sensors::Recording> capture{gen.Generate(personal_walk, 25.0)};

  const size_t size_before = dep.support.ClassSize(sensors::kWalk);
  auto report =
      learner.Calibrate(&dep.model, &dep.support, sensors::kWalk, capture);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().activity, sensors::kWalk);
  // Support class replaced (same capacity cap).
  EXPECT_LE(dep.support.ClassSize(sensors::kWalk),
            dep.support.capacity_per_class());
  EXPECT_GT(dep.support.ClassSize(sensors::kWalk), 0u);
  (void)size_before;

  // Calibrated model recognises the personal style.
  sensors::Recording fresh = gen.Generate(personal_walk, 8.0);
  auto preds = dep.model.InferRecording(fresh);
  ASSERT_TRUE(preds.ok());
  size_t hits = 0;
  for (const auto& p : preds.value()) {
    if (p.prediction.activity == sensors::kWalk) ++hits;
  }
  EXPECT_GT(hits, preds.value().size() / 2);
}

TEST(IncrementalLearnerTest, CalibrateUnknownActivityFails) {
  Deployment dep = Deploy(307);
  IncrementalLearner learner(FastUpdateOptions());
  auto res =
      learner.Calibrate(&dep.model, &dep.support, 999, GestureRecordings(9));
  EXPECT_EQ(res.status().code(), StatusCode::kNotFound);
}

TEST(IncrementalLearnerTest, SequentialUpdatesAddMultipleActivities) {
  // "the learning process can be repeated to accommodate the addition of
  // multiple activities" (§3.3).
  Deployment dep = Deploy(308);
  IncrementalLearner learner(FastUpdateOptions());
  auto r1 = learner.LearnNewActivity(&dep.model, &dep.support, "Gesture Hi",
                                     GestureRecordings(10));
  ASSERT_TRUE(r1.ok());
  auto r2 = learner.LearnNewActivity(&dep.model, &dep.support, "Gesture Bye",
                                     GestureRecordings(11));
  ASSERT_TRUE(r2.ok());
  EXPECT_NE(r1.value().activity, r2.value().activity);
  EXPECT_EQ(dep.model.registry().size(), 7u);
  EXPECT_EQ(dep.support.NumClasses(), 7u);
  EXPECT_EQ(dep.model.classifier().num_classes(), 7u);
}

TEST(IncrementalLearnerTest, ReportAccountsSupportBytes) {
  Deployment dep = Deploy(309);
  IncrementalLearner learner(FastUpdateOptions());
  auto report = learner.LearnNewActivity(&dep.model, &dep.support,
                                         "Gesture Hi", GestureRecordings(12));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().support_bytes, dep.support.MemoryBytes());
  EXPECT_GT(report.value().train.epochs.size(), 0u);
}

}  // namespace
}  // namespace magneto::core
