#include "core/cloud_initializer.h"

#include <gtest/gtest.h>

#include "testing/test_helpers.h"

namespace magneto::core {
namespace {

TEST(CloudInitializerTest, ProducesCompleteBundle) {
  CloudInitializer cloud(testing::SmallCloudConfig());
  CloudReport report;
  auto bundle = cloud.Initialize(testing::SmallCorpus(1),
                                 sensors::ActivityRegistry::BaseActivities(),
                                 &report);
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  EXPECT_EQ(bundle.value().registry.size(), 5u);
  EXPECT_EQ(bundle.value().support.NumClasses(), 5u);
  EXPECT_EQ(bundle.value().classifier.num_classes(), 5u);
  EXPECT_TRUE(bundle.value().pipeline.fitted());
  EXPECT_GT(bundle.value().backbone.NumParameters(), 0u);
  EXPECT_GT(report.training_windows, 0u);
  EXPECT_EQ(report.bundle_bytes, bundle.value().SerializedBytes());
  // Training must have actually reduced the loss.
  ASSERT_GE(report.train.epochs.size(), 2u);
  EXPECT_LT(report.train.final_embedding_loss(),
            report.train.epochs.front().embedding_loss);
}

TEST(CloudInitializerTest, EmptyCorpusRejected) {
  CloudInitializer cloud(testing::SmallCloudConfig());
  EXPECT_FALSE(
      cloud.Initialize({}, sensors::ActivityRegistry::BaseActivities()).ok());
}

TEST(CloudInitializerTest, UnregisteredLabelRejected) {
  CloudInitializer cloud(testing::SmallCloudConfig());
  auto corpus = testing::SmallCorpus(2, 1, 4.0);
  corpus[0].label = 999;  // not in the registry
  auto bundle =
      cloud.Initialize(corpus, sensors::ActivityRegistry::BaseActivities());
  EXPECT_FALSE(bundle.ok());
  EXPECT_EQ(bundle.status().code(), StatusCode::kInvalidArgument);
}

TEST(CloudInitializerTest, SupportCapacityHonoured) {
  core::CloudConfig config = testing::SmallCloudConfig();
  config.support_capacity = 3;
  CloudInitializer cloud(config);
  auto bundle = cloud.Initialize(testing::SmallCorpus(3),
                                 sensors::ActivityRegistry::BaseActivities());
  ASSERT_TRUE(bundle.ok());
  for (sensors::ActivityId id : bundle.value().support.Classes()) {
    EXPECT_LE(bundle.value().support.ClassSize(id), 3u);
  }
}

TEST(CloudInitializerTest, DeterministicInSeed) {
  CloudInitializer cloud(testing::SmallCloudConfig());
  auto a = cloud.Initialize(testing::SmallCorpus(4),
                            sensors::ActivityRegistry::BaseActivities());
  auto b = cloud.Initialize(testing::SmallCorpus(4),
                            sensors::ActivityRegistry::BaseActivities());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().SerializeToString(), b.value().SerializeToString());
}

TEST(CloudInitializerTest, CustomRegistryAndExtraClassesWork) {
  // The initializer is not hard-wired to the five base activities: any
  // registry/corpus pairing trains, e.g. a subset.
  sensors::ActivityRegistry registry;
  ASSERT_TRUE(registry.RegisterWithId(sensors::kWalk, "Walk").ok());
  ASSERT_TRUE(registry.RegisterWithId(sensors::kRun, "Run").ok());
  sensors::SyntheticGenerator gen(5);
  sensors::ActivityLibrary lib = sensors::DefaultActivityLibrary();
  std::vector<sensors::LabeledRecording> corpus;
  for (int i = 0; i < 3; ++i) {
    corpus.push_back({gen.Generate(lib[sensors::kWalk], 4.0), sensors::kWalk});
    corpus.push_back({gen.Generate(lib[sensors::kRun], 4.0), sensors::kRun});
  }
  CloudInitializer cloud(testing::SmallCloudConfig());
  auto bundle = cloud.Initialize(corpus, registry);
  ASSERT_TRUE(bundle.ok());
  EXPECT_EQ(bundle.value().classifier.num_classes(), 2u);
}

TEST(CloudInitializerTest, SpectralFeatureModeTrains) {
  core::CloudConfig config = testing::SmallCloudConfig();
  config.pipeline.features = preprocess::FeatureMode::kSpectral;
  CloudInitializer cloud(config);
  auto bundle = cloud.Initialize(testing::SmallCorpus(6),
                                 sensors::ActivityRegistry::BaseActivities());
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  EXPECT_EQ(bundle.value().pipeline.feature_dim(),
            preprocess::kNumSpectralFeatures);
  EXPECT_EQ(bundle.value().backbone.InputDim(),
            preprocess::kNumSpectralFeatures);
}

}  // namespace
}  // namespace magneto::core
