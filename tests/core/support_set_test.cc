#include "core/support_set.h"

#include <cmath>
#include <limits>
#include <set>

#include <gtest/gtest.h>

namespace magneto::core {
namespace {

sensors::FeatureDataset ClassData(sensors::ActivityId id, size_t n,
                                  float center, uint64_t seed) {
  Rng rng(seed);
  sensors::FeatureDataset ds;
  for (size_t i = 0; i < n; ++i) {
    ds.Append({center + static_cast<float>(rng.Normal(0.0, 0.5)),
               static_cast<float>(rng.Normal(0.0, 0.5))},
              id);
  }
  return ds;
}

/// Identity embedder: embedding space == feature space.
class IdentityEmbedder : public Embedder {
 public:
  Matrix Embed(const Matrix& features) override { return features; }
  size_t embedding_dim() const override { return 2; }
};

TEST(SupportSetTest, RandomSelectionRespectsCapacity) {
  SupportSet set(5, SelectionStrategy::kRandom);
  Rng rng(1);
  ASSERT_TRUE(set.SetClass(0, ClassData(0, 20, 0.0f, 2), nullptr, &rng).ok());
  EXPECT_EQ(set.ClassSize(0), 5u);
  EXPECT_EQ(set.TotalSize(), 5u);
  EXPECT_TRUE(set.HasClass(0));
  EXPECT_FALSE(set.HasClass(1));
}

TEST(SupportSetTest, SmallClassKeptWhole) {
  SupportSet set(100, SelectionStrategy::kRandom);
  Rng rng(1);
  ASSERT_TRUE(set.SetClass(0, ClassData(0, 7, 0.0f, 3), nullptr, &rng).ok());
  EXPECT_EQ(set.ClassSize(0), 7u);
}

TEST(SupportSetTest, ForeignLabelRejected) {
  SupportSet set(5, SelectionStrategy::kRandom);
  Rng rng(1);
  sensors::FeatureDataset mixed = ClassData(0, 3, 0.0f, 4);
  mixed.Append({1.0f, 1.0f}, 1);
  EXPECT_EQ(set.SetClass(0, mixed, nullptr, &rng).code(),
            StatusCode::kInvalidArgument);
}

TEST(SupportSetTest, EmptyClassRejected) {
  SupportSet set(5, SelectionStrategy::kRandom);
  Rng rng(1);
  EXPECT_FALSE(set.SetClass(0, {}, nullptr, &rng).ok());
}

TEST(SupportSetTest, DimMismatchRejected) {
  SupportSet set(5, SelectionStrategy::kRandom);
  Rng rng(1);
  ASSERT_TRUE(set.SetClass(0, ClassData(0, 5, 0.0f, 5), nullptr, &rng).ok());
  sensors::FeatureDataset wrong;
  wrong.Append({1.0f, 2.0f, 3.0f}, 1);
  EXPECT_EQ(set.SetClass(1, wrong, nullptr, &rng).code(),
            StatusCode::kInvalidArgument);
}

TEST(SupportSetTest, SetClassReplacesPrevious) {
  SupportSet set(10, SelectionStrategy::kRandom);
  Rng rng(1);
  ASSERT_TRUE(set.SetClass(0, ClassData(0, 10, 0.0f, 6), nullptr, &rng).ok());
  // Calibration move: replace with data centred elsewhere.
  ASSERT_TRUE(set.SetClass(0, ClassData(0, 10, 50.0f, 7), nullptr, &rng).ok());
  EXPECT_EQ(set.ClassSize(0), 10u);
  Matrix exemplars = set.ClassExemplars(0).value();
  for (size_t i = 0; i < exemplars.rows(); ++i) {
    EXPECT_GT(exemplars.At(i, 0), 40.0f);
  }
}

TEST(SupportSetTest, HerdingPrefersMeanTrackingExemplars) {
  // With one extreme outlier, herding at k=1 must pick a central point, and
  // the herded subset mean must track the class mean better than the
  // worst-case random pick.
  sensors::FeatureDataset data;
  for (int i = 0; i < 20; ++i) {
    data.Append({static_cast<float>(i % 3) * 0.1f, 0.0f}, 0);
  }
  data.Append({100.0f, 0.0f}, 0);  // outlier

  SupportSet set(3, SelectionStrategy::kHerding);
  IdentityEmbedder embedder;
  ASSERT_TRUE(set.SetClass(0, data, &embedder, nullptr).ok());
  Matrix picked = set.ClassExemplars(0).value();
  // The herded prefix approximates the mean; mean of data ~ 4.86 in dim 0
  // (dominated by the outlier being averaged over 21 points). The first pick
  // is the single point closest to the mean — never the outlier itself at
  // k=1... but with k=3 the outlier may appear later. Check the first pick.
  EXPECT_LT(picked.At(0, 0), 50.0f);
}

TEST(SupportSetTest, HerdingSubsetMeanApproximatesClassMean) {
  Rng data_rng(8);
  sensors::FeatureDataset data = ClassData(0, 50, 3.0f, 9);
  SupportSet herded(10, SelectionStrategy::kHerding);
  SupportSet random(10, SelectionStrategy::kRandom);
  IdentityEmbedder embedder;
  Rng rng(10);
  ASSERT_TRUE(herded.SetClass(0, data, &embedder, nullptr).ok());
  ASSERT_TRUE(random.SetClass(0, data, nullptr, &rng).ok());

  Matrix full_mean = data.ToMatrix().ColMean();
  auto mean_error = [&](const SupportSet& s) {
    Matrix m = s.ClassExemplars(0).value().ColMean();
    m.SubInPlace(full_mean);
    return std::sqrt(m.SumOfSquares());
  };
  // Herding is designed to track the mean; allow equality but it should not
  // be worse.
  EXPECT_LE(mean_error(herded), mean_error(random) + 1e-6);
}

TEST(SupportSetTest, HerdingWithoutEmbedderFallsBackToFeatureSpace) {
  SupportSet set(3, SelectionStrategy::kHerding);
  ASSERT_TRUE(set.SetClass(0, ClassData(0, 10, 0.0f, 11), nullptr, nullptr)
                  .ok());
  EXPECT_EQ(set.ClassSize(0), 3u);
}

TEST(SupportSetTest, RandomWithoutRngRejected) {
  SupportSet set(3, SelectionStrategy::kRandom);
  EXPECT_EQ(set.SetClass(0, ClassData(0, 5, 0.0f, 12), nullptr, nullptr)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SupportSetTest, ReservoirStreamingKeepsUniformSample) {
  SupportSet set(10, SelectionStrategy::kReservoir);
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(
        set.AddStreamingSample(0, {static_cast<float>(i), 0.0f}, &rng).ok());
  }
  EXPECT_EQ(set.ClassSize(0), 10u);
  // A uniform sample over [0, 1000) should not be confined to the first
  // insertions: its mean sits well above 100.
  Matrix kept = set.ClassExemplars(0).value();
  double mean = 0.0;
  for (size_t i = 0; i < kept.rows(); ++i) mean += kept.At(i, 0);
  mean /= kept.rows();
  EXPECT_GT(mean, 150.0);
}

TEST(SupportSetTest, StreamingRequiresReservoirStrategy) {
  SupportSet set(10, SelectionStrategy::kRandom);
  Rng rng(14);
  EXPECT_EQ(set.AddStreamingSample(0, {1.0f, 2.0f}, &rng).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SupportSetTest, StreamingEmptyFeatureRejected) {
  // Regression: the very first AddStreamingSample used to accept an empty
  // feature vector (dim_ was still 0, so the length check passed) and pin
  // the whole set to dim 0 — every later real sample then bounced.
  SupportSet set(10, SelectionStrategy::kReservoir);
  Rng rng(17);
  EXPECT_EQ(set.AddStreamingSample(0, {}, &rng).code(),
            StatusCode::kInvalidArgument);
  // The set is untouched: real samples still define the dimension.
  ASSERT_TRUE(set.AddStreamingSample(0, {1.0f, 2.0f}, &rng).ok());
  EXPECT_EQ(set.ClassSize(0), 1u);
}

TEST(SupportSetTest, SetClassZeroDimRejected) {
  // Same hole via SetClass: a dataset whose rows are zero-length must be
  // rejected rather than silently creating a dim-0 support set.
  SupportSet set(5, SelectionStrategy::kRandom);
  Rng rng(18);
  sensors::FeatureDataset zero_dim;
  zero_dim.Append({}, 0);
  EXPECT_EQ(set.SetClass(0, zero_dim, nullptr, &rng).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(set.NumClasses(), 0u);
}

TEST(SupportSetTest, RemoveClass) {
  SupportSet set(5, SelectionStrategy::kRandom);
  Rng rng(15);
  ASSERT_TRUE(set.SetClass(0, ClassData(0, 5, 0.0f, 16), nullptr, &rng).ok());
  ASSERT_TRUE(set.SetClass(1, ClassData(1, 5, 1.0f, 17), nullptr, &rng).ok());
  EXPECT_TRUE(set.RemoveClass(0).ok());
  EXPECT_FALSE(set.HasClass(0));
  EXPECT_EQ(set.RemoveClass(0).code(), StatusCode::kNotFound);
  EXPECT_EQ(set.Classes(), (std::vector<sensors::ActivityId>{1}));
}

TEST(SupportSetTest, AsDatasetAndExclusion) {
  SupportSet set(4, SelectionStrategy::kRandom);
  Rng rng(18);
  ASSERT_TRUE(set.SetClass(0, ClassData(0, 8, 0.0f, 19), nullptr, &rng).ok());
  ASSERT_TRUE(set.SetClass(1, ClassData(1, 8, 5.0f, 20), nullptr, &rng).ok());
  sensors::FeatureDataset all = set.AsDataset();
  EXPECT_EQ(all.size(), 8u);
  EXPECT_EQ(all.Classes().size(), 2u);
  sensors::FeatureDataset without0 = set.DatasetExcluding(0);
  EXPECT_EQ(without0.size(), 4u);
  EXPECT_EQ(without0.Classes(), (std::vector<sensors::ActivityId>{1}));
}

TEST(SupportSetTest, MemoryBytesMatchesPaperArithmetic) {
  // Paper §3.2: "200 observations per class cost roughly 0.5 MB in 32-bit
  // precision" — with 80 features per observation per 5 classes... the
  // 0.5 MB/class figure corresponds to ~600 floats/observation; our
  // 80-feature observations cost 200 * 80 * 4 = 64 kB per class. Verify the
  // accounting is exact.
  SupportSet set(200, SelectionStrategy::kRandom);
  Rng rng(21);
  sensors::FeatureDataset big;
  Rng data_rng(22);
  for (int i = 0; i < 300; ++i) {
    std::vector<float> row(80);
    for (float& v : row) v = static_cast<float>(data_rng.Normal(0.0, 1.0));
    big.Append(row, 0);
  }
  ASSERT_TRUE(set.SetClass(0, big, nullptr, &rng).ok());
  EXPECT_EQ(set.MemoryBytes(), 200u * 80u * sizeof(float));
}

TEST(SupportSetTest, SerializationRoundTrip) {
  SupportSet set(5, SelectionStrategy::kHerding);
  IdentityEmbedder embedder;
  ASSERT_TRUE(set.SetClass(0, ClassData(0, 9, 0.0f, 23), &embedder, nullptr)
                  .ok());
  ASSERT_TRUE(set.SetClass(1, ClassData(1, 9, 4.0f, 24), &embedder, nullptr)
                  .ok());
  BinaryWriter w;
  set.Serialize(&w);
  BinaryReader r(w.buffer());
  auto back = SupportSet::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().capacity_per_class(), 5u);
  EXPECT_EQ(back.value().strategy(), SelectionStrategy::kHerding);
  EXPECT_EQ(back.value().TotalSize(), set.TotalSize());
  Matrix orig = set.ClassExemplars(1).value();
  Matrix copy = back.value().ClassExemplars(1).value();
  ASSERT_TRUE(orig.SameShape(copy));
  for (size_t i = 0; i < orig.size(); ++i) {
    EXPECT_FLOAT_EQ(orig.data()[i], copy.data()[i]);
  }
}

TEST(SupportSetTest, DeserializeRejectsBadStrategy) {
  BinaryWriter w;
  w.WriteU64(5);
  w.WriteU8(77);  // bogus strategy
  BinaryReader r(w.buffer());
  EXPECT_FALSE(SupportSet::Deserialize(&r).ok());
}

// Capacity sweep: selection never exceeds capacity for any strategy.
class SupportCapacityTest
    : public ::testing::TestWithParam<std::tuple<size_t, SelectionStrategy>> {
};

TEST_P(SupportCapacityTest, CapacityInvariant) {
  const auto [capacity, strategy] = GetParam();
  SupportSet set(capacity, strategy);
  IdentityEmbedder embedder;
  Rng rng(25);
  ASSERT_TRUE(
      set.SetClass(0, ClassData(0, 57, 0.0f, 26), &embedder, &rng).ok());
  EXPECT_EQ(set.ClassSize(0), std::min<size_t>(capacity, 57));
  EXPECT_EQ(set.MemoryBytes(), set.TotalSize() * 2 * sizeof(float));
}

TEST(SupportSetTest, QuantizedSerializationRoundTrip) {
  SupportSet set(5, SelectionStrategy::kHerding);
  IdentityEmbedder embedder;
  ASSERT_TRUE(set.SetClass(0, ClassData(0, 9, 0.0f, 23), &embedder, nullptr)
                  .ok());
  ASSERT_TRUE(set.SetClass(1, ClassData(1, 9, 4.0f, 24), &embedder, nullptr)
                  .ok());
  BinaryWriter w;
  set.SerializeQuantized(&w);
  BinaryReader r(w.buffer());
  auto back = SupportSet::DeserializeQuantized(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().capacity_per_class(), 5u);
  EXPECT_EQ(back.value().strategy(), SelectionStrategy::kHerding);
  EXPECT_EQ(back.value().TotalSize(), set.TotalSize());
  Matrix orig = set.ClassExemplars(1).value();
  Matrix copy = back.value().ClassExemplars(1).value();
  ASSERT_TRUE(orig.SameShape(copy));
  // Per-row symmetric int8: worst-case error is max|row|/127 per element.
  for (size_t row = 0; row < orig.rows(); ++row) {
    float max_abs = 0.0f;
    for (size_t j = 0; j < orig.cols(); ++j) {
      max_abs = std::max(max_abs, std::fabs(orig.At(row, j)));
    }
    for (size_t j = 0; j < orig.cols(); ++j) {
      EXPECT_NEAR(copy.At(row, j), orig.At(row, j),
                  max_abs / 127.0f + 1e-6f);
    }
  }
  // Re-quantizing the dequantized rows is exact, so a second quantized
  // serialization must be byte-identical — the bundle-v3 stability property.
  BinaryWriter w2;
  back.value().SerializeQuantized(&w2);
  EXPECT_EQ(w.buffer(), w2.buffer());
}

TEST(SupportSetTest, DeserializeQuantizedRejectsBadScale) {
  for (float bad : {0.0f, -1.0f, std::numeric_limits<float>::quiet_NaN(),
                    std::numeric_limits<float>::infinity()}) {
    BinaryWriter w;
    w.WriteU64(4);                    // capacity
    w.WriteU8(0);                     // strategy
    w.WriteU64(2);                    // dim
    w.WriteU64(1);                    // num_classes
    w.WriteI64(0);                    // class id
    w.WriteU64(0);                    // seen
    w.WriteU64(1);                    // rows
    w.WriteF32(bad);                  // poisoned scale
    w.WriteI8Vector({12, -3});
    BinaryReader r(w.buffer());
    auto set = SupportSet::DeserializeQuantized(&r);
    ASSERT_FALSE(set.ok());
    EXPECT_EQ(set.status().code(), StatusCode::kCorruption);
  }
}

TEST(SupportSetTest, DeserializeQuantizedSurvivesTruncation) {
  SupportSet set(3, SelectionStrategy::kRandom);
  Rng rng(7);
  ASSERT_TRUE(
      set.SetClass(0, ClassData(0, 4, 1.0f, 31), nullptr, &rng).ok());
  BinaryWriter w;
  set.SerializeQuantized(&w);
  const std::string& full = w.buffer();
  for (size_t len = 0; len < full.size(); ++len) {
    BinaryReader r(full.data(), len);
    EXPECT_FALSE(SupportSet::DeserializeQuantized(&r).ok())
        << "truncation at " << len << " parsed";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Capacities, SupportCapacityTest,
    ::testing::Combine(::testing::Values(1, 5, 57, 200),
                       ::testing::Values(SelectionStrategy::kRandom,
                                         SelectionStrategy::kHerding,
                                         SelectionStrategy::kReservoir)));

}  // namespace
}  // namespace magneto::core
