#include "core/knn_classifier.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace magneto::core {
namespace {

class IdentityEmbedder : public Embedder {
 public:
  Matrix Embed(const Matrix& features) override { return features; }
  size_t embedding_dim() const override { return 2; }
};

SupportSet TwoClusterSupport() {
  SupportSet support(10, SelectionStrategy::kRandom);
  Rng rng(1);
  sensors::FeatureDataset c0, c1;
  for (int i = 0; i < 6; ++i) {
    c0.Append({0.0f + 0.1f * i, 0.0f}, 0);
    c1.Append({10.0f + 0.1f * i, 0.0f}, 1);
  }
  MAGNETO_CHECK(support.SetClass(0, c0, nullptr, &rng).ok());
  MAGNETO_CHECK(support.SetClass(1, c1, nullptr, &rng).ok());
  return support;
}

TEST(KnnClassifierTest, BuildsFromSupportSet) {
  SupportSet support = TwoClusterSupport();
  IdentityEmbedder embedder;
  auto knn = KnnClassifier::FromSupportSet(support, &embedder, {});
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(knn.value().num_examples(), 12u);
  EXPECT_EQ(knn.value().embedding_dim(), 2u);
  EXPECT_EQ(knn.value().MemoryBytes(), 12u * 2u * sizeof(float));
}

TEST(KnnClassifierTest, ClassifiesByNeighbours) {
  SupportSet support = TwoClusterSupport();
  IdentityEmbedder embedder;
  auto knn = KnnClassifier::FromSupportSet(support, &embedder, {}).value();
  EXPECT_EQ(knn.Classify({1.0f, 0.5f}).value().activity, 0);
  EXPECT_EQ(knn.Classify({9.5f, -0.5f}).value().activity, 1);
  EXPECT_GT(knn.Classify({0.2f, 0.0f}).value().confidence, 0.9);
}

TEST(KnnClassifierTest, KOneIsNearestNeighbour) {
  SupportSet support = TwoClusterSupport();
  IdentityEmbedder embedder;
  KnnClassifier::Options options;
  options.k = 1;
  auto knn = KnnClassifier::FromSupportSet(support, &embedder, options)
                 .value();
  // Cluster 0 spans x in [0, 0.5], cluster 1 spans [10, 10.5]: x = 5.8 is
  // nearer to cluster 1's closest exemplar (4.2 vs 5.3).
  auto pred = knn.Classify({5.8f, 0.0f}).value();
  EXPECT_EQ(pred.activity, 1);
  EXPECT_DOUBLE_EQ(pred.confidence, 1.0);
}

TEST(KnnClassifierTest, UnweightedMajorityVote) {
  // 2 exemplars of class 0 close by, 3 of class 1 farther: with k=5
  // unweighted, class 1 wins on count; distance-weighted, class 0 wins.
  SupportSet support(10, SelectionStrategy::kRandom);
  Rng rng(2);
  sensors::FeatureDataset c0, c1;
  c0.Append({0.1f, 0.0f}, 0);
  c0.Append({-0.1f, 0.0f}, 0);
  c1.Append({3.0f, 0.0f}, 1);
  c1.Append({3.1f, 0.0f}, 1);
  c1.Append({3.2f, 0.0f}, 1);
  MAGNETO_CHECK(support.SetClass(0, c0, nullptr, &rng).ok());
  MAGNETO_CHECK(support.SetClass(1, c1, nullptr, &rng).ok());
  IdentityEmbedder embedder;

  KnnClassifier::Options unweighted;
  unweighted.k = 5;
  unweighted.distance_weighted = false;
  auto knn_u = KnnClassifier::FromSupportSet(support, &embedder, unweighted)
                   .value();
  EXPECT_EQ(knn_u.Classify({0.0f, 0.0f}).value().activity, 1);

  KnnClassifier::Options weighted;
  weighted.k = 5;
  weighted.distance_weighted = true;
  auto knn_w = KnnClassifier::FromSupportSet(support, &embedder, weighted)
                   .value();
  EXPECT_EQ(knn_w.Classify({0.0f, 0.0f}).value().activity, 0);
}

TEST(KnnClassifierTest, KLargerThanExemplarsIsClamped) {
  SupportSet support = TwoClusterSupport();
  IdentityEmbedder embedder;
  KnnClassifier::Options options;
  options.k = 1000;
  auto knn = KnnClassifier::FromSupportSet(support, &embedder, options);
  ASSERT_TRUE(knn.ok());
  EXPECT_TRUE(knn.value().Classify({0.0f, 0.0f}).ok());
}

TEST(KnnClassifierTest, InvalidInputsRejected) {
  SupportSet support = TwoClusterSupport();
  IdentityEmbedder embedder;
  EXPECT_FALSE(KnnClassifier::FromSupportSet(support, nullptr, {}).ok());
  KnnClassifier::Options zero_k;
  zero_k.k = 0;
  EXPECT_FALSE(KnnClassifier::FromSupportSet(support, &embedder, zero_k).ok());
  SupportSet empty(5, SelectionStrategy::kRandom);
  EXPECT_FALSE(KnnClassifier::FromSupportSet(empty, &embedder, {}).ok());

  auto knn = KnnClassifier::FromSupportSet(support, &embedder, {}).value();
  EXPECT_EQ(knn.Classify({1.0f}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(KnnClassifierTest, ScratchReuseIsByteIdentical) {
  // Regression for the `static thread_local` scratch removal: a reused
  // caller-provided scratch — including one carrying stale capacity from a
  // *larger* classifier — must produce byte-identical predictions to the
  // scratch-free overload.
  SupportSet small = TwoClusterSupport();
  SupportSet big(100, SelectionStrategy::kRandom);
  {
    Rng rng(3);
    sensors::FeatureDataset c0, c1;
    for (int i = 0; i < 40; ++i) {
      c0.Append({0.01f * i, 0.0f}, 0);
      c1.Append({10.0f + 0.01f * i, 1.0f}, 1);
    }
    MAGNETO_CHECK(big.SetClass(0, c0, nullptr, &rng).ok());
    MAGNETO_CHECK(big.SetClass(1, c1, nullptr, &rng).ok());
  }
  IdentityEmbedder embedder;
  auto knn_small = KnnClassifier::FromSupportSet(small, &embedder, {}).value();
  auto knn_big = KnnClassifier::FromSupportSet(big, &embedder, {}).value();

  KnnClassifier::Scratch scratch;
  for (float x : {0.0f, 1.0f, 4.9f, 5.1f, 8.0f, 10.5f}) {
    const std::vector<float> q{x, 0.0f};
    // Interleave big and small so the scratch always arrives at the small
    // classifier oversized from the previous big query.
    Prediction big_pred =
        knn_big.Classify(q.data(), q.size(), &scratch).value();
    Prediction big_ref = knn_big.Classify(q).value();
    Prediction small_pred =
        knn_small.Classify(q.data(), q.size(), &scratch).value();
    Prediction small_ref = knn_small.Classify(q).value();
    EXPECT_EQ(std::memcmp(&big_pred, &big_ref, sizeof(Prediction)), 0)
        << "big, x=" << x;
    EXPECT_EQ(std::memcmp(&small_pred, &small_ref, sizeof(Prediction)), 0)
        << "small, x=" << x;
  }
  const std::vector<float> probe{1.0f, 0.0f};
  EXPECT_EQ(
      knn_small.Classify(probe.data(), probe.size(), nullptr).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(KnnClassifierTest, ConcurrentClassifyWithPerThreadScratch) {
  // The classifier is immutable after construction: concurrent Classify
  // calls with distinct scratches must agree with the serial answers. (Run
  // under -DMAGNETO_SANITIZE=thread this also proves there is no hidden
  // shared scratch left.)
  SupportSet support = TwoClusterSupport();
  IdentityEmbedder embedder;
  auto knn = KnnClassifier::FromSupportSet(support, &embedder, {}).value();
  const std::vector<std::vector<float>> queries = {
      {0.0f, 0.0f}, {2.0f, 0.0f}, {8.0f, 0.0f}, {10.5f, 0.0f}};
  std::vector<Prediction> expected;
  for (const auto& q : queries) expected.push_back(knn.Classify(q).value());

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      KnnClassifier::Scratch scratch;
      for (int rep = 0; rep < 50; ++rep) {
        const size_t qi = static_cast<size_t>((t + rep) % queries.size());
        auto pred = knn.Classify(queries[qi].data(), queries[qi].size(),
                                 &scratch);
        if (!pred.ok() ||
            std::memcmp(&pred.value(), &expected[qi], sizeof(Prediction)) !=
                0) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(KnnClassifierTest, AgreesWithNcmOnSeparatedClusters) {
  SupportSet support = TwoClusterSupport();
  IdentityEmbedder embedder;
  auto knn = KnnClassifier::FromSupportSet(support, &embedder, {}).value();
  auto ncm = NcmClassifier::FromSupportSet(support, &embedder).value();
  for (float x : {0.0f, 2.0f, 8.0f, 10.5f}) {
    const std::vector<float> q{x, 0.0f};
    EXPECT_EQ(knn.Classify(q).value().activity,
              ncm.Classify(q).value().activity)
        << "query x=" << x;
  }
}

TEST(KnnClassifierTest, VoteTieBreaksToNearerClass) {
  // Regression: on an exact vote tie the classifier used to pick the lowest
  // ActivityId (map iteration order), so a query whose *nearest* exemplar
  // belonged to the higher id was misclassified. Class 5 has the nearer
  // exemplar here; k=2 unweighted gives each class exactly one vote.
  SupportSet support(10, SelectionStrategy::kRandom);
  Rng rng(4);
  sensors::FeatureDataset far_class, near_class;
  far_class.Append({2.0f, 0.0f}, 3);
  near_class.Append({-1.0f, 0.0f}, 5);
  MAGNETO_CHECK(support.SetClass(3, far_class, nullptr, &rng).ok());
  MAGNETO_CHECK(support.SetClass(5, near_class, nullptr, &rng).ok());
  IdentityEmbedder embedder;
  KnnClassifier::Options options;
  options.k = 2;
  options.distance_weighted = false;
  auto knn = KnnClassifier::FromSupportSet(support, &embedder, options)
                 .value();
  auto pred = knn.Classify({0.0f, 0.0f}).value();
  EXPECT_EQ(pred.activity, 5);  // was 3 before the tie-break fix
  EXPECT_DOUBLE_EQ(pred.distance, 1.0);
}

TEST(KnnClassifierTest, NonFiniteExemplarRanksLast) {
  // Regression: a NaN embedding used to flow straight into the
  // partial_sort comparator, which is UB (NaN breaks strict weak
  // ordering). Non-finite distances are now sanitized to +inf, so the
  // poisoned exemplar simply never wins.
  SupportSet support(10, SelectionStrategy::kRandom);
  Rng rng(5);
  sensors::FeatureDataset poisoned, clean;
  poisoned.Append({std::numeric_limits<float>::quiet_NaN(), 0.0f}, 0);
  clean.Append({5.0f, 0.0f}, 1);
  MAGNETO_CHECK(support.SetClass(0, poisoned, nullptr, &rng).ok());
  MAGNETO_CHECK(support.SetClass(1, clean, nullptr, &rng).ok());
  IdentityEmbedder embedder;
  KnnClassifier::Options options;
  options.k = 1;
  auto knn = KnnClassifier::FromSupportSet(support, &embedder, options)
                 .value();
  auto pred = knn.Classify({5.0f, 0.0f}).value();
  EXPECT_EQ(pred.activity, 1);
  EXPECT_TRUE(std::isfinite(pred.distance));

  // A NaN *query* poisons every distance: everything sanitizes to +inf and
  // the scan still terminates with a well-defined (if meaningless) winner.
  const std::vector<float> nan_query{std::numeric_limits<float>::quiet_NaN(),
                                     0.0f};
  auto nan_pred = knn.Classify(nan_query);
  ASSERT_TRUE(nan_pred.ok());
  EXPECT_TRUE(std::isinf(nan_pred.value().distance));
}

// `classes` clusters of `per_class` exemplars each on a widely spaced 2-D
// grid — large enough to clear a small `min_index_size`.
SupportSet GridSupport(size_t classes, size_t per_class) {
  SupportSet support(per_class, SelectionStrategy::kRandom);
  Rng rng(6);
  for (size_t c = 0; c < classes; ++c) {
    const float cx = static_cast<float>(c % 8) * 20.0f;
    const float cy = static_cast<float>(c / 8) * 20.0f;
    sensors::FeatureDataset data;
    for (size_t i = 0; i < per_class; ++i) {
      data.Append({cx + static_cast<float>(rng.Normal(0.0, 0.3)),
                   cy + static_cast<float>(rng.Normal(0.0, 0.3))},
                  static_cast<sensors::ActivityId>(c));
    }
    MAGNETO_CHECK(support
                      .SetClass(static_cast<sensors::ActivityId>(c), data,
                                nullptr, &rng)
                      .ok());
  }
  return support;
}

TEST(KnnClassifierTest, AnnFullProbeMatchesExactScanByteForByte) {
  SupportSet support = GridSupport(16, 8);
  IdentityEmbedder embedder;
  auto exact = KnnClassifier::FromSupportSet(support, &embedder, {}).value();

  KnnClassifier::Options ann_options;
  ann_options.ann.enable = true;
  ann_options.ann.min_index_size = 1;
  ann_options.ann.nlist = 8;
  ann_options.ann.nprobe = 8;  // probe every list -> same candidate pool
  auto ann = KnnClassifier::FromSupportSet(support, &embedder, ann_options)
                 .value();
  ASSERT_TRUE(ann.ann_active());
  EXPECT_FALSE(exact.ann_active());

  Rng rng(7);
  for (int t = 0; t < 50; ++t) {
    const std::vector<float> q{static_cast<float>(rng.Uniform(-5.0, 150.0)),
                               static_cast<float>(rng.Uniform(-5.0, 45.0))};
    Prediction pe = exact.Classify(q).value();
    Prediction pa = ann.Classify(q).value();
    EXPECT_EQ(std::memcmp(&pe, &pa, sizeof(Prediction)), 0) << "trial " << t;
  }
}

TEST(KnnClassifierTest, AnnNarrowProbeKeepsActivityParityOnClusters) {
  SupportSet support = GridSupport(16, 8);
  IdentityEmbedder embedder;
  auto exact = KnnClassifier::FromSupportSet(support, &embedder, {}).value();
  KnnClassifier::Options ann_options;
  ann_options.ann.enable = true;
  ann_options.ann.min_index_size = 1;
  ann_options.ann.nlist = 16;
  ann_options.ann.nprobe = 2;
  auto ann = KnnClassifier::FromSupportSet(support, &embedder, ann_options)
                 .value();
  ASSERT_TRUE(ann.ann_active());

  // Query near each cluster center: the right cell is always probed first.
  Rng rng(8);
  for (size_t c = 0; c < 16; ++c) {
    const std::vector<float> q{
        static_cast<float>(c % 8) * 20.0f +
            static_cast<float>(rng.Normal(0.0, 0.2)),
        static_cast<float>(c / 8) * 20.0f +
            static_cast<float>(rng.Normal(0.0, 0.2))};
    EXPECT_EQ(ann.Classify(q).value().activity,
              exact.Classify(q).value().activity)
        << "class " << c;
  }
}

TEST(KnnClassifierTest, AnnBelowThresholdFallsBackToExactScan) {
  SupportSet support = TwoClusterSupport();
  IdentityEmbedder embedder;
  KnnClassifier::Options ann_options;
  ann_options.ann.enable = true;
  ann_options.ann.min_index_size = 1000;  // 12 exemplars < threshold
  auto fallback =
      KnnClassifier::FromSupportSet(support, &embedder, ann_options).value();
  EXPECT_FALSE(fallback.ann_active());
  auto exact = KnnClassifier::FromSupportSet(support, &embedder, {}).value();
  for (float x : {0.0f, 2.0f, 5.1f, 8.0f, 10.5f}) {
    const std::vector<float> q{x, 0.0f};
    Prediction pf = fallback.Classify(q).value();
    Prediction pe = exact.Classify(q).value();
    EXPECT_EQ(std::memcmp(&pf, &pe, sizeof(Prediction)), 0) << "x=" << x;
  }
}

TEST(KnnClassifierTest, AnnComposesWithInt8Exemplars) {
  SupportSet support = GridSupport(16, 8);
  IdentityEmbedder embedder;
  auto exact = KnnClassifier::FromSupportSet(support, &embedder, {}).value();
  KnnClassifier::Options options;
  options.quantize_exemplars = true;
  options.ann.enable = true;
  options.ann.min_index_size = 1;
  options.ann.nlist = 16;
  options.ann.nprobe = 3;
  auto ann_q =
      KnnClassifier::FromSupportSet(support, &embedder, options).value();
  ASSERT_TRUE(ann_q.ann_active());
  // The exemplar store is int8 (at this toy dim=2 the per-exemplar
  // scale+norm overhead eats the win — see QuantizedScanAgreesWithFp32).
  EXPECT_EQ(ann_q.MemoryBytes(), 128u * (2u + sizeof(float) + sizeof(int32_t)));

  Rng rng(9);
  KnnClassifier::Scratch scratch;
  for (size_t c = 0; c < 16; ++c) {
    const std::vector<float> q{
        static_cast<float>(c % 8) * 20.0f +
            static_cast<float>(rng.Normal(0.0, 0.2)),
        static_cast<float>(c / 8) * 20.0f +
            static_cast<float>(rng.Normal(0.0, 0.2))};
    EXPECT_EQ(ann_q.Classify(q.data(), q.size(), &scratch).value().activity,
              exact.Classify(q).value().activity)
        << "class " << c;
  }
}

TEST(KnnClassifierTest, NeighborsReportsAscendingDistances) {
  SupportSet support = GridSupport(16, 8);
  IdentityEmbedder embedder;
  KnnClassifier::Options options;
  options.ann.enable = true;
  options.ann.min_index_size = 1;
  options.ann.nprobe = 4;
  auto knn = KnnClassifier::FromSupportSet(support, &embedder, options)
                 .value();
  KnnClassifier::Scratch scratch;
  const std::vector<float> q{20.0f, 0.0f};
  auto nn = knn.Neighbors(q.data(), q.size(), 5, &scratch).value();
  ASSERT_EQ(nn.size(), 5u);
  for (size_t i = 1; i < nn.size(); ++i) {
    EXPECT_LE(nn[i - 1].first, nn[i].first);
  }
  EXPECT_EQ(knn.label(nn[0].second), 1);  // grid class 1 sits at (20, 0)
}

TEST(KnnClassifierTest, QuantizedScanAgreesWithFp32) {
  SupportSet support = TwoClusterSupport();
  IdentityEmbedder embedder;
  KnnClassifier::Options q_options;
  q_options.quantize_exemplars = true;
  auto fp = KnnClassifier::FromSupportSet(support, &embedder, {}).value();
  auto q =
      KnnClassifier::FromSupportSet(support, &embedder, q_options).value();
  // int8 data + fp32 scale + int32 norm per exemplar vs fp32 rows. (At this
  // toy dim=2 the per-exemplar overhead dominates; the ~4x win needs real
  // embedding dims — see bench_quant.)
  EXPECT_EQ(q.MemoryBytes(), 12u * (2u + sizeof(float) + sizeof(int32_t)));
  EXPECT_EQ(fp.MemoryBytes(), 12u * 2u * sizeof(float));

  // Probes sweep both clusters, staying clear of the x = 5 midline so an
  // int8 rounding of the exemplars (~0.08 here) can never flip the vote.
  for (int i = 0; i <= 20; ++i) {
    const float off = 0.5f + 3.0f * static_cast<float>(i) / 20.0f;
    for (const std::vector<float>& probe :
         {std::vector<float>{off, 0.3f}, std::vector<float>{10.0f - off,
                                                            -0.3f}}) {
      auto pf = fp.Classify(probe).value();
      auto pq = q.Classify(probe).value();
      EXPECT_EQ(pf.activity, pq.activity) << "probe x=" << probe[0];
      // The exact-rescale distance only differs by the exemplar rounding.
      EXPECT_NEAR(pf.distance, pq.distance, 0.05 * (pf.distance + 1.0));
    }
  }
}

}  // namespace
}  // namespace magneto::core
