#include "core/knn_classifier.h"

#include <gtest/gtest.h>

namespace magneto::core {
namespace {

class IdentityEmbedder : public Embedder {
 public:
  Matrix Embed(const Matrix& features) override { return features; }
  size_t embedding_dim() const override { return 2; }
};

SupportSet TwoClusterSupport() {
  SupportSet support(10, SelectionStrategy::kRandom);
  Rng rng(1);
  sensors::FeatureDataset c0, c1;
  for (int i = 0; i < 6; ++i) {
    c0.Append({0.0f + 0.1f * i, 0.0f}, 0);
    c1.Append({10.0f + 0.1f * i, 0.0f}, 1);
  }
  MAGNETO_CHECK(support.SetClass(0, c0, nullptr, &rng).ok());
  MAGNETO_CHECK(support.SetClass(1, c1, nullptr, &rng).ok());
  return support;
}

TEST(KnnClassifierTest, BuildsFromSupportSet) {
  SupportSet support = TwoClusterSupport();
  IdentityEmbedder embedder;
  auto knn = KnnClassifier::FromSupportSet(support, &embedder, {});
  ASSERT_TRUE(knn.ok());
  EXPECT_EQ(knn.value().num_examples(), 12u);
  EXPECT_EQ(knn.value().embedding_dim(), 2u);
  EXPECT_EQ(knn.value().MemoryBytes(), 12u * 2u * sizeof(float));
}

TEST(KnnClassifierTest, ClassifiesByNeighbours) {
  SupportSet support = TwoClusterSupport();
  IdentityEmbedder embedder;
  auto knn = KnnClassifier::FromSupportSet(support, &embedder, {}).value();
  EXPECT_EQ(knn.Classify({1.0f, 0.5f}).value().activity, 0);
  EXPECT_EQ(knn.Classify({9.5f, -0.5f}).value().activity, 1);
  EXPECT_GT(knn.Classify({0.2f, 0.0f}).value().confidence, 0.9);
}

TEST(KnnClassifierTest, KOneIsNearestNeighbour) {
  SupportSet support = TwoClusterSupport();
  IdentityEmbedder embedder;
  KnnClassifier::Options options;
  options.k = 1;
  auto knn = KnnClassifier::FromSupportSet(support, &embedder, options)
                 .value();
  // Cluster 0 spans x in [0, 0.5], cluster 1 spans [10, 10.5]: x = 5.8 is
  // nearer to cluster 1's closest exemplar (4.2 vs 5.3).
  auto pred = knn.Classify({5.8f, 0.0f}).value();
  EXPECT_EQ(pred.activity, 1);
  EXPECT_DOUBLE_EQ(pred.confidence, 1.0);
}

TEST(KnnClassifierTest, UnweightedMajorityVote) {
  // 2 exemplars of class 0 close by, 3 of class 1 farther: with k=5
  // unweighted, class 1 wins on count; distance-weighted, class 0 wins.
  SupportSet support(10, SelectionStrategy::kRandom);
  Rng rng(2);
  sensors::FeatureDataset c0, c1;
  c0.Append({0.1f, 0.0f}, 0);
  c0.Append({-0.1f, 0.0f}, 0);
  c1.Append({3.0f, 0.0f}, 1);
  c1.Append({3.1f, 0.0f}, 1);
  c1.Append({3.2f, 0.0f}, 1);
  MAGNETO_CHECK(support.SetClass(0, c0, nullptr, &rng).ok());
  MAGNETO_CHECK(support.SetClass(1, c1, nullptr, &rng).ok());
  IdentityEmbedder embedder;

  KnnClassifier::Options unweighted;
  unweighted.k = 5;
  unweighted.distance_weighted = false;
  auto knn_u = KnnClassifier::FromSupportSet(support, &embedder, unweighted)
                   .value();
  EXPECT_EQ(knn_u.Classify({0.0f, 0.0f}).value().activity, 1);

  KnnClassifier::Options weighted;
  weighted.k = 5;
  weighted.distance_weighted = true;
  auto knn_w = KnnClassifier::FromSupportSet(support, &embedder, weighted)
                   .value();
  EXPECT_EQ(knn_w.Classify({0.0f, 0.0f}).value().activity, 0);
}

TEST(KnnClassifierTest, KLargerThanExemplarsIsClamped) {
  SupportSet support = TwoClusterSupport();
  IdentityEmbedder embedder;
  KnnClassifier::Options options;
  options.k = 1000;
  auto knn = KnnClassifier::FromSupportSet(support, &embedder, options);
  ASSERT_TRUE(knn.ok());
  EXPECT_TRUE(knn.value().Classify({0.0f, 0.0f}).ok());
}

TEST(KnnClassifierTest, InvalidInputsRejected) {
  SupportSet support = TwoClusterSupport();
  IdentityEmbedder embedder;
  EXPECT_FALSE(KnnClassifier::FromSupportSet(support, nullptr, {}).ok());
  KnnClassifier::Options zero_k;
  zero_k.k = 0;
  EXPECT_FALSE(KnnClassifier::FromSupportSet(support, &embedder, zero_k).ok());
  SupportSet empty(5, SelectionStrategy::kRandom);
  EXPECT_FALSE(KnnClassifier::FromSupportSet(empty, &embedder, {}).ok());

  auto knn = KnnClassifier::FromSupportSet(support, &embedder, {}).value();
  EXPECT_EQ(knn.Classify({1.0f}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(KnnClassifierTest, AgreesWithNcmOnSeparatedClusters) {
  SupportSet support = TwoClusterSupport();
  IdentityEmbedder embedder;
  auto knn = KnnClassifier::FromSupportSet(support, &embedder, {}).value();
  auto ncm = NcmClassifier::FromSupportSet(support, &embedder).value();
  for (float x : {0.0f, 2.0f, 8.0f, 10.5f}) {
    const std::vector<float> q{x, 0.0f};
    EXPECT_EQ(knn.Classify(q).value().activity,
              ncm.Classify(q).value().activity)
        << "query x=" << x;
  }
}

}  // namespace
}  // namespace magneto::core
