#include "core/edge_model.h"

#include <gtest/gtest.h>

#include "learn/metrics.h"
#include "testing/test_helpers.h"

namespace magneto::core {
namespace {

class EdgeModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bundle_ = new ModelBundle(testing::SmallPretrainedBundle(101));
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }

  /// Fresh model sharing the pretrained weights.
  EdgeModel MakeModel() {
    return EdgeModel(bundle_->pipeline, bundle_->backbone.Clone(),
                     bundle_->classifier, bundle_->registry);
  }

  static ModelBundle* bundle_;
};

ModelBundle* EdgeModelTest::bundle_ = nullptr;

TEST_F(EdgeModelTest, EmbeddingDimMatchesBackbone) {
  EdgeModel model = MakeModel();
  EXPECT_EQ(model.embedding_dim(), 16u);  // SmallCloudConfig dims {32, 16}
  Matrix features(3, preprocess::kNumFeatures);
  Matrix emb = model.Embed(features);
  EXPECT_EQ(emb.rows(), 3u);
  EXPECT_EQ(emb.cols(), 16u);
}

TEST_F(EdgeModelTest, InferWindowReturnsKnownActivityName) {
  EdgeModel model = MakeModel();
  sensors::SyntheticGenerator gen(11);
  sensors::Recording rec =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kStill], 1.0);
  auto pred = model.InferWindow(rec.samples);
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(model.registry().Contains(pred.value().prediction.activity));
  EXPECT_FALSE(pred.value().name.empty());
  EXPECT_GT(pred.value().prediction.confidence, 0.0);
}

TEST_F(EdgeModelTest, InferRecordingYieldsOnePredictionPerWindow) {
  EdgeModel model = MakeModel();
  sensors::SyntheticGenerator gen(12);
  sensors::Recording rec =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kWalk], 5.0);
  auto preds = model.InferRecording(rec);
  ASSERT_TRUE(preds.ok());
  EXPECT_EQ(preds.value().size(), 5u);
}

TEST_F(EdgeModelTest, PretrainedModelSeparatesBaseActivities) {
  EdgeModel model = MakeModel();
  // Fresh evaluation data (different seed than the training corpus).
  auto eval_recordings = testing::SmallCorpus(777, 2, 4.0);
  auto eval = model.pipeline().ProcessLabeled(eval_recordings);
  ASSERT_TRUE(eval.ok());
  auto pairs = model.Predict(eval.value());
  ASSERT_TRUE(pairs.ok());
  learn::ConfusionMatrix cm;
  for (const auto& [truth, pred] : pairs.value()) cm.Add(truth, pred);
  // A tiny backbone on clean synthetic data should do far better than the
  // 20% chance level.
  EXPECT_GT(cm.Accuracy(), 0.7) << cm.ToString(model.registry());
}

TEST_F(EdgeModelTest, InferFeaturesRejectsWrongDim) {
  EdgeModel model = MakeModel();
  // Wrong feature dimension surfaces as a classifier dim mismatch.
  EXPECT_FALSE(model.InferFeatures(std::vector<float>(7, 0.0f)).ok());
}

TEST_F(EdgeModelTest, RebuildPrototypesTracksBackboneChange) {
  EdgeModel model = MakeModel();
  sensors::SyntheticGenerator gen(13);
  sensors::Recording rec =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kRun], 1.0);
  auto before = model.InferWindow(rec.samples);
  ASSERT_TRUE(before.ok());

  // Zero the last linear layer: embeddings collapse; stale prototypes would
  // be garbage. Rebuild must succeed and classify into *some* known class
  // with every prototype now identical -> distance 0.
  nn::Sequential& net = model.backbone();
  net.Params().back()->Fill(0.0f);
  auto params = net.Params();
  params[params.size() - 2]->Fill(0.0f);
  ASSERT_TRUE(model.RebuildPrototypes(bundle_->support).ok());
  auto after = model.InferWindow(rec.samples);
  ASSERT_TRUE(after.ok());
  EXPECT_NEAR(after.value().prediction.distance, 0.0, 1e-5);
}

TEST_F(EdgeModelTest, BackboneBytesAccountsAllParameters) {
  EdgeModel model = MakeModel();
  EXPECT_EQ(model.BackboneBytes(),
            model.backbone().NumParameters() * sizeof(float));
  EXPECT_GT(model.BackboneBytes(), 0u);
}

TEST_F(EdgeModelTest, RejectionThresholdFlagsUnfamiliarWindows) {
  EdgeModel model = MakeModel();
  // A wildly out-of-distribution window: constant extreme values.
  Matrix weird(120, sensors::kNumChannels);
  weird.Fill(1e4f);
  auto accepted = model.InferWindow(weird);
  ASSERT_TRUE(accepted.ok());
  const double weird_distance = accepted.value().prediction.distance;

  // Threshold below the weird window's distance: it becomes Unknown, while
  // a familiar Still window stays classified.
  model.set_rejection_threshold(weird_distance * 0.5);
  auto rejected = model.InferWindow(weird);
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected.value().name, "Unknown");
  EXPECT_TRUE(rejected.value().prediction.is_unknown());

  sensors::SyntheticGenerator gen(77);
  sensors::Recording still =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kStill], 1.0);
  auto familiar = model.InferWindow(still.samples);
  ASSERT_TRUE(familiar.ok());
  EXPECT_NE(familiar.value().name, "Unknown")
      << "threshold " << model.rejection_threshold() << " too tight: "
      << familiar.value().prediction.distance;

  // Clone preserves the threshold.
  EdgeModel copy = model.Clone();
  EXPECT_DOUBLE_EQ(copy.rejection_threshold(), model.rejection_threshold());
}

TEST_F(EdgeModelTest, CalibrateRejectionThresholdFromKnownData) {
  EdgeModel model = MakeModel();
  sensors::SyntheticGenerator gen(88);
  std::vector<sensors::Recording> known;
  for (const auto& [id, m] : sensors::DefaultActivityLibrary()) {
    known.push_back(gen.Generate(m, 2.0));
  }
  auto threshold = CalibrateRejectionThreshold(&model, known, 1.0, 1.5);
  ASSERT_TRUE(threshold.ok()) << threshold.status();
  EXPECT_GT(threshold.value(), 0.0);
  // Known data passes at the calibrated threshold.
  model.set_rejection_threshold(threshold.value());
  for (const auto& rec : known) {
    auto preds = model.InferRecording(rec);
    ASSERT_TRUE(preds.ok());
    for (const auto& p : preds.value()) {
      EXPECT_NE(p.name, "Unknown");
    }
  }
  // Percentile/headroom monotonicity.
  auto median = CalibrateRejectionThreshold(&model, known, 0.5, 1.5);
  ASSERT_TRUE(median.ok());
  EXPECT_LE(median.value(), threshold.value());

  // Validation.
  EXPECT_FALSE(CalibrateRejectionThreshold(nullptr, known).ok());
  EXPECT_FALSE(CalibrateRejectionThreshold(&model, known, 1.5).ok());
  EXPECT_FALSE(CalibrateRejectionThreshold(&model, known, 1.0, 0.0).ok());
  EXPECT_FALSE(CalibrateRejectionThreshold(&model, {}).ok());
  // The model's own threshold is restored after calibration.
  EXPECT_DOUBLE_EQ(model.rejection_threshold(), threshold.value());
}

TEST_F(EdgeModelTest, PredictOnEmptyDatasetIsEmpty) {
  EdgeModel model = MakeModel();
  auto pairs = model.Predict(sensors::FeatureDataset{});
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs.value().empty());
}

}  // namespace
}  // namespace magneto::core
