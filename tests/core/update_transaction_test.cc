#include "core/update_transaction.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/incremental_learner.h"
#include "core/model_bundle.h"
#include "obs/metrics.h"
#include "sensors/user_profile.h"
#include "testing/test_helpers.h"

namespace magneto::core {
namespace {

IncrementalOptions FastUpdateOptions() {
  IncrementalOptions options;
  options.train.epochs = 3;
  options.train.batch_size = 32;
  options.train.learning_rate = 5e-4;
  options.train.distill_weight = 1.0;
  options.train.seed = 17;
  options.seed = 18;
  return options;
}

struct Deployment {
  EdgeModel model;
  SupportSet support;
};

Deployment Deploy(uint64_t seed) {
  ModelBundle bundle = testing::SmallPretrainedBundle(seed);
  SupportSet support = std::move(bundle.support);
  EdgeModel model = std::move(bundle).ToEdgeModel();
  return {std::move(model), std::move(support)};
}

std::vector<sensors::Recording> GestureRecordings(uint64_t seed,
                                                  double seconds = 25.0) {
  sensors::SyntheticGenerator gen(seed);
  return {gen.Generate(sensors::MakeGestureModel(seed), seconds)};
}

/// Full serialized deployment state — backbone weights, prototypes,
/// registry, and support set. Byte equality of two captures is the
/// memcmp-level "nothing changed" oracle.
std::string StateBytes(const EdgeModel& model, const SupportSet& support) {
  ModelBundle bundle;
  bundle.pipeline = model.pipeline();
  bundle.backbone = model.backbone().Clone();
  bundle.classifier = model.classifier();
  bundle.registry = model.registry();
  bundle.support = support;
  return bundle.SerializeToString();
}

uint64_t CounterValue(const char* name) {
  const auto snap = obs::Registry::Global().TakeSnapshot();
  const auto* counter = snap.FindCounter(name);
  return counter == nullptr ? 0 : counter->value;
}

IncrementalOptions FailAt(UpdateStep step) {
  IncrementalOptions options = FastUpdateOptions();
  options.failure_hook = [step](UpdateStep s) {
    if (s == step) return Status::Internal("injected step failure");
    return Status::Ok();
  };
  return options;
}

const UpdateStep kAllSteps[] = {UpdateStep::kPreprocess, UpdateStep::kTrain,
                                UpdateStep::kSupportSet,
                                UpdateStep::kPrototypes};

TEST(UpdateTransactionTest, LearnFailureAtEveryStepLeavesStateByteIdentical) {
  Deployment dep = Deploy(401);
  const std::string before = StateBytes(dep.model, dep.support);
  for (UpdateStep step : kAllSteps) {
    SCOPED_TRACE(static_cast<int>(step));
    IncrementalLearner learner(FailAt(step));
    const uint64_t rollbacks = CounterValue("learner.rollbacks");
    auto res = learner.LearnNewActivity(&dep.model, &dep.support,
                                        "Gesture Hi", GestureRecordings(1));
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), StatusCode::kInternal);
    const std::string after = StateBytes(dep.model, dep.support);
    ASSERT_EQ(before.size(), after.size());
    EXPECT_EQ(std::memcmp(before.data(), after.data(), before.size()), 0)
        << "step " << static_cast<int>(step)
        << " leaked staged mutations into the live deployment";
    EXPECT_EQ(CounterValue("learner.rollbacks"), rollbacks + 1);
    // The failed name never reached the live registry.
    EXPECT_FALSE(dep.model.registry().IdOf("Gesture Hi").ok());
  }
}

TEST(UpdateTransactionTest,
     CalibrateFailureAtEveryStepLeavesStateByteIdentical) {
  Deployment dep = Deploy(402);
  const std::string before = StateBytes(dep.model, dep.support);
  for (UpdateStep step : kAllSteps) {
    SCOPED_TRACE(static_cast<int>(step));
    IncrementalLearner learner(FailAt(step));
    auto res = learner.Calibrate(&dep.model, &dep.support, sensors::kWalk,
                                 GestureRecordings(2));
    ASSERT_FALSE(res.ok());
    const std::string after = StateBytes(dep.model, dep.support);
    ASSERT_EQ(before.size(), after.size());
    EXPECT_EQ(std::memcmp(before.data(), after.data(), before.size()), 0);
  }
}

TEST(UpdateTransactionTest, RetryAndCalibrateSucceedAfterFailedLearn) {
  Deployment dep = Deploy(403);
  IncrementalLearner failing(FailAt(UpdateStep::kSupportSet));
  ASSERT_FALSE(failing
                   .LearnNewActivity(&dep.model, &dep.support, "Gesture Hi",
                                     GestureRecordings(3))
                   .ok());

  // The rolled-back name is free: the same capture retried without the
  // fault lands normally...
  IncrementalLearner learner(FastUpdateOptions());
  auto retry = learner.LearnNewActivity(&dep.model, &dep.support,
                                        "Gesture Hi", GestureRecordings(3));
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_TRUE(dep.model.registry().IdOf("Gesture Hi").ok());

  // ...and so does a calibration of a pre-existing activity.
  sensors::UserProfile user(77, 0.8);
  sensors::SyntheticGenerator gen(4);
  std::vector<sensors::Recording> personal{gen.Generate(
      user.Personalize(sensors::DefaultActivityLibrary()[sensors::kWalk]),
      25.0)};
  auto calibrated =
      learner.Calibrate(&dep.model, &dep.support, sensors::kWalk, personal);
  EXPECT_TRUE(calibrated.ok()) << calibrated.status();
}

TEST(UpdateTransactionTest, CommitCountsAndReportsStagedBytes) {
  Deployment dep = Deploy(404);
  const uint64_t commits = CounterValue("learner.commits");
  IncrementalLearner learner(FastUpdateOptions());
  auto report = learner.LearnNewActivity(&dep.model, &dep.support,
                                         "Gesture Hi", GestureRecordings(5));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(CounterValue("learner.commits"), commits + 1);
  EXPECT_EQ(report.value().support_bytes, dep.support.MemoryBytes());
}

TEST(UpdateTransactionTest, DuplicateNameRollsBackWithoutLiveMutation) {
  Deployment dep = Deploy(405);
  const std::string before = StateBytes(dep.model, dep.support);
  const uint64_t rollbacks = CounterValue("learner.rollbacks");
  IncrementalLearner learner(FastUpdateOptions());
  auto res = learner.LearnNewActivity(&dep.model, &dep.support, "Walk",
                                      GestureRecordings(6));
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(StateBytes(dep.model, dep.support), before);
  EXPECT_EQ(CounterValue("learner.rollbacks"), rollbacks + 1);
}

TEST(UpdateTransactionTest, SnapshotRestoreRoundTripsByteIdentical) {
  Deployment dep = Deploy(406);
  const std::string before = StateBytes(dep.model, dep.support);
  EdgeModel::Snapshot snapshot = dep.model.TakeSnapshot();
  // Mutate the live model, then restore: state must round-trip exactly.
  IncrementalLearner learner(FastUpdateOptions());
  ASSERT_TRUE(learner
                  .LearnNewActivity(&dep.model, &dep.support, "Gesture Hi",
                                    GestureRecordings(7))
                  .ok());
  ASSERT_NE(StateBytes(dep.model, dep.support), before);
  dep.model.Restore(std::move(snapshot));
  // The support set is owned separately; restore only covers the model. A
  // fresh capture against the restored weights must match the original
  // model bytes when paired with the original support payload.
  Deployment fresh = Deploy(406);
  EXPECT_EQ(StateBytes(dep.model, fresh.support), before);
}

TEST(UpdateTransactionTest, StagedEmbedderMatchesLiveDimensions) {
  Deployment dep = Deploy(407);
  SupportSet support_copy = dep.support;
  UpdateTransaction tx(&dep.model, &support_copy);
  EXPECT_EQ(tx.embedder().embedding_dim(), dep.model.embedding_dim());
  EXPECT_GT(tx.StagedBytes(), 0u);
  // Dropped without Commit: live state untouched (covered in depth above).
  EXPECT_FALSE(tx.committed());
}

}  // namespace
}  // namespace magneto::core
