#include "core/async_updater.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "core/edge_runtime.h"
#include "sensors/user_profile.h"
#include "testing/test_helpers.h"

namespace magneto::core {
namespace {

IncrementalOptions FastOptions() {
  IncrementalOptions options;
  options.train.epochs = 5;
  options.train.batch_size = 32;
  options.train.distill_weight = 1.0;
  options.train.seed = 7;
  return options;
}

struct Deployment {
  EdgeModel model;
  SupportSet support;
};

Deployment Deploy(uint64_t seed) {
  ModelBundle bundle = testing::SmallPretrainedBundle(seed);
  SupportSet support = std::move(bundle.support);
  EdgeModel model = std::move(bundle).ToEdgeModel();
  return {std::move(model), std::move(support)};
}

std::vector<sensors::Recording> Capture(uint64_t seed) {
  sensors::SyntheticGenerator gen(seed);
  return {gen.Generate(sensors::MakeGestureModel(seed), 20.0)};
}

TEST(AsyncUpdaterTest, BackgroundLearnProducesUsableModel) {
  Deployment dep = Deploy(701);
  AsyncUpdater updater(FastOptions());
  ASSERT_TRUE(
      updater.StartLearn(dep.model, dep.support, "Gesture Hi", Capture(1))
          .ok());
  EXPECT_TRUE(updater.busy());

  // Foreground inference continues on the unmodified model meanwhile.
  sensors::SyntheticGenerator gen(2);
  sensors::Recording rec =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kStill], 1.0);
  EXPECT_TRUE(dep.model.InferWindow(rec.samples).ok());
  EXPECT_EQ(dep.model.registry().size(), 5u);  // snapshot isolation

  auto outcome = updater.Take();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(updater.busy());
  EXPECT_EQ(outcome.value().model.registry().size(), 6u);
  EXPECT_TRUE(outcome.value().support.HasClass(outcome.value().report.activity));
  // Hot swap.
  dep.model = std::move(outcome.value().model);
  dep.support = std::move(outcome.value().support);
  EXPECT_TRUE(dep.model.registry().IdOf("Gesture Hi").ok());
}

TEST(AsyncUpdaterTest, OnlyOneUpdateInFlight) {
  Deployment dep = Deploy(702);
  AsyncUpdater updater(FastOptions());
  ASSERT_TRUE(
      updater.StartLearn(dep.model, dep.support, "A", Capture(3)).ok());
  EXPECT_EQ(updater.StartLearn(dep.model, dep.support, "B", Capture(4)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(updater.Take().ok());
  // After Take, a new update may start.
  EXPECT_TRUE(
      updater.StartLearn(dep.model, dep.support, "B", Capture(5)).ok());
  EXPECT_TRUE(updater.Take().ok());
}

TEST(AsyncUpdaterTest, TrainingErrorIsReturnedNotSwallowed) {
  Deployment dep = Deploy(703);
  AsyncUpdater updater(FastOptions());
  // Duplicate name fails inside the worker.
  ASSERT_TRUE(
      updater.StartLearn(dep.model, dep.support, "Walk", Capture(6)).ok());
  auto outcome = updater.Take();
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(updater.busy());
}

TEST(AsyncUpdaterTest, TakeWithoutStartFails) {
  AsyncUpdater updater(FastOptions());
  EXPECT_EQ(updater.Take().status().code(), StatusCode::kFailedPrecondition);
}

TEST(AsyncUpdaterTest, ReadyBecomesTrueEventually) {
  Deployment dep = Deploy(704);
  AsyncUpdater updater(FastOptions());
  ASSERT_TRUE(
      updater.StartLearn(dep.model, dep.support, "G", Capture(7)).ok());
  // Poll like a UI would.
  for (int i = 0; i < 600 && !updater.ready(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(updater.ready());
  EXPECT_TRUE(updater.Take().ok());
}

TEST(AsyncUpdaterTest, BackgroundCalibrate) {
  Deployment dep = Deploy(705);
  AsyncUpdater updater(FastOptions());
  sensors::UserProfile user(8, 0.6);
  sensors::SyntheticGenerator gen(9);
  std::vector<sensors::Recording> capture{gen.Generate(
      user.Personalize(sensors::DefaultActivityLibrary()[sensors::kWalk]),
      20.0)};
  ASSERT_TRUE(updater
                  .StartCalibrate(dep.model, dep.support, sensors::kWalk,
                                  capture)
                  .ok());
  auto outcome = updater.Take();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome.value().report.activity, sensors::kWalk);
  EXPECT_EQ(outcome.value().model.registry().size(), 5u);
}

TEST(AsyncUpdaterTest, DestructorJoinsInFlightWork) {
  Deployment dep = Deploy(706);
  {
    AsyncUpdater updater(FastOptions());
    ASSERT_TRUE(
        updater.StartLearn(dep.model, dep.support, "G", Capture(10)).ok());
    // Destroyed while running: must join cleanly, no crash/leak.
  }
  SUCCEED();
}

TEST(AsyncUpdaterStressTest, ConcurrentStartPollTakeHammer) {
  // Regression for the unlocked `worker_` join/reassign in Launch: threads
  // hammer Start/busy/ready/Take on one updater while updates complete at
  // arbitrary times. Run under -DMAGNETO_SANITIZE=thread this is the race
  // detector for the worker-handle lock order; unsanitized it still checks
  // the protocol (exactly one Take succeeds per successful Start).
  Deployment dep = Deploy(709);
  IncrementalOptions fast = FastOptions();
  fast.train.epochs = 1;
  fast.train.batch_size = 16;
  AsyncUpdater updater(fast);

  std::atomic<int> starts{0};
  std::atomic<int> takes{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  // Two starter threads compete to launch updates (distinct names so
  // repeated learns keep succeeding), two taker threads compete to reap
  // them, one poller spins on busy()/ready().
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 6; ++i) {
        const std::string name =
            "G" + std::to_string(t) + "_" + std::to_string(i);
        if (updater.StartLearn(dep.model, dep.support, name, Capture(20 + i))
                .ok()) {
          starts.fetch_add(1);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        auto outcome = updater.Take();
        if (outcome.ok() ||
            outcome.status().code() != StatusCode::kFailedPrecondition) {
          takes.fetch_add(1);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load()) {
      updater.busy();
      updater.ready();
    }
  });

  threads[0].join();
  threads[1].join();
  // Drain any final in-flight update, then stop the takers/poller.
  while (updater.busy()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (size_t t = 2; t < threads.size(); ++t) threads[t].join();

  EXPECT_GT(starts.load(), 0);
  // Every successful start was reaped by exactly one successful Take (a
  // training failure also counts: it surfaces through one Take).
  EXPECT_EQ(takes.load(), starts.load());
  EXPECT_FALSE(updater.busy());
}

TEST(AsyncUpdaterStressTest, DestroyWhileConcurrentlyPolled) {
  // Construct/poll/destroy cycles: the destructor's reap must not race the
  // poller's locked state reads.
  Deployment dep = Deploy(710);
  IncrementalOptions fast = FastOptions();
  fast.train.epochs = 1;
  for (int round = 0; round < 3; ++round) {
    auto updater = std::make_unique<AsyncUpdater>(fast);
    ASSERT_TRUE(updater
                    ->StartLearn(dep.model, dep.support,
                                 "R" + std::to_string(round), Capture(40))
                    .ok());
    std::thread poller([&u = *updater] {
      for (int i = 0; i < 200; ++i) {
        u.busy();
        u.ready();
      }
    });
    poller.join();
    updater.reset();  // joins the in-flight worker
  }
  SUCCEED();
}

TEST(EdgeRuntimeAsyncTest, FullAsyncFlowWithHotSwap) {
  ModelBundle bundle = testing::SmallPretrainedBundle(707);
  SupportSet support = std::move(bundle.support);
  EdgeModel model = std::move(bundle).ToEdgeModel();
  EdgeRuntime runtime(std::move(model), std::move(support), FastOptions());

  // Record the gesture.
  sensors::SyntheticGenerator gen(11);
  sensors::SignalModel gesture = sensors::MakeGestureModel(55);
  ASSERT_TRUE(runtime.StartRecording().ok());
  sensors::Recording capture = gen.Generate(gesture, 20.0);
  for (size_t i = 0; i < capture.num_samples(); ++i) {
    sensors::Frame frame;
    for (size_t c = 0; c < sensors::kNumChannels; ++c) {
      frame[c] = capture.samples.At(i, c);
    }
    ASSERT_TRUE(runtime.PushFrame(frame).ok());
  }

  // Kick off the background update; inference resumes immediately.
  ASSERT_TRUE(runtime.FinishRecordingAndLearnAsync("Gesture Hi").ok());
  EXPECT_EQ(runtime.mode(), RuntimeMode::kInference);
  EXPECT_TRUE(runtime.UpdatePending());
  sensors::Recording still =
      gen.Generate(sensors::DefaultActivityLibrary()[sensors::kStill], 1.0);
  for (size_t i = 0; i < still.num_samples(); ++i) {
    sensors::Frame frame;
    for (size_t c = 0; c < sensors::kNumChannels; ++c) {
      frame[c] = still.samples.At(i, c);
    }
    ASSERT_TRUE(runtime.PushFrame(frame).ok());
  }
  EXPECT_EQ(runtime.model().registry().size(), 5u);  // old model still live

  // Second update while one is pending is refused.
  ASSERT_TRUE(runtime.StartRecording().ok());
  EXPECT_EQ(runtime.FinishRecordingAndLearnAsync("Another").code(),
            StatusCode::kFailedPrecondition);
  runtime.CancelRecording();

  // Commit the hot swap.
  auto report = runtime.CommitUpdate();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(runtime.model().registry().size(), 6u);
  EXPECT_TRUE(runtime.support().HasClass(report.value().activity));
  EXPECT_EQ(runtime.stats().updates, 1u);
}

TEST(EdgeRuntimeAsyncTest, CommitWithoutStartFails) {
  ModelBundle bundle = testing::SmallPretrainedBundle(708);
  SupportSet support = std::move(bundle.support);
  EdgeModel model = std::move(bundle).ToEdgeModel();
  EdgeRuntime runtime(std::move(model), std::move(support), FastOptions());
  EXPECT_EQ(runtime.CommitUpdate().status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace magneto::core
