#include <gtest/gtest.h>

#include "magneto.h"
#include "testing/test_helpers.h"

namespace magneto {
namespace {

/// Two users provision devices from the same cloud bundle and personalise
/// independently. The paper's privacy/personalization story implies device
/// isolation: one user's updates must never leak into another's model, and
/// the shared cloud artifact must stay pristine.

std::vector<core::NamedPrediction> Infer(core::EdgeRuntime* runtime,
                                         const sensors::Recording& rec) {
  std::vector<core::NamedPrediction> out;
  for (size_t i = 0; i < rec.num_samples(); ++i) {
    sensors::Frame frame;
    for (size_t c = 0; c < sensors::kNumChannels; ++c) {
      frame[c] = rec.samples.At(i, c);
    }
    auto pred = runtime->PushFrame(frame);
    EXPECT_TRUE(pred.ok());
    if (pred.ok() && pred.value().has_value()) out.push_back(*pred.value());
  }
  return out;
}

size_t CountName(const std::vector<core::NamedPrediction>& preds,
                 const std::string& name) {
  size_t n = 0;
  for (const auto& p : preds) n += (p.name == name);
  return n;
}

TEST(MultiUserTest, IndependentPersonalizationWithoutCrosstalk) {
  // One cloud artifact, served to both devices.
  platform::CloudServer server(testing::SmallCloudConfig());
  ASSERT_TRUE(server
                  .Pretrain(testing::SmallCorpus(1001),
                            sensors::ActivityRegistry::BaseActivities())
                  .ok());
  const std::string wire = server.ServeBundleBytes().ValueOrDie();

  core::IncrementalOptions update;
  update.train.epochs = 8;
  update.train.learning_rate = 1e-3;
  update.train.distill_weight = 1.0;
  update.train.seed = 5;

  auto alice_device = platform::EdgeDevice::Provision(wire, update);
  auto bob_device = platform::EdgeDevice::Provision(wire, update);
  ASSERT_TRUE(alice_device.ok());
  ASSERT_TRUE(bob_device.ok());
  core::EdgeRuntime& alice = alice_device.value().runtime();
  core::EdgeRuntime& bob = bob_device.value().runtime();

  // Alice teaches her device a wave; Bob teaches his a stretch.
  sensors::SignalModel wave = sensors::MakeGestureModel(111);
  sensors::SignalModel stretch = sensors::MakeGestureModel(222);
  sensors::SyntheticGenerator alice_phone(2);
  sensors::SyntheticGenerator bob_phone(3);

  ASSERT_TRUE(alice.StartRecording().ok());
  Infer(&alice, alice_phone.Generate(wave, 22.0));
  ASSERT_TRUE(alice.FinishRecordingAndLearn("Wave").ok());

  ASSERT_TRUE(bob.StartRecording().ok());
  Infer(&bob, bob_phone.Generate(stretch, 22.0));
  ASSERT_TRUE(bob.FinishRecordingAndLearn("Stretch").ok());

  // Each device knows its own gesture...
  EXPECT_TRUE(alice.model().registry().IdOf("Wave").ok());
  EXPECT_TRUE(bob.model().registry().IdOf("Stretch").ok());
  // ...and not the other's (device isolation).
  EXPECT_FALSE(alice.model().registry().IdOf("Stretch").ok());
  EXPECT_FALSE(bob.model().registry().IdOf("Wave").ok());

  // Each recognises its own user's new activity on fresh data.
  EXPECT_GT(CountName(Infer(&alice, alice_phone.Generate(wave, 6.0)), "Wave"),
            3u);
  EXPECT_GT(CountName(Infer(&bob, bob_phone.Generate(stretch, 6.0)),
                      "Stretch"),
            3u);

  // Both still recognise the shared base activities.
  sensors::ActivityLibrary lib = sensors::DefaultActivityLibrary();
  EXPECT_GT(CountName(Infer(&alice, alice_phone.Generate(lib[sensors::kRun],
                                                         4.0)),
                      "Run"),
            2u);
  EXPECT_GT(
      CountName(Infer(&bob, bob_phone.Generate(lib[sensors::kStill], 4.0)),
                "Still"),
      2u);

  // The cloud artifact is untouched by either user's learning.
  EXPECT_EQ(server.ServeBundleBytes().ValueOrDie(), wire);
}

TEST(MultiUserTest, SameNameDifferentMeaningPerDevice) {
  // Both users name their gesture "My Move", but the gestures differ: the
  // name is purely device-local.
  platform::CloudServer server(testing::SmallCloudConfig());
  ASSERT_TRUE(server
                  .Pretrain(testing::SmallCorpus(1002),
                            sensors::ActivityRegistry::BaseActivities())
                  .ok());
  const std::string wire = server.ServeBundleBytes().ValueOrDie();

  core::IncrementalOptions update;
  update.train.epochs = 8;
  update.train.distill_weight = 1.0;
  update.train.seed = 7;
  auto a = platform::EdgeDevice::Provision(wire, update);
  auto b = platform::EdgeDevice::Provision(wire, update);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  sensors::SignalModel move_a = sensors::MakeGestureModel(333);
  sensors::SignalModel move_b = sensors::MakeGestureModel(444);
  sensors::SyntheticGenerator gen(8);

  ASSERT_TRUE(a.value().runtime().StartRecording().ok());
  Infer(&a.value().runtime(), gen.Generate(move_a, 22.0));
  ASSERT_TRUE(a.value().runtime().FinishRecordingAndLearn("My Move").ok());

  ASSERT_TRUE(b.value().runtime().StartRecording().ok());
  Infer(&b.value().runtime(), gen.Generate(move_b, 22.0));
  ASSERT_TRUE(b.value().runtime().FinishRecordingAndLearn("My Move").ok());

  // Device A recognises its own "My Move" on A's gesture...
  EXPECT_GT(CountName(Infer(&a.value().runtime(), gen.Generate(move_a, 6.0)),
                      "My Move"),
            3u);
  // ...and device B its own.
  EXPECT_GT(CountName(Infer(&b.value().runtime(), gen.Generate(move_b, 6.0)),
                      "My Move"),
            3u);
}

}  // namespace
}  // namespace magneto
