#include <cmath>

#include <gtest/gtest.h>

#include "magneto.h"
#include "testing/test_helpers.h"

namespace magneto {
namespace {

/// Failure-injection suite: the platform must degrade, not crash, when the
/// sensor stack misbehaves.

class RobustnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bundle_ = new core::ModelBundle(testing::SmallPretrainedBundle(801));
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }
  core::EdgeModel MakeModel() {
    return core::EdgeModel(bundle_->pipeline, bundle_->backbone.Clone(),
                           bundle_->classifier, bundle_->registry);
  }
  static core::ModelBundle* bundle_;
};

core::ModelBundle* RobustnessTest::bundle_ = nullptr;

TEST_F(RobustnessTest, PipelineStaysFiniteUnderEveryFaultKind) {
  core::EdgeModel model = MakeModel();
  sensors::SyntheticGenerator gen(1);
  Rng rng(2);
  for (auto kind :
       {sensors::FaultKind::kDropout, sensors::FaultKind::kFreeze,
        sensors::FaultKind::kSaturate, sensors::FaultKind::kSpikes}) {
    sensors::Recording rec = gen.Generate(
        sensors::DefaultActivityLibrary()[sensors::kWalk], 4.0);
    sensors::FaultSpec fault;
    fault.kind = kind;
    fault.channel = sensors::Channel::kAccX;
    fault.start_s = 0.0;
    fault.duration_s = 4.0;
    sensors::Recording faulty = InjectFaults(rec, {fault}, &rng);
    auto windows = model.pipeline().Process(faulty);
    ASSERT_TRUE(windows.ok());
    for (const auto& features : windows.value()) {
      for (float f : features) {
        ASSERT_TRUE(std::isfinite(f))
            << "non-finite feature under fault kind "
            << static_cast<int>(kind);
      }
    }
    // Inference still returns a known class.
    auto preds = model.InferRecording(faulty);
    ASSERT_TRUE(preds.ok());
    for (const auto& p : preds.value()) {
      EXPECT_TRUE(model.registry().Contains(p.prediction.activity));
    }
  }
}

TEST_F(RobustnessTest, HeavyRandomFaultsDegradeGracefully) {
  core::EdgeModel model = MakeModel();
  sensors::SyntheticGenerator gen(3);
  Rng rng(4);
  learn::ConfusionMatrix clean_cm, faulty_cm;
  for (const auto& [id, signal] : sensors::DefaultActivityLibrary()) {
    sensors::Recording rec = gen.Generate(signal, 4.0);
    auto clean = model.InferRecording(rec);
    ASSERT_TRUE(clean.ok());
    for (const auto& p : clean.value()) clean_cm.Add(id, p.prediction.activity);

    sensors::Recording faulty =
        InjectFaults(rec, sensors::RandomFaults(6, 4.0, &rng), &rng);
    auto preds = model.InferRecording(faulty);
    ASSERT_TRUE(preds.ok());
    for (const auto& p : preds.value()) {
      faulty_cm.Add(id, p.prediction.activity);
    }
  }
  // Faults may cost accuracy but the system keeps answering every window.
  EXPECT_EQ(faulty_cm.total(), clean_cm.total());
}

TEST_F(RobustnessTest, ExtremeInputValuesDoNotPoisonTheModel) {
  core::EdgeModel model = MakeModel();
  // A window of huge values (sensor range bug).
  Matrix window(120, sensors::kNumChannels);
  window.Fill(1e6f);
  auto pred = model.InferWindow(window);
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(std::isfinite(pred.value().prediction.distance));
  EXPECT_TRUE(std::isfinite(pred.value().prediction.confidence));
}

TEST_F(RobustnessTest, AllZeroWindowClassifies) {
  core::EdgeModel model = MakeModel();
  Matrix window(120, sensors::kNumChannels);
  auto pred = model.InferWindow(window);
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(model.registry().Contains(pred.value().prediction.activity));
}

TEST_F(RobustnessTest, SmoothedRuntimeRidesThroughFaultBursts) {
  core::ModelBundle bundle = testing::SmallPretrainedBundle(802);
  core::SupportSet support = std::move(bundle.support);
  core::EdgeModel model = std::move(bundle).ToEdgeModel();
  core::EdgeRuntime runtime(std::move(model), std::move(support), {});
  runtime.EnableSmoothing({.window = 5});

  sensors::SyntheticGenerator gen(5);
  Rng rng(6);
  sensors::Recording rec = gen.Generate(
      sensors::DefaultActivityLibrary()[sensors::kRun], 10.0);
  // A one-second total accelerometer dropout mid-stream.
  std::vector<sensors::FaultSpec> faults;
  for (auto ch : {sensors::Channel::kAccX, sensors::Channel::kAccY,
                  sensors::Channel::kAccZ}) {
    sensors::FaultSpec f;
    f.channel = ch;
    f.kind = sensors::FaultKind::kDropout;
    f.start_s = 5.0;
    f.duration_s = 1.0;
    faults.push_back(f);
  }
  sensors::Recording faulty = InjectFaults(rec, faults, &rng);

  size_t correct = 0, total = 0;
  for (size_t i = 0; i < faulty.num_samples(); ++i) {
    sensors::Frame frame;
    for (size_t c = 0; c < sensors::kNumChannels; ++c) {
      frame[c] = faulty.samples.At(i, c);
    }
    auto pred = runtime.PushFrame(frame);
    ASSERT_TRUE(pred.ok());
    if (pred.value().has_value()) {
      ++total;
      if (pred.value()->prediction.activity == sensors::kRun) ++correct;
    }
  }
  ASSERT_EQ(total, 10u);
  // With smoothing, the single bad window cannot flip more than itself.
  EXPECT_GE(correct, 9u);
}

}  // namespace
}  // namespace magneto
