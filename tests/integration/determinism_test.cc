// Determinism contract of the shared parallel runtime: every pooled hot path
// must produce bit-identical results at any thread count (DESIGN.md,
// "Parallel runtime"). These tests run each workload at 1 and 8 lanes and
// compare raw float bits.

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "magneto.h"

namespace magneto {
namespace {

/// Runs `fn` at `threads` lanes and restores the previous pool size.
template <typename Fn>
auto WithThreads(size_t threads, Fn fn) {
  const size_t saved = ParallelThreads();
  SetParallelThreads(threads);
  auto result = fn();
  SetParallelThreads(saved);
  return result;
}

void ExpectBitIdentical(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_TRUE(a.SameShape(b)) << what;
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << ": outputs differ between thread counts";
}

Matrix PseudoRandomMatrix(size_t rows, size_t cols, uint64_t salt) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] =
        static_cast<float>(((i + salt) * 2654435761u) % 1009) / 503.0f - 1.0f;
  }
  return m;
}

TEST(ParallelDeterminismTest, MatMulFamilyBitIdenticalAcrossThreadCounts) {
  const Matrix a = PseudoRandomMatrix(300, 217, 1);
  const Matrix b = PseudoRandomMatrix(217, 190, 2);
  const Matrix bt = PseudoRandomMatrix(190, 217, 3);
  const Matrix at = PseudoRandomMatrix(217, 300, 4);

  auto run = [&] {
    return std::tuple{MatMul(a, b), MatMulTransA(at, b), MatMulTransB(a, bt)};
  };
  auto serial = WithThreads(1, run);
  auto threaded = WithThreads(8, run);
  ExpectBitIdentical(std::get<0>(serial), std::get<0>(threaded), "MatMul");
  ExpectBitIdentical(std::get<1>(serial), std::get<1>(threaded),
                     "MatMulTransA");
  ExpectBitIdentical(std::get<2>(serial), std::get<2>(threaded),
                     "MatMulTransB");
}

TEST(ParallelDeterminismTest, PipelineBitIdenticalAcrossThreadCounts) {
  sensors::SyntheticGenerator gen(17);
  const std::vector<sensors::LabeledRecording> corpus =
      gen.GenerateDataset(sensors::DefaultActivityLibrary(), 2, 6.0);

  auto run = [&] {
    preprocess::PipelineConfig config;
    config.features = preprocess::FeatureMode::kCombined;
    preprocess::Pipeline pipeline(config);
    auto fitted = pipeline.Fit(corpus);
    EXPECT_TRUE(fitted.ok()) << fitted.status().ToString();
    auto processed = pipeline.ProcessLabeled(corpus);
    EXPECT_TRUE(processed.ok()) << processed.status().ToString();
    return std::pair{std::move(fitted).value().ToMatrix(),
                     std::move(processed).value().ToMatrix()};
  };
  auto serial = WithThreads(1, run);
  auto threaded = WithThreads(8, run);
  ExpectBitIdentical(serial.first, threaded.first, "Pipeline::Fit");
  ExpectBitIdentical(serial.second, threaded.second,
                     "Pipeline::ProcessLabeled");
}

TEST(ParallelDeterminismTest, SiameseTrainingBitIdenticalAcrossThreadCounts) {
  // Gaussian-ish blobs, two classes; small net, two epochs.
  sensors::FeatureDataset data;
  for (size_t i = 0; i < 64; ++i) {
    std::vector<float> x(16);
    const int label = static_cast<int>(i % 2);
    for (size_t j = 0; j < x.size(); ++j) {
      x[j] = (label ? 1.0f : -1.0f) +
             static_cast<float>(((i * 31 + j * 7) % 13)) / 13.0f;
    }
    data.Append(x, label);
  }

  auto run = [&] {
    Rng rng(99);
    nn::Sequential net = nn::BuildMlp(16, {32, 8}, &rng);
    learn::TrainOptions options;
    options.epochs = 2;
    options.batch_size = 16;
    options.seed = 5;
    learn::SiameseTrainer trainer(options);
    auto report = trainer.Train(&net, data);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    std::vector<Matrix> params;
    for (const Matrix* p : net.Params()) params.push_back(*p);
    return std::pair{std::move(params), report.value().epochs};
  };
  auto serial = WithThreads(1, run);
  auto threaded = WithThreads(8, run);
  ASSERT_EQ(serial.first.size(), threaded.first.size());
  for (size_t i = 0; i < serial.first.size(); ++i) {
    ExpectBitIdentical(serial.first[i], threaded.first[i], "trainer params");
  }
  ASSERT_EQ(serial.second.size(), threaded.second.size());
  for (size_t e = 0; e < serial.second.size(); ++e) {
    EXPECT_EQ(serial.second[e].embedding_loss, threaded.second[e].embedding_loss)
        << "epoch " << e;
  }
}

TEST(ParallelDeterminismTest, FleetStreamsBitIdenticalAcrossThreadCounts) {
  // Multi-session serving inherits the contract: concurrent sessions whose
  // windows land in arbitrary micro-batch compositions must emit the same
  // per-session prediction stream at any pool size — row-independent
  // kernels make a row's result independent of its batch neighbours.
  constexpr size_t kSessions = 6;
  const sensors::ActivityId activities[] = {sensors::kStill, sensors::kWalk,
                                            sensors::kRun};

  auto run = [&] {
    core::CloudConfig config;
    config.backbone_dims = {32, 16};
    config.train.epochs = 4;
    config.train.batch_size = 32;
    config.train.seed = 21;
    config.support_capacity = 12;
    config.seed = 31;
    core::CloudInitializer cloud(config);
    sensors::SyntheticGenerator corpus_gen(61);
    auto bundle = cloud.Initialize(
        corpus_gen.GenerateDataset(sensors::DefaultActivityLibrary(), 2, 4.0),
        sensors::ActivityRegistry::BaseActivities());
    EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
    platform::FleetOptions options;
    options.max_batch = 8;
    auto fleet = platform::EdgeFleet::Create(std::move(bundle).value(),
                                             kSessions, options);
    EXPECT_TRUE(fleet.ok()) << fleet.status().ToString();

    std::vector<std::vector<core::Prediction>> streams(kSessions);
    std::vector<std::thread> drivers;
    for (size_t s = 0; s < kSessions; ++s) {
      drivers.emplace_back([&, s] {
        sensors::SyntheticGenerator gen(70 + s);
        sensors::Recording rec = gen.Generate(
            sensors::DefaultActivityLibrary()[activities[s % 3]], 3.0);
        for (size_t i = 0; i < rec.num_samples(); ++i) {
          sensors::Frame frame;
          for (size_t c = 0; c < sensors::kNumChannels; ++c) {
            frame[c] = rec.samples.At(i, c);
          }
          auto pred = fleet.value()->PushFrame(s, frame);
          EXPECT_TRUE(pred.ok());
          if (pred.ok() && pred.value().has_value()) {
            streams[s].push_back(pred.value()->prediction);
          }
        }
      });
    }
    for (auto& t : drivers) t.join();
    return streams;
  };

  const auto serial = WithThreads(1, run);
  const auto threaded = WithThreads(8, run);
  for (size_t s = 0; s < kSessions; ++s) {
    ASSERT_EQ(serial[s].size(), threaded[s].size()) << "session " << s;
    ASSERT_GT(serial[s].size(), 0u) << "session " << s;
    for (size_t i = 0; i < serial[s].size(); ++i) {
      EXPECT_EQ(std::memcmp(&serial[s][i], &threaded[s][i],
                            sizeof(core::Prediction)),
                0)
          << "session " << s << ", window " << i;
    }
  }
}

TEST(TelemetryDeterminismTest, TracingOnDoesNotPerturbResults) {
  // Telemetry must be an observer: with spans and metrics recording, the
  // pipeline still produces bit-identical features at any thread count.
  sensors::SyntheticGenerator gen(23);
  const std::vector<sensors::LabeledRecording> corpus =
      gen.GenerateDataset(sensors::DefaultActivityLibrary(), 2, 5.0);

  obs::SetTraceEnabled(true);
  auto run = [&] {
    preprocess::Pipeline pipeline{preprocess::PipelineConfig{}};
    auto fitted = pipeline.Fit(corpus);
    EXPECT_TRUE(fitted.ok()) << fitted.status().ToString();
    return std::move(fitted).value().ToMatrix();
  };
  auto serial = WithThreads(1, run);
  auto threaded = WithThreads(8, run);
  obs::SetTraceEnabled(false);
  obs::ClearTrace();
  ExpectBitIdentical(serial, threaded, "Pipeline::Fit under tracing");
}

TEST(TelemetryDeterminismTest, HistogramSnapshotIdenticalAcrossThreadCounts) {
  // The same deterministic value stream, recorded from inside ParallelFor
  // bodies at different lane counts, must snapshot identically: fixed bucket
  // boundaries, exact counts, and an interleaving-independent sum.
  obs::Histogram* h = obs::Registry::Global().GetHistogram(
      "test.determinism.parallel_hist", {1.0, 10.0, 100.0, 1000.0});

  auto fill_and_snapshot = [&] {
    h->Reset();
    ParallelFor(0, 4096, 16, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        h->Record(static_cast<double>(i % 1500) + 0.125);
      }
    });
    obs::Snapshot snap = obs::Registry::Global().TakeSnapshot();
    const obs::Snapshot::HistogramValue* value =
        snap.FindHistogram("test.determinism.parallel_hist");
    EXPECT_NE(value, nullptr);
    return *value;
  };

  const auto serial = WithThreads(1, fill_and_snapshot);
  const auto threaded = WithThreads(8, fill_and_snapshot);
  EXPECT_EQ(serial, threaded);
  EXPECT_EQ(serial.count, 4096u);
  EXPECT_EQ(serial.bounds, (std::vector<double>{1.0, 10.0, 100.0, 1000.0}));
}

TEST(TelemetryDeterminismTest, CounterTotalsExactAcrossThreadCounts) {
  obs::Counter* c =
      obs::Registry::Global().GetCounter("test.determinism.parallel_counter");
  auto fill = [&] {
    c->Reset();
    ParallelFor(0, 10000, 7, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) c->Increment();
    });
    return c->value();
  };
  EXPECT_EQ(WithThreads(1, fill), 10000u);
  EXPECT_EQ(WithThreads(8, fill), 10000u);
}

}  // namespace
}  // namespace magneto
