#include <gtest/gtest.h>

#include "magneto.h"
#include "testing/test_helpers.h"

namespace magneto {
namespace {

/// Randomised corruption suite for the wire formats: whatever bytes arrive
/// over the link, the parsers must return an error or a valid object — never
/// crash, never read out of bounds, never half-construct.

class BundleFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    wire_ = new std::string(
        testing::SmallPretrainedBundle(901).SerializeToString());
  }
  static void TearDownTestSuite() {
    delete wire_;
    wire_ = nullptr;
  }
  static std::string* wire_;
};

std::string* BundleFuzzTest::wire_ = nullptr;

TEST_F(BundleFuzzTest, RandomSingleByteCorruptionNeverCrashes) {
  Rng rng(1);
  size_t parsed_ok = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes = *wire_;
    const size_t pos = rng.Index(bytes.size());
    bytes[pos] ^= static_cast<char>(1 + rng.Index(255));
    auto bundle = core::ModelBundle::FromString(bytes);
    if (bundle.ok()) {
      // Only corruption outside the CRC-protected region (header fields that
      // happen to still parse) could land here; the object must be usable.
      ++parsed_ok;
      EXPECT_GE(bundle.value().registry.size(), 0u);
    }
  }
  // The CRC catches essentially every body flip.
  EXPECT_LT(parsed_ok, 5u);
}

TEST_F(BundleFuzzTest, RandomTruncationNeverCrashes) {
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes = wire_->substr(0, rng.Index(wire_->size()));
    auto bundle = core::ModelBundle::FromString(bytes);
    EXPECT_FALSE(bundle.ok());  // a strict prefix can never checksum
  }
}

TEST_F(BundleFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes(rng.Index(4096), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.UniformInt(-128, 127));
    auto bundle = core::ModelBundle::FromString(bytes);
    EXPECT_FALSE(bundle.ok());
  }
}

TEST_F(BundleFuzzTest, ShuffledChunksNeverCrash) {
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    std::string bytes = *wire_;
    // Swap two random chunks.
    const size_t chunk = 64;
    if (bytes.size() < 2 * chunk) break;
    const size_t a = rng.Index(bytes.size() - chunk);
    const size_t b = rng.Index(bytes.size() - chunk);
    for (size_t i = 0; i < chunk; ++i) std::swap(bytes[a + i], bytes[b + i]);
    (void)core::ModelBundle::FromString(bytes);  // must not crash
  }
  SUCCEED();
}

TEST(ReaderFuzzTest, RandomBytesThroughEveryReader) {
  Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes(rng.Index(256), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.UniformInt(-128, 127));
    BinaryReader reader(bytes);
    // Walk the buffer with a random sequence of reads until one fails.
    for (int step = 0; step < 32; ++step) {
      bool failed = false;
      switch (rng.Index(7)) {
        case 0: failed = !reader.ReadU8().ok(); break;
        case 1: failed = !reader.ReadU32().ok(); break;
        case 2: failed = !reader.ReadU64().ok(); break;
        case 3: failed = !reader.ReadF32().ok(); break;
        case 4: failed = !reader.ReadString().ok(); break;
        case 5: failed = !reader.ReadF32Vector().ok(); break;
        case 6: failed = !reader.ReadI64Vector().ok(); break;
      }
      if (failed) break;
    }
  }
  SUCCEED();
}

TEST(ReaderFuzzTest, SequentialDeserializeOnGarbage) {
  Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    BinaryWriter w;
    // Plausible-looking header followed by garbage.
    w.WriteU64(rng.Index(8) + 1);
    for (int i = 0; i < 64; ++i) {
      w.WriteU8(static_cast<uint8_t>(rng.Index(256)));
    }
    BinaryReader r(w.buffer());
    (void)nn::Sequential::Deserialize(&r);  // must not crash
  }
  SUCCEED();
}

// The quantized layer's wire payload through the same corruption grinder as
// the other serializers: every truncation point and a seeded storm of bit
// flips must come back as a Status — never a crash, never an allocation
// driven by a corrupt length field (the ASan leg of check.sh runs this).
TEST(ReaderFuzzTest, QuantizedLinearPayloadFuzz) {
  Rng rng(8);
  nn::Linear source(12, 9, &rng);
  auto quantized = nn::QuantizedLinear::FromLinear(source).value();
  BinaryWriter w;
  quantized->Serialize(&w);
  const std::string& full = w.buffer();
  ASSERT_GT(full.size(), 1u);
  ASSERT_EQ(static_cast<uint8_t>(full[0]), nn::kQuantizedLinearTag);

  // Every strict prefix of the post-tag payload must fail cleanly.
  for (size_t len = 0; len + 1 < full.size(); ++len) {
    BinaryReader r(full.data() + 1, len);
    auto layer = nn::QuantizedLinear::Deserialize(&r);
    EXPECT_FALSE(layer.ok()) << "truncation at " << len << " parsed";
  }

  // Seeded bit flips over the whole record, dispatched through the
  // Sequential tag switch like a real bundle parse would.
  for (int trial = 0; trial < 500; ++trial) {
    std::string bytes = full;
    const size_t pos = rng.Index(bytes.size());
    bytes[pos] ^= static_cast<char>(1 << rng.Index(8));
    BinaryWriter net;
    net.WriteU64(1);  // one-layer Sequential framing
    net.WriteBytes(bytes.data(), bytes.size());
    BinaryReader r(net.buffer());
    auto seq = nn::Sequential::Deserialize(&r);
    if (seq.ok()) {
      // A flip that survives validation must still yield a usable layer.
      Matrix x(1, 12);
      x.Fill(0.25f);
      if (seq.value().InputDim() == 12) {
        nn::ForwardWorkspace ws;
        (void)seq.value().Forward(x, &ws);
      }
    }
  }
  SUCCEED();
}

TEST(ReaderFuzzTest, PipelineDeserializeOnGarbage) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes(rng.Index(128) + 1, '\0');
    for (char& c : bytes) c = static_cast<char>(rng.UniformInt(-128, 127));
    BinaryReader r(bytes);
    (void)preprocess::Pipeline::Deserialize(&r);
    BinaryReader r2(bytes);
    (void)core::SupportSet::Deserialize(&r2);
    BinaryReader r3(bytes);
    (void)core::NcmClassifier::Deserialize(&r3);
    BinaryReader r4(bytes);
    (void)sensors::ActivityRegistry::Deserialize(&r4);
  }
  SUCCEED();
}

}  // namespace
}  // namespace magneto
