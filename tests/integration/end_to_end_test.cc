#include <gtest/gtest.h>

#include "learn/metrics.h"
#include "magneto.h"
#include "testing/test_helpers.h"

namespace magneto {
namespace {

/// Full Figure-2 lifecycle over the simulated deployment fabric: cloud
/// pretraining -> bundle over the link -> edge provisioning -> streaming
/// inference -> on-device incremental learning -> privacy audit.
TEST(EndToEndTest, FullPlatformLifecycle) {
  // ---- Offline step (cloud) -------------------------------------------------
  platform::CloudServer server(testing::SmallCloudConfig());
  ASSERT_TRUE(server
                  .Pretrain(testing::SmallCorpus(601, 2, 4.0),
                            sensors::ActivityRegistry::BaseActivities())
                  .ok());

  // ---- Transfer (the only cloud->edge artifact) -----------------------------
  platform::NetworkLink link(60.0, 20.0);
  auto bundle_bytes = server.ServeBundleBytes();
  ASSERT_TRUE(bundle_bytes.ok());
  link.Transfer(platform::Direction::kDownlink,
                platform::PayloadKind::kModelArtifact,
                bundle_bytes.value().size());

  core::IncrementalOptions update_options;
  update_options.train.epochs = 5;
  update_options.train.distill_weight = 1.0;
  update_options.train.seed = 11;
  auto device =
      platform::EdgeDevice::Provision(bundle_bytes.value(), update_options);
  ASSERT_TRUE(device.ok());
  core::EdgeRuntime& runtime = device.value().runtime();

  // ---- Online step: real-time inference -------------------------------------
  sensors::SyntheticGenerator gen(602);
  sensors::ActivityLibrary lib = sensors::DefaultActivityLibrary();
  learn::ConfusionMatrix base_cm;
  for (const auto& [id, model] : lib) {
    sensors::Recording rec = gen.Generate(model, 3.0);
    for (size_t i = 0; i < rec.num_samples(); ++i) {
      sensors::Frame frame;
      for (size_t c = 0; c < sensors::kNumChannels; ++c) {
        frame[c] = rec.samples.At(i, c);
      }
      auto pred = runtime.PushFrame(frame);
      ASSERT_TRUE(pred.ok());
      if (pred.value().has_value()) {
        base_cm.Add(id, pred.value()->prediction.activity);
      }
    }
  }
  EXPECT_EQ(base_cm.total(), 15u);  // 5 activities x 3 windows
  EXPECT_GT(base_cm.Accuracy(), 0.6)
      << base_cm.ToString(runtime.model().registry());

  // ---- Online step: incremental learning ------------------------------------
  sensors::SignalModel gesture = sensors::MakeGestureModel(603);
  ASSERT_TRUE(runtime.StartRecording().ok());
  sensors::Recording capture = gen.Generate(gesture, 22.0);
  for (size_t i = 0; i < capture.num_samples(); ++i) {
    sensors::Frame frame;
    for (size_t c = 0; c < sensors::kNumChannels; ++c) {
      frame[c] = capture.samples.At(i, c);
    }
    ASSERT_TRUE(runtime.PushFrame(frame).ok());
  }
  auto report = runtime.FinishRecordingAndLearn("Gesture Hi");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().new_windows, 22u);

  // The new class is live.
  sensors::Recording fresh = gen.Generate(gesture, 5.0);
  auto preds = runtime.model().InferRecording(fresh);
  ASSERT_TRUE(preds.ok());
  size_t hits = 0;
  for (const auto& p : preds.value()) {
    if (p.name == "Gesture Hi") ++hits;
  }
  EXPECT_GE(hits, 3u);

  // ---- Privacy: Definition 1 held throughout --------------------------------
  platform::PrivacyAuditor auditor(&link);
  EXPECT_TRUE(auditor.Verify().ok()) << auditor.Report();
  EXPECT_EQ(link.TotalBytes(platform::Direction::kUplink), 0u);
}

/// The paper's footprint claim (§4.2.2): pipeline + model + support set, as
/// actually serialised with the paper's full-size configuration, stays under
/// 5 MB.
TEST(EndToEndTest, PaperScaleBundleFitsFiveMegabytes) {
  core::CloudConfig config;  // paper backbone [1024,512,128,64,128]
  config.support_capacity = 200;
  config.train.epochs = 1;  // weights' size doesn't depend on training
  config.train.seed = 3;
  core::CloudInitializer cloud(config);
  // A small corpus is enough — the artifact size is architecture-driven.
  auto bundle = cloud.Initialize(testing::SmallCorpus(604, 2, 4.0),
                                 sensors::ActivityRegistry::BaseActivities());
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  const size_t bytes = bundle.value().SerializedBytes();
  EXPECT_LT(bytes, 5u * 1024 * 1024) << "bundle is " << bytes << " bytes";
  // And it is dominated by the ~690k-parameter backbone (~2.8 MB).
  EXPECT_GT(bytes, 2u * 1024 * 1024);
}

/// Serialization fidelity across the wire: a bundle that crosses the link and
/// is re-serialised on the device is byte-identical.
TEST(EndToEndTest, BundleSurvivesTheWireExactly) {
  core::ModelBundle bundle = testing::SmallPretrainedBundle(605);
  const std::string wire = bundle.SerializeToString();
  auto received = core::ModelBundle::FromString(wire);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value().SerializeToString(), wire);
}

}  // namespace
}  // namespace magneto
